//! Chaos tests: the scaling loop under injected faults.
//!
//! Each test drives the Wikipedia Docker scenario with one of the five
//! fault classes enabled and checks the contract of the degradation
//! ladder: zero panics, every degraded decision logged, the SLO penalty
//! bounded relative to the fault-free run, and Chamulteon degrading no
//! worse than the competing auto-scalers fed the same faulted inputs —
//! including when the controller process itself is crashed mid-run.

use chamulteon::RetryPolicy;
use chamulteon_bench::robustness::{
    robustness_lineup, robustness_report, robustness_report_recovered, FaultClass,
};
use chamulteon_bench::setups::wikipedia_docker;
use chamulteon_bench::{run_experiment, run_experiment_with_faults, ScalerKind};
use chamulteon_sim::RecoveryPolicy;

/// Slack on competitor comparisons, in percentage points of SLO
/// violations: simulator noise can move either side by a little.
const COMPARISON_SLACK: f64 = 5.0;

#[test]
fn chamulteon_survives_every_fault_class() {
    let spec = wikipedia_docker();
    let retry = RetryPolicy::default();
    for class in FaultClass::ALL {
        // Completing at all is the headline claim: no panic on dropped,
        // corrupt or failed inputs anywhere in the loop.
        let r = robustness_report(&spec, ScalerKind::Chamulteon, class, &retry);
        assert!(r.faults_injected > 0, "{class:?}: no faults injected");
        assert!(
            r.faulted_slo_violations.is_finite() && r.faulted_slo_violations >= 0.0,
            "{class:?}: SLO violations not a percentage: {}",
            r.faulted_slo_violations
        );
        // Monitoring and actuation faults must engage the ladder.
        // Instance crashes act on the plant, not the controller, and a
        // controller crash kills the process outright rather than feeding
        // it bad inputs, so no rung is required for either.
        if class != FaultClass::InstanceCrashes && class != FaultClass::ControllerCrashes {
            assert!(
                r.degraded_decisions > 0,
                "{class:?}: faults injected but no degraded decision logged"
            );
        }
        // Pinned degradation bound: faults may hurt, but the ladder keeps
        // the penalty bounded instead of letting the run collapse.
        assert!(
            r.slo_delta() <= 20.0,
            "{class:?}: SLO violations {:.1}% -> {:.1}% (delta {:+.1} exceeds pin)",
            r.clean_slo_violations,
            r.faulted_slo_violations,
            r.slo_delta()
        );
    }
}

#[test]
fn chamulteon_degrades_no_worse_than_competitors() {
    let spec = wikipedia_docker();
    let retry = RetryPolicy::default();
    for class in FaultClass::ALL {
        let reports = robustness_lineup(&spec, class, &retry);
        let cham = reports
            .iter()
            .find(|r| r.scaler == "chamulteon")
            .expect("lineup contains chamulteon");
        for other in reports.iter().filter(|r| r.scaler != "chamulteon") {
            assert!(
                cham.slo_delta() <= other.slo_delta() + COMPARISON_SLACK,
                "{class:?}: chamulteon degraded by {:+.1} SLO points, {} only by {:+.1}",
                cham.slo_delta(),
                other.scaler,
                other.slo_delta()
            );
        }
    }
}

#[test]
fn identical_fault_seeds_reproduce_identical_schedules() {
    let spec = wikipedia_docker();
    let retry = RetryPolicy::default();
    let plan =
        FaultClass::DropSamples.plan(spec.seed, spec.trace.duration(), spec.scaling_interval);
    let a = run_experiment_with_faults(&spec, ScalerKind::Chamulteon, Some(plan.clone()), &retry);
    let b = run_experiment_with_faults(&spec, ScalerKind::Chamulteon, Some(plan), &retry);
    assert!(
        !a.outcome.result.fault_log.is_empty(),
        "plan injected nothing"
    );
    assert_eq!(
        a.outcome.result.fault_log, b.outcome.result.fault_log,
        "same plan, different fault schedule"
    );
    assert_eq!(a.outcome.result, b.outcome.result);
    assert_eq!(a.outcome.report, b.outcome.report);
    assert_eq!(a.degradation.events(), b.degradation.events());
}

#[test]
fn absent_fault_plan_matches_clean_run() {
    // The fault-aware entry point with no plan and no retries is the
    // clean experiment, bit for bit.
    let spec = wikipedia_docker();
    let clean = run_experiment(&spec, ScalerKind::Chamulteon);
    let faulted = run_experiment_with_faults(
        &spec,
        ScalerKind::Chamulteon,
        None,
        &RetryPolicy::no_retries(),
    );
    assert_eq!(clean.result, faulted.outcome.result);
    assert_eq!(clean.report, faulted.outcome.report);
    assert!(faulted.outcome.result.fault_log.is_empty());
    assert!(faulted.degradation.is_empty());
}

#[test]
fn crash_faults_are_recorded_and_absorbed() {
    let spec = wikipedia_docker();
    let retry = RetryPolicy::default();
    let r = robustness_report(
        &spec,
        ScalerKind::Chamulteon,
        FaultClass::InstanceCrashes,
        &retry,
    );
    assert!(r.faults_injected > 0, "no crashes injected");
    // Crashed capacity costs something — either more SLO violations or
    // replacement instance-hours — but the run completes and stays sane.
    assert!(r.faulted_instance_hours > 0.0);
    assert!(r.faulted_slo_violations <= 100.0);
}

#[test]
fn checkpointed_chamulteon_survives_controller_crashes_no_worse_than_baselines() {
    // The crash-safety claim of the checkpoint/restore subsystem: under an
    // identical controller-crash plan, Chamulteon restoring from its
    // latest snapshot degrades no worse than the stateless baselines —
    // which lose nothing in a crash because they carry no learned state —
    // and the whole comparison is reproducible from the seed alone.
    let spec = wikipedia_docker();
    let retry = RetryPolicy::default();
    let recovery = RecoveryPolicy::Checkpoint { cadence: 5 };
    let cham = robustness_report_recovered(
        &spec,
        ScalerKind::Chamulteon,
        FaultClass::ControllerCrashes,
        &retry,
        recovery,
    );
    assert!(cham.faults_injected > 0, "no controller crashes injected");
    for kind in [
        ScalerKind::React,
        ScalerKind::Adapt,
        ScalerKind::Hist,
        ScalerKind::Reg,
    ] {
        let other = robustness_report(&spec, kind, FaultClass::ControllerCrashes, &retry);
        assert!(
            cham.slo_delta() <= other.slo_delta() + COMPARISON_SLACK,
            "chamulteon degraded by {:+.1} SLO points under crashes, {} only by {:+.1}",
            cham.slo_delta(),
            other.scaler,
            other.slo_delta()
        );
    }
    let again = robustness_report_recovered(
        &spec,
        ScalerKind::Chamulteon,
        FaultClass::ControllerCrashes,
        &retry,
        recovery,
    );
    assert_eq!(cham, again, "crash recovery run not seed-reproducible");
}
