//! Integration tests for the future-work extensions (§VI): backpressure,
//! hybrid vertical scaling, and nested VM pools — each exercised
//! end-to-end against the simulator.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::core::{
    hybrid_decisions, proactive_decisions, Chamulteon, ChamulteonConfig, NestedPlanner,
    VerticalPolicy,
};
use chamulteon_repro::demand::MonitoringSample;
use chamulteon_repro::perfmodel::{ApplicationModel, ApplicationModelBuilder};
use chamulteon_repro::sim::{
    DeploymentProfile, Simulation, SimulationConfig, SloPolicy, VmPoolConfig,
};
use chamulteon_repro::workload::LoadTrace;

fn sample_from_sim(
    sim: &Simulation,
    s: usize,
    stats: &chamulteon_repro::sim::ServiceIntervalStats,
) -> MonitoringSample {
    let provisioned = sim.provisioned(s).max(1);
    let util = (stats.utilization * f64::from(stats.instances_end.max(1)) / f64::from(provisioned))
        .clamp(0.0, 1.0);
    MonitoringSample::new(
        stats.duration,
        stats.arrivals,
        util,
        provisioned,
        stats.mean_response_time,
    )
    .unwrap()
    .with_completions(stats.completions)
}

#[test]
fn backpressure_saves_instance_time_at_hard_caps() {
    // Data tier capped at 4 instances (100 req/s); offered 400 req/s.
    let model = ApplicationModelBuilder::new()
        .service("ui", 0.059, 1, 200, 1)
        .service("validation", 0.1, 1, 200, 1)
        .service("data", 0.04, 1, 4, 1)
        .call("ui", "validation", 1.0)
        .call("validation", "data", 1.0)
        .entry("ui")
        .build()
        .unwrap();
    let plain = proactive_decisions(
        &model,
        400.0,
        &[0.059, 0.1, 0.04],
        &[1, 1, 1],
        &ChamulteonConfig::default(),
    );
    let aware = proactive_decisions(
        &model,
        400.0,
        &[0.059, 0.1, 0.04],
        &[1, 1, 1],
        &ChamulteonConfig::with_backpressure(),
    );
    let total = |v: &[u32]| v.iter().sum::<u32>();
    assert!(
        total(&aware) < total(&plain),
        "backpressure should save instances: {aware:?} vs {plain:?}"
    );
    // The throughput the application can deliver is unchanged: the data
    // tier is the binding constraint either way.
    assert_eq!(plain[2], 4);
    assert_eq!(aware[2], 4);
}

#[test]
fn hybrid_vertical_scaling_runs_end_to_end() {
    let model = ApplicationModel::paper_benchmark();
    let trace = LoadTrace::new(60.0, vec![150.0; 15]).unwrap();
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 71);
    let mut sim = Simulation::new(&model, &trace, config);
    // Warm start sized for the load: the test verifies that the hybrid
    // decisions *keep* the SLO while re-shaping the deployment onto the
    // cost-optimal size ladder (including scale-downs).
    for (s, n) in [(0usize, 20u32), (1, 30), (2, 12)] {
        sim.set_supply(s, n).unwrap();
    }
    let policy = VerticalPolicy::ec2_like();
    let cham_config = ChamulteonConfig::default();
    for k in 1..=15 {
        let t = k as f64 * 60.0;
        sim.run_until(t).unwrap();
        let stats = sim.interval(k - 1).unwrap();
        let rate = stats[0].arrivals as f64 / 60.0;
        let decisions = hybrid_decisions(&model, rate, &[0.059, 0.1, 0.04], &policy, &cham_config);
        for (s, d) in decisions.iter().enumerate() {
            sim.scale_to(s, d.instances).unwrap();
            sim.scale_vertical(s, policy.sizes()[d.size_index].speed)
                .unwrap();
        }
    }
    let result = sim.finish();
    assert!(
        result.slo_violation_percent() < 15.0,
        "hybrid sizing violated SLO {:.1}%",
        result.slo_violation_percent()
    );
}

#[test]
fn nested_planner_keeps_container_layer_fast() {
    let model = ApplicationModel::paper_benchmark();
    // Ramp that needs ~50 extra containers over 10 minutes.
    let rates: Vec<f64> = (0..25)
        .map(|k| 30.0 + 220.0 * ((k as f64 / 10.0).min(1.0)))
        .collect();
    let trace = LoadTrace::new(60.0, rates).unwrap();

    let run = |planner: Option<NestedPlanner>| -> (f64, usize) {
        let pool = VmPoolConfig::new(8, 300.0, 2);
        let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 72)
            .with_vm_pool(pool);
        let mut sim = Simulation::new(&model, &trace, config);
        for s in 0..3 {
            sim.set_supply(s, 2).unwrap();
        }
        let mut scaler = Chamulteon::new(model.clone(), ChamulteonConfig::reactive_only());
        let mut max_waiting = 0;
        for k in 1..=25 {
            let t = k as f64 * 60.0;
            sim.run_until(t).unwrap();
            let stats = sim.interval(k - 1).unwrap();
            let samples: Vec<MonitoringSample> = stats
                .iter()
                .enumerate()
                .map(|(s, st)| sample_from_sim(&sim, s, st))
                .collect();
            let targets = scaler.tick(t, &samples);
            if let Some(p) = &planner {
                sim.scale_vms(p.plan(&targets, None)).unwrap();
            }
            for (s, &target) in targets.iter().enumerate() {
                sim.scale_to(s, target).unwrap();
            }
            max_waiting = max_waiting.max(sim.waiting_containers().unwrap_or(0));
        }
        let result = sim.finish();
        (result.slo_violation_percent(), max_waiting)
    };

    let (slo_unplanned, stalls_unplanned) = run(None);
    let (slo_planned, stalls_planned) = run(Some(NestedPlanner::new(8, 24)));
    assert!(
        slo_planned < slo_unplanned,
        "planned {slo_planned:.1}% vs unplanned {slo_unplanned:.1}%"
    );
    assert!(stalls_planned < stalls_unplanned);
}

#[test]
fn vertical_and_horizontal_equivalent_capacity_equivalent_slo() {
    // 2x-speed instances at half the count serve like 1x at full count.
    let model = ApplicationModel::paper_benchmark();
    let trace = LoadTrace::new(60.0, vec![100.0; 10]).unwrap();
    let run = |counts: [u32; 3], speed: f64| {
        let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 73);
        let mut sim = Simulation::new(&model, &trace, config);
        for (s, &n) in counts.iter().enumerate() {
            sim.set_supply(s, n).unwrap();
            sim.scale_vertical(s, speed).unwrap();
        }
        sim.run_to_end().slo_violation_percent()
    };
    let horizontal = run([10, 17, 7], 1.0);
    let vertical = run([5, 9, 4], 2.0);
    assert!(
        (horizontal - vertical).abs() < 6.0,
        "horizontal {horizontal:.1}% vs vertical {vertical:.1}%"
    );
}
