//! Cross-crate consistency: the discrete-event simulator must agree with
//! the analytical M/M/n model that Chamulteon and the metrics rely on —
//! otherwise the controller would be steering with a wrong map.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::queueing::{MmnQueue, StationSpec, TandemNetwork};
use chamulteon_repro::sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
use chamulteon_repro::workload::LoadTrace;

fn fixed_supply_simulation(rate: f64, supply: [u32; 3], duration: f64, seed: u64) -> Simulation {
    let model = ApplicationModel::paper_benchmark();
    let steps = (duration / 60.0).ceil() as usize;
    let trace = LoadTrace::new(60.0, vec![rate; steps]).unwrap();
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), seed);
    let mut sim = Simulation::new(&model, &trace, config);
    for (s, &n) in supply.iter().enumerate() {
        sim.set_supply(s, n).unwrap();
    }
    sim
}

#[test]
fn simulated_response_time_matches_mmn_prediction() {
    // Moderate load on a fixed deployment; compare the simulated mean
    // end-to-end response time with the product-form prediction.
    let rate = 80.0;
    let supply = [7, 11, 5];
    let result = fixed_supply_simulation(rate, supply, 3_600.0, 42).run_to_end();

    let net = TandemNetwork::new(vec![
        StationSpec::new(0.059, supply[0]),
        StationSpec::new(0.1, supply[1]),
        StationSpec::new(0.04, supply[2]),
    ])
    .unwrap();
    let predicted = net.mean_response_time(rate).unwrap();
    let simulated = result.mean_response_time();
    let rel_err = (simulated - predicted).abs() / predicted;
    assert!(
        rel_err < 0.10,
        "simulated {simulated:.4}s vs predicted {predicted:.4}s (rel err {rel_err:.3})"
    );
}

#[test]
fn simulated_utilization_matches_theory_per_tier() {
    let rate = 60.0;
    let supply = [6, 9, 4];
    let mut sim = fixed_supply_simulation(rate, supply, 1_800.0, 43);
    sim.run_until(1_800.0).unwrap();
    let demands = [0.059, 0.1, 0.04];
    let last = sim.intervals_completed() - 1;
    // Average utilization across all full intervals but the first (warmup).
    for s in 0..3 {
        let mut total = 0.0;
        let mut count = 0;
        for k in 1..=last {
            total += sim.interval(k).unwrap()[s].utilization;
            count += 1;
        }
        let measured = total / count as f64;
        let expected = rate * demands[s] / f64::from(supply[s]);
        assert!(
            (measured - expected).abs() < 0.05,
            "tier {s}: measured {measured:.3} vs expected {expected:.3}"
        );
    }
}

#[test]
fn slo_demand_vector_verified_in_simulation() {
    // The instance vector the metrics crate calls "demand" (90th-percentile
    // sizing) must actually keep SLO violations low when deployed in the
    // simulator — the ground truth has to be achievable.
    let rate = 150.0;
    let trace = LoadTrace::new(60.0, vec![rate]).unwrap();
    let curves = chamulteon_repro::metrics::demand_curves(
        &trace,
        &[0.059, 0.1, 0.04],
        &[1.0, 1.0, 1.0],
        0.5,
        1_000,
    );
    let ns = [
        curves[0].value_at(0.0),
        curves[1].value_at(0.0),
        curves[2].value_at(0.0),
    ];
    let result = fixed_supply_simulation(rate, ns, 1_800.0, 44).run_to_end();
    assert!(
        result.slo_violation_percent() < 10.0,
        "demand vector {ns:?} violated SLO {:.1}% of the time",
        result.slo_violation_percent()
    );
    // And one instance less on the bottleneck tier noticeably degrades it
    // (the curve is demand, not padding).
    let lean = [ns[0], ns[1] - 1, ns[2]];
    let worse = fixed_supply_simulation(rate, lean, 1_800.0, 44).run_to_end();
    assert!(worse.slo_violation_percent() > result.slo_violation_percent());
}

#[test]
fn saturated_tier_throughput_matches_capacity() {
    // Overload one tier: its completion rate must approach n/D.
    let rate = 100.0;
    let supply = [10, 3, 10]; // validation capacity = 30 req/s
    let mut sim = fixed_supply_simulation(rate, supply, 1_200.0, 45);
    sim.run_until(1_200.0).unwrap();
    let last = sim.intervals_completed() - 1;
    let stats = sim.interval(last).unwrap();
    let completion_rate = stats[1].completions as f64 / 60.0;
    assert!(
        (completion_rate - 30.0).abs() < 3.0,
        "saturated tier completes at {completion_rate} req/s, capacity 30"
    );
    // And its utilization pins at ~1.
    assert!(stats[1].utilization > 0.97);
}

#[test]
fn single_station_wait_probability_matches_erlang_c() {
    // One-service model: measure the fraction of requests that wait and
    // compare with Erlang C.
    let model = chamulteon_repro::perfmodel::ApplicationModelBuilder::new()
        .service("only", 0.1, 1, 100, 4)
        .build()
        .unwrap();
    let trace = LoadTrace::new(60.0, vec![30.0; 60]).unwrap();
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 46);
    let sim = Simulation::new(&model, &trace, config);
    let result = sim.run_to_end();

    let q = MmnQueue::new(30.0, 0.1, 4).unwrap();
    let predicted_r = q.mean_response_time().unwrap();
    let simulated_r = result.mean_response_time();
    assert!(
        (simulated_r - predicted_r).abs() / predicted_r < 0.10,
        "simulated {simulated_r:.4} vs Erlang prediction {predicted_r:.4}"
    );
}
