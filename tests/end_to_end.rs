//! End-to-end integration tests: the full pipeline (workload → simulator →
//! auto-scaler → metrics) across crates.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::bench::setups::smoke_test;
use chamulteon_repro::bench::{run_experiment, ExperimentSpec, ScalerKind};
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::sim::{DeploymentProfile, SloPolicy};
use chamulteon_repro::workload::LoadTrace;

fn step_spec(seed: u64) -> ExperimentSpec {
    let mut rates = vec![20.0; 5];
    rates.extend(vec![250.0; 10]);
    ExperimentSpec {
        name: "step".into(),
        trace: LoadTrace::new(60.0, rates).unwrap(),
        model: ApplicationModel::paper_benchmark(),
        profile: DeploymentProfile::docker(),
        slo: SloPolicy::default(),
        scaling_interval: 60.0,
        seed,
        warmup_days: 0,
        hist_bucket: 300.0,
    }
}

#[test]
fn every_scaler_completes_the_smoke_experiment() {
    let spec = smoke_test();
    for kind in [
        ScalerKind::Chamulteon,
        ScalerKind::ChamulteonReactiveOnly,
        ScalerKind::ChamulteonProactiveOnly,
        ScalerKind::ChamulteonFoxEc2,
        ScalerKind::ChamulteonFoxGcp,
        ScalerKind::React,
        ScalerKind::Adapt,
        ScalerKind::Hist,
        ScalerKind::Reg,
    ] {
        let outcome = run_experiment(&spec, kind);
        assert!(outcome.result.total_requests() > 1_000, "{kind:?}");
        assert!(
            (0.0..=100.0).contains(&outcome.report.apdex),
            "{kind:?} apdex"
        );
        assert!(
            (0.0..=100.0).contains(&outcome.report.slo_violations),
            "{kind:?} slo"
        );
        for m in &outcome.report.per_service {
            assert!(m.tau_u >= 0.0 && m.tau_u <= 100.0, "{kind:?}");
            assert!(m.tau_o >= 0.0 && m.tau_o <= 100.0, "{kind:?}");
            assert!(m.tau_u + m.tau_o <= 100.0 + 1e-9, "{kind:?}");
            assert!(m.theta_u >= 0.0 && m.theta_o >= 0.0, "{kind:?}");
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let spec = smoke_test();
    for kind in [ScalerKind::Chamulteon, ScalerKind::Reg] {
        let a = run_experiment(&spec, kind);
        let b = run_experiment(&spec, kind);
        assert_eq!(a.result, b.result, "{kind:?}");
        assert_eq!(a.report, b.report, "{kind:?}");
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let mut spec = smoke_test();
    let a = run_experiment(&spec, ScalerKind::Chamulteon);
    spec.seed += 1;
    let b = run_experiment(&spec, ScalerKind::Chamulteon);
    assert_ne!(a.result, b.result);
}

#[test]
fn chamulteon_beats_reg_on_user_metrics() {
    // The paper's headline result, on both a step and the smoke trace.
    for spec in [step_spec(3), smoke_test()] {
        let cham = run_experiment(&spec, ScalerKind::Chamulteon);
        let reg = run_experiment(&spec, ScalerKind::Reg);
        assert!(
            cham.report.slo_violations <= reg.report.slo_violations,
            "{}: chamulteon {}% vs reg {}%",
            spec.name,
            cham.report.slo_violations,
            reg.report.slo_violations
        );
        assert!(
            cham.report.apdex >= reg.report.apdex,
            "{}: apdex",
            spec.name
        );
    }
}

#[test]
fn bottleneck_shifting_staggered_for_react_not_chamulteon() {
    let spec = step_spec(7);
    // Capacity each tier needs for the 250 req/s plateau.
    let needed = [
        (250.0 * 0.059 / 0.8_f64).ceil() as u32,
        (250.0 * 0.1 / 0.8_f64).ceil() as u32,
        (250.0 * 0.04 / 0.8_f64).ceil() as u32,
    ];
    let adequate_at =
        |outcome: &chamulteon_repro::bench::ExperimentOutcome, service: usize| -> f64 {
            let mut t = 0.0;
            while t < outcome.result.duration {
                if outcome.result.supply_at(service, t) >= needed[service] {
                    return t;
                }
                t += 1.0;
            }
            outcome.result.duration
        };

    let react = run_experiment(&spec, ScalerKind::React);
    let cham = run_experiment(&spec, ScalerKind::Chamulteon);

    let spread = |o: &chamulteon_repro::bench::ExperimentOutcome| {
        let times: Vec<f64> = (0..3).map(|s| adequate_at(o, s)).collect();
        times.iter().cloned().fold(f64::MIN, f64::max)
            - times.iter().cloned().fold(f64::MAX, f64::min)
    };
    let react_spread = spread(&react);
    let cham_spread = spread(&cham);
    assert!(
        react_spread >= 60.0,
        "react should stagger at least one interval, got {react_spread}"
    );
    assert!(
        cham_spread < react_spread,
        "chamulteon ({cham_spread}s) must stagger less than react ({react_spread}s)"
    );
}

#[test]
fn supply_never_outside_model_bounds() {
    let spec = smoke_test();
    for kind in [ScalerKind::Chamulteon, ScalerKind::Adapt, ScalerKind::Hist] {
        let outcome = run_experiment(&spec, kind);
        for (s, timeline) in outcome.result.supply.iter().enumerate() {
            let spec_s = spec.model.service(s);
            for change in timeline {
                assert!(change.running >= spec_s.min_instances(), "{kind:?}");
                assert!(change.running <= spec_s.max_instances(), "{kind:?}");
            }
        }
    }
}

#[test]
fn request_conservation_holds_for_every_scaler() {
    let spec = smoke_test();
    for kind in ScalerKind::paper_lineup() {
        let outcome = run_experiment(&spec, kind);
        let sent: u64 = outcome.result.sent_per_second.iter().sum();
        assert_eq!(
            sent,
            outcome.result.completed + outcome.result.in_flight_at_end,
            "{kind:?}"
        );
        // Conformant requests can never exceed sent requests, per second.
        for (sec, (&sent, &conf)) in outcome
            .result
            .sent_per_second
            .iter()
            .zip(&outcome.result.conformant_per_second)
            .enumerate()
        {
            assert!(conf <= sent, "{kind:?} at second {sec}");
        }
    }
}
