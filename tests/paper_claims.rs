//! The paper's headline claims (§V-D), asserted as tests on fast
//! experiment scenarios. The full-size evidence lives in the bench targets
//! and EXPERIMENTS.md; these tests keep the claims from silently
//! regressing.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::bench::setups::smoke_test;
use chamulteon_repro::bench::{run_experiment, ExperimentSpec, ScalerKind};
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::sim::{DeploymentProfile, SloPolicy};
use chamulteon_repro::workload::generators::{bibsonomy_like, wikipedia_like};

fn mini(
    name: &str,
    generator: fn(u64, f64, f64) -> chamulteon_repro::workload::LoadTrace,
    peak_rate: f64,
    profile: DeploymentProfile,
    interval: f64,
) -> ExperimentSpec {
    // One synthetic day compressed into 20 minutes — big enough for stable
    // orderings, small enough for the default test profile.
    let day = generator(99, 60.0, 86_400.0);
    let trace = day.compress_to(1_200.0).scale_to_peak(peak_rate);
    ExperimentSpec {
        name: name.into(),
        trace,
        model: ApplicationModel::paper_benchmark(),
        profile,
        slo: SloPolicy::default(),
        scaling_interval: interval,
        seed: 9,
        warmup_days: 2,
        hist_bucket: 120.0,
    }
}

/// §V-D finding 1: "Chamulteon exhibits in three out of four experiments
/// the best user-oriented metrics" — here: best or tied-best SLO and Apdex
/// among the lineup on both trace families.
#[test]
fn chamulteon_best_user_metrics() {
    for spec in [
        mini(
            "wiki",
            wikipedia_like,
            250.0,
            DeploymentProfile::docker(),
            60.0,
        ),
        mini(
            "bib",
            bibsonomy_like,
            250.0,
            DeploymentProfile::docker(),
            60.0,
        ),
    ] {
        let mut results = Vec::new();
        for kind in ScalerKind::paper_lineup() {
            results.push((kind, run_experiment(&spec, kind).report));
        }
        let cham = &results[0].1;
        for (kind, report) in &results[1..] {
            assert!(
                cham.slo_violations <= report.slo_violations + 1.0,
                "{}: chamulteon {:.1}% vs {:?} {:.1}%",
                spec.name,
                cham.slo_violations,
                kind,
                report.slo_violations
            );
        }
    }
}

/// §V-D finding 4: "Reg and Adapt tend to under-provision and thus exhibit
/// the worst user-oriented metrics."
#[test]
fn reg_and_adapt_worst_user_metrics() {
    let spec = mini(
        "wiki",
        wikipedia_like,
        250.0,
        DeploymentProfile::docker(),
        60.0,
    );
    let mut reports = Vec::new();
    for kind in ScalerKind::paper_lineup() {
        reports.push((kind.name(), run_experiment(&spec, kind).report));
    }
    let worst = reports
        .iter()
        .min_by(|a, b| a.1.apdex.partial_cmp(&b.1.apdex).unwrap())
        .unwrap();
    assert!(
        worst.0 == "reg" || worst.0 == "adapt",
        "worst Apdex is {} ({:.1}%)",
        worst.0,
        worst.1.apdex
    );
    // And they under-provision more (higher tau_U) than chamulteon.
    let tau_u = |name: &str| {
        reports
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1
            .mean_elasticity()
            .tau_u
    };
    assert!(tau_u("reg") > tau_u("chamulteon"));
    assert!(tau_u("adapt") > tau_u("chamulteon"));
}

/// §V-A: Chamulteon keeps the system slightly over-provisioned by design —
/// its under-provisioning accuracy stays small while its over-provisioning
/// time share is high.
#[test]
fn chamulteon_slightly_overprovisions_by_design() {
    let spec = mini(
        "wiki",
        wikipedia_like,
        250.0,
        DeploymentProfile::docker(),
        60.0,
    );
    let report = run_experiment(&spec, ScalerKind::Chamulteon).report;
    let m = report.mean_elasticity();
    assert!(m.theta_u < 10.0, "theta_U {:.1}%", m.theta_u);
    assert!(m.tau_o > m.tau_u, "should sit on the over side");
}

/// Fig. 2's oscillation claim, quantified with the adaptation-rate metric:
/// Reg issues more scaling operations than Chamulteon for the same trace.
#[test]
fn reg_oscillates_more_than_chamulteon() {
    let spec = mini(
        "bib",
        bibsonomy_like,
        250.0,
        DeploymentProfile::docker(),
        60.0,
    );
    let cham = run_experiment(&spec, ScalerKind::Chamulteon).report;
    let reg = run_experiment(&spec, ScalerKind::Reg).report;
    assert!(
        reg.adaptations_per_hour >= cham.adaptations_per_hour * 0.8,
        "reg {:.1}/h vs chamulteon {:.1}/h",
        reg.adaptations_per_hour,
        cham.adaptations_per_hour
    );
}

/// The VM scenario separates reactive-only from the hybrid: with slow
/// provisioning the proactive cycle must not make things worse, and both
/// Chamulteon variants must beat Adapt/Reg.
#[test]
fn vm_scenario_orderings() {
    let spec = mini(
        "wiki-vm",
        wikipedia_like,
        80.0,
        DeploymentProfile::vm(),
        120.0,
    );
    let hybrid = run_experiment(&spec, ScalerKind::Chamulteon).report;
    let adapt = run_experiment(&spec, ScalerKind::Adapt).report;
    let reg = run_experiment(&spec, ScalerKind::Reg).report;
    assert!(hybrid.slo_violations < adapt.slo_violations);
    assert!(hybrid.slo_violations < reg.slo_violations);
}

/// Cost metrics are populated and sane for every scaler.
#[test]
fn accounting_metrics_populated() {
    let spec = smoke_test();
    for kind in ScalerKind::paper_lineup() {
        let report = run_experiment(&spec, kind).report;
        assert!(report.instance_hours > 0.0, "{kind:?}");
        assert!(report.adaptations_per_hour >= 0.0, "{kind:?}");
        // Sanity ceiling: nobody uses more than max_instances for the
        // whole experiment on all services.
        assert!(report.instance_hours < 3.0 * 200.0 * spec.trace.duration() / 3600.0);
    }
}
