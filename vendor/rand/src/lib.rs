//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses: [`rngs::StdRng`], [`Rng`], [`SeedableRng`].
//!
//! The container this repo builds in has no network access to crates.io, so
//! the real `rand` crate cannot be resolved. This crate keeps the call sites
//! source-compatible while providing a deterministic, statistically solid
//! generator (SplitMix64-seeded xoshiro256++). Streams differ from upstream
//! `rand`, which is fine: every consumer in the workspace treats the seed as
//! an opaque reproducibility handle, never as a contract on exact values.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand::RngCore` (subset).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`
/// (subset: only `seed_from_u64`, the single entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits via
/// `Rng::gen` (stand-in for sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, matching `rand`'s method.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Primitive types that support uniform sampling from a half-open or
/// inclusive range (stand-in for `rand::distributions::uniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. Callers guarantee `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`. Callers guarantee `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased draw from `[0, span)` by rejection sampling on the top bits.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; rejecting values at or
    // above it removes modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((low as i128) + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = f64::sample(rng);
        let v = low + u * (high - low);
        // Guard against rounding up to `high` on degenerate spans.
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level convenience methods, mirroring `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over its natural domain;
    /// `[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs` (subset: `StdRng`).

    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator: xoshiro256++ seeded through
    /// SplitMix64, as recommended by its authors. Not the same stream as
    /// upstream `rand::rngs::StdRng` (ChaCha12), but the workspace only
    /// relies on determinism per seed, not on exact values.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
