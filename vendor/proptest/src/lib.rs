//! Vendored, dependency-free stand-in for the subset of the `proptest` API
//! this workspace's property tests use.
//!
//! The build container has no network access to crates.io, so the real
//! `proptest` crate cannot be resolved. This crate keeps the test files
//! source-compatible: the [`proptest!`] macro, `prop_assert*` /
//! `prop_assume!`, numeric-range and tuple [`Strategy`] impls,
//! [`prop::collection::vec`] and [`any`]. It deliberately omits shrinking —
//! on failure it reports the offending inputs verbatim instead of
//! minimizing them. Case generation is deterministic per test (seeded from
//! the test's module path and name), so failures reproduce exactly.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The generator driving a property test; one per test function.
pub type TestRng = StdRng;

/// Builds the deterministic generator for a test, seeded from its fully
/// qualified name so every test draws an independent, reproducible stream.
pub fn test_rng(qualified_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in qualified_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`
/// (subset: the case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exercising a meaningful slice of each input domain.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case, threaded out of the test body by the
/// `prop_assert*` / `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried with fresh
    /// values and does not count toward the case budget.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// A recipe for generating values of `Self::Value`, mirroring
/// `proptest::strategy::Strategy` (subset: generation only, no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
}

/// Values with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` (subset).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning sign and magnitude; NaN/inf are left to
    /// dedicated edge-case tests.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let magnitude = (rng.gen::<f64>() * 600.0 - 300.0).exp2();
        if rng.gen::<bool>() {
            magnitude
        } else {
            -magnitude
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod prop {
    //! Mirrors the `proptest::prop` facade module (subset: `collection`).

    pub mod collection {
        //! Collection strategies (subset: [`vec`]).

        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s with a length drawn from `len` and
        /// elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A `Vec` strategy, mirroring `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Mirrors `proptest::prelude`: everything a property-test file needs.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///
///     /// Doc comments and attributes are preserved.
///     #[test]
///     fn name(arg in strategy, other in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let case = move || {
                    $body
                    ::std::result::Result::Ok(())
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = case();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= 65_536,
                            "proptest: `{}` rejected too many cases (prop_assume too strict)",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest: `{}` failed after {} passing case(s)\n  {}\n  inputs: {}",
                            stringify!($name), passed, message, inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert_eq!`. Operands are borrowed, not moved.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                        stringify!($left), stringify!($right), left, right,
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {}",
                        stringify!($left), stringify!($right), left, right, format!($($fmt)+),
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert_ne!`. Operands are borrowed, not moved.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}` (both: {:?})",
                        stringify!($left),
                        stringify!($right),
                        left,
                    )));
                }
            }
        }
    };
}

/// Rejects the current case inside a [`proptest!`] body, mirroring
/// `proptest::prop_assume!`. Rejected cases are retried with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_and_vec_strategies_generate_in_domain() {
        let mut rng = crate::test_rng("vendored::smoke");
        for _ in 0..1_000 {
            let x = (1u32..10).generate(&mut rng);
            assert!((1..10).contains(&x));
            let f = (0.5f64..=1.5).generate(&mut rng);
            assert!((0.5..=1.5).contains(&f));
            let v = prop::collection::vec((0usize..3, 0.0f64..1.0), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (i, u) in v {
                assert!(i < 3);
                assert!((0.0..1.0).contains(&u));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro plumbing itself: generation, assume, assert.
        #[test]
        fn macro_round_trip(n in 1u32..100, flag in any::<bool>()) {
            prop_assume!(n != 13);
            prop_assert!((1..100).contains(&n));
            prop_assert_ne!(n, 13);
            prop_assert_eq!(flag, flag, "flag was {}", flag);
        }
    }

    #[test]
    #[should_panic(expected = "proptest: `always_fails` failed")]
    fn failure_reports_inputs() {
        // No #[test] on the inner fn: it is invoked directly below.
        proptest! {
            fn always_fails(n in 0u32..5) {
                prop_assert!(n > 100, "n too small");
            }
        }
        always_fails();
    }
}
