//! Scaling a *custom* application: Chamulteon is not limited to the
//! paper's three-service chain. This example models a five-service
//! micro-service DAG (gateway fanning out to two backends, both hitting a
//! shared database; an async audit service sampled on 30% of requests)
//! and lets Chamulteon size it for a morning ramp.
//!
//! Run with: `cargo run --release --example custom_application`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::core::{Chamulteon, ChamulteonConfig};
use chamulteon_repro::demand::MonitoringSample;
use chamulteon_repro::perfmodel::ApplicationModelBuilder;

fn main() {
    // gateway -> catalog (every request) and checkout (40% of requests);
    // both hit the database; checkout also notifies audit on 75% of its
    // calls (= 30% of external requests).
    let model = ApplicationModelBuilder::new()
        .service("gateway", 0.020, 1, 300, 2)
        .service("catalog", 0.080, 1, 300, 2)
        .service("checkout", 0.120, 1, 300, 2)
        .service("database", 0.030, 2, 300, 2)
        .service("audit", 0.050, 1, 300, 1)
        .call("gateway", "catalog", 1.0)
        .call("gateway", "checkout", 0.4)
        .call("catalog", "database", 1.0)
        .call("checkout", "database", 2.0) // reads + writes
        .call("checkout", "audit", 0.75)
        .entry("gateway")
        .build()
        .expect("valid model");

    println!(
        "visit ratios per external request: {:?}",
        model.visit_ratios()
    );

    let mut scaler = Chamulteon::new(model.clone(), ChamulteonConfig::default());
    let mut instances: Vec<u32> = model
        .services()
        .iter()
        .map(|s| s.initial_instances())
        .collect();
    let demands: Vec<f64> = model
        .services()
        .iter()
        .map(|s| s.nominal_demand())
        .collect();
    let ratios = model.visit_ratios();

    println!(
        "\n{:<6} {:>6}  {:<30}",
        "time", "load", "instances [gw, cat, chk, db, audit]"
    );
    for minute in 1..=12 {
        let t = minute as f64 * 60.0;
        // Morning ramp: 50 -> 600 req/s.
        let rate = 50.0 + 550.0 * (minute as f64 / 12.0);
        let samples: Vec<MonitoringSample> = (0..model.service_count())
            .map(|i| {
                let local = rate * ratios[i];
                let n = instances[i].max(1);
                let util = (local * demands[i] / f64::from(n)).min(1.0);
                let capacity = f64::from(n) / demands[i];
                MonitoringSample::new(60.0, (local * 60.0).round() as u64, util, n, None)
                    .expect("valid sample")
                    .with_completions((local.min(capacity) * 60.0).round() as u64)
            })
            .collect();
        instances = scaler.tick(t, &samples);
        println!("{t:<6.0} {rate:>6.0}  {instances:?}");
    }

    println!("\nEvery tier is sized in the same round from the propagated rates —");
    println!("note the database tracking catalog + 2x checkout traffic, and audit");
    println!("staying small (it only sees 30% of external requests).");
}
