//! Demonstrates the FOX cost-awareness component (§III-A3): under hourly
//! billing, releasing an instance minutes after paying for its hour just
//! to re-buy it for the next spike pays twice; FOX keeps paid instances
//! until their charging interval is nearly exhausted.
//!
//! Run with: `cargo run --release --example cost_awareness`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::core::{Chamulteon, ChamulteonConfig, ChargingModel};
use chamulteon_repro::demand::MonitoringSample;
use chamulteon_repro::perfmodel::ApplicationModel;

/// Builds the monitoring tuple for a given load on the current deployment.
fn samples(rate: f64, instances: &[u32]) -> Vec<MonitoringSample> {
    let demands = [0.059, 0.1, 0.04];
    (0..3)
        .map(|i| {
            let n = instances[i].max(1);
            let capacity = f64::from(n) / demands[i];
            let util = (rate * demands[i] / f64::from(n)).min(1.0);
            let completions = (rate.min(capacity) * 60.0).round() as u64;
            MonitoringSample::new(60.0, (rate * 60.0).round() as u64, util, n, None)
                .expect("valid sample")
                .with_completions(completions)
        })
        .collect()
}

/// A bursty load: repeated 10-minute spikes separated by quiet periods —
/// the worst case for naive release under hourly billing.
fn load_at_minute(minute: usize) -> f64 {
    if (minute / 10).is_multiple_of(2) {
        200.0
    } else {
        20.0
    }
}

fn drive(mut scaler: Chamulteon, label: &str) {
    let mut instances = vec![3u32, 3, 3];
    let mut scale_downs = 0u32;
    let mut instance_seconds = 0.0;
    for minute in 1..=60 {
        let t = minute as f64 * 60.0;
        let rate = load_at_minute(minute - 1);
        let targets = scaler.tick(t, &samples(rate, &instances));
        for (s, &target) in targets.iter().enumerate() {
            if target < instances[s] {
                scale_downs += instances[s] - target;
            }
            instances[s] = target;
        }
        instance_seconds += instances.iter().map(|&n| f64::from(n)).sum::<f64>() * 60.0;
    }
    let billed = scaler.billed_instance_seconds(3600.0);
    println!("{label}");
    println!("  instances released over the hour : {scale_downs}");
    println!(
        "  raw instance hours used          : {:.1}",
        instance_seconds / 3600.0
    );
    match billed {
        Some(b) => println!("  FOX-accounted billed hours       : {:.1}", b / 3600.0),
        None => println!("  FOX-accounted billed hours       : (FOX disabled)"),
    }
    println!();
}

fn main() {
    println!("Bursty load (200 req/s spikes alternating with 20 req/s lulls), 1 hour.\n");
    let model = ApplicationModel::paper_benchmark();

    drive(
        Chamulteon::new(model.clone(), ChamulteonConfig::reactive_only()),
        "Chamulteon without FOX (releases on every lull)",
    );
    drive(
        Chamulteon::new(model.clone(), ChamulteonConfig::reactive_only())
            .with_fox(ChargingModel::ec2_hourly()),
        "Chamulteon + FOX under EC2 hourly billing (keeps paid instances)",
    );
    drive(
        Chamulteon::new(model, ChamulteonConfig::reactive_only())
            .with_fox(ChargingModel::gcp_per_minute()),
        "Chamulteon + FOX under GCP per-minute billing (release is cheap)",
    );

    println!("Under hourly billing FOX suppresses nearly all releases within the paid");
    println!("hour — the lull-and-spike pattern would otherwise buy the same capacity");
    println!("repeatedly. Under per-minute billing FOX lets releases through.");
}
