//! Nested auto-scaling end-to-end (paper §VI future work): containers boot
//! into a shared VM pool. Without VM-pool planning, every container
//! scale-up beyond the free slots silently inherits the VM boot delay —
//! with a headroom-keeping planner, the container layer stays fast.
//!
//! Run with: `cargo run --release --example nested_scaling`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::core::{Chamulteon, ChamulteonConfig, NestedPlanner};
use chamulteon_repro::demand::MonitoringSample;
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::sim::{
    DeploymentProfile, Simulation, SimulationConfig, SloPolicy, VmPoolConfig,
};
use chamulteon_repro::workload::LoadTrace;

const SLOTS_PER_VM: u32 = 8;

fn drive(planner: Option<NestedPlanner>, label: &str) {
    let model = ApplicationModel::paper_benchmark();
    // Ramp 30 -> 250 req/s between minutes 10 and 20, hold, ramp down:
    // the container layer needs ~6 extra slots every interval during the
    // ramp — exactly what slot headroom is for.
    let rates: Vec<f64> = (0..30)
        .map(|k| match k {
            0..=9 => 30.0,
            10..=19 => 30.0 + 220.0 * ((k - 9) as f64 / 10.0),
            _ => 250.0,
        })
        .collect();
    let trace = LoadTrace::new(60.0, rates).expect("valid trace");
    let pool = VmPoolConfig::new(SLOTS_PER_VM, 300.0, 2); // VM boot: 5 min
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 55)
        .with_vm_pool(pool);
    let mut sim = Simulation::new(&model, &trace, config);
    for s in 0..3 {
        sim.set_supply(s, 2).expect("valid service");
    }
    // Start with enough VMs for the initial placement.
    sim.scale_vms(1).ok();

    let mut scaler = Chamulteon::new(model.clone(), ChamulteonConfig::reactive_only());
    let intervals = (trace.duration() / 60.0) as usize;
    let mut max_waiting = 0usize;
    for k in 1..=intervals {
        let t = k as f64 * 60.0;
        sim.run_until(t).expect("time is monotonic");
        let stats = sim.interval(k - 1).expect("interval done");
        let samples: Vec<MonitoringSample> = stats
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let provisioned = sim.provisioned(s).max(1);
                // Rescale utilization so the busy time U*n*T stays the
                // measured one even while instances are still booting.
                let util = (st.utilization * f64::from(st.instances_end.max(1))
                    / f64::from(provisioned))
                .clamp(0.0, 1.0);
                MonitoringSample::new(
                    st.duration,
                    st.arrivals,
                    util,
                    provisioned,
                    st.mean_response_time,
                )
                .expect("valid sample")
                .with_completions(st.completions)
            })
            .collect();
        let targets = scaler.tick(t, &samples);
        // VM layer first (when a planner exists), then containers.
        if let Some(planner) = &planner {
            let vm_target = planner.plan(&targets, None);
            sim.scale_vms(vm_target).expect("pool exists");
        }
        for (s, &target) in targets.iter().enumerate() {
            sim.scale_to(s, target).expect("valid service");
        }
        max_waiting = max_waiting.max(sim.waiting_containers().unwrap_or(0));
    }
    let result = sim.finish();
    println!(
        "{label:<42} SLO {:>5.1}%  Apdex {:>5.1}%  max stalled boots {:>3}",
        result.slo_violation_percent(),
        result.apdex_percent(),
        max_waiting
    );
}

fn main() {
    println!("Nested deployment: containers in VMs ({SLOTS_PER_VM} slots/VM, 5 min VM boot).");
    println!("Ramp 30 -> 250 req/s between minutes 10 and 20.\n");

    drive(None, "no VM planning (pool stays at 2 VMs)");
    drive(
        Some(NestedPlanner::new(SLOTS_PER_VM, SLOTS_PER_VM)),
        "planner, one spare VM of headroom",
    );
    drive(
        Some(NestedPlanner::new(SLOTS_PER_VM, 3 * SLOTS_PER_VM)),
        "planner, three spare VMs of headroom",
    );

    println!();
    println!("Without planning the ramp fills the pool and every further container boot");
    println!("stalls behind the 5-minute VM boot. The planner grows the pool with the");
    println!("demand; headroom absorbs each interval's growth while the next VM boots —");
    println!("more headroom, fewer stalls, at the cost of idle slots.");
}
