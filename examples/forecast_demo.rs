//! Demonstrates the forecasting pipeline Chamulteon's proactive cycle
//! relies on: season detection, decomposition-based hybrid forecasting
//! (Telescope-style), accuracy scoring and drift detection.
//!
//! Run with: `cargo run --release --example forecast_demo`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::forecast::{
    detect_season_length, mase, DriftDetector, Forecaster, NaiveForecaster,
    SeasonalNaiveForecaster, TelescopeForecaster, TimeSeries,
};
use chamulteon_repro::workload::generators::wikipedia_like;

fn main() {
    // Three synthetic days at 10-minute resolution: 144 points per day.
    let trace = wikipedia_like(99, 600.0, 3.0 * 86_400.0).scale_to_peak(500.0);
    let series = TimeSeries::from_values(600.0, trace.rates().to_vec()).expect("finite rates");

    // Hold out the last half day.
    let holdout = 72;
    let (train, test) = series.split_at(series.len() - holdout);
    println!(
        "history: {} observations at {:.0} s; forecasting {holdout} steps ahead\n",
        train.len(),
        train.step()
    );

    // 1. Season detection.
    match detect_season_length(&train) {
        Some(period) => println!(
            "detected season: {period} observations (= {:.1} h)",
            period as f64 * train.step() / 3600.0
        ),
        None => println!("no season detected"),
    }

    // 2. Compare the hybrid against the reference methods.
    let methods: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("telescope", Box::new(TelescopeForecaster::default())),
        ("naive", Box::new(NaiveForecaster)),
        (
            "seasonal-naive",
            Box::new(SeasonalNaiveForecaster::new(144)),
        ),
    ];
    println!("\n{:<16} {:>10} {:>12}", "method", "MASE", "first value");
    let actual = test.values();
    for (name, method) in &methods {
        let fc = method.forecast(&train, holdout).expect("forecast succeeds");
        let score = mase(train.values(), actual, fc.values(), 1);
        println!("{name:<16} {score:>10.3} {:>12.1}", fc.values()[0]);
    }

    // 3. Drift detection: feed the telescope forecast increasingly wrong
    //    observations and watch the detector trip.
    let telescope = TelescopeForecaster::default()
        .forecast(&train, holdout)
        .expect("forecast succeeds");
    let detector = DriftDetector::default();
    println!("\ndrift detection against the telescope forecast:");
    for (label, factor) in [
        ("reality as predicted", 1.0),
        ("reality 3x the forecast", 3.0),
    ] {
        let observed: Vec<f64> = actual.iter().take(6).map(|v| v * factor).collect();
        let drifted = detector.has_drifted(train.values(), &observed, &telescope.values()[..6]);
        println!("  {label:<24} -> drifted = {drifted}");
    }
}
