//! Quickstart: scale the paper's three-service application with Chamulteon
//! on a short synthetic load spike and print what happens.
//!
//! Run with: `cargo run --release --example quickstart`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::core::{Chamulteon, ChamulteonConfig};
use chamulteon_repro::demand::MonitoringSample;
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
use chamulteon_repro::workload::LoadTrace;

fn main() {
    // The paper's benchmark application: UI (0.059 s) -> validation
    // (0.1 s) -> data (0.04 s), modeled as an invocation chain.
    let model = ApplicationModel::paper_benchmark();

    // A 20-minute load profile with a spike in the middle.
    let rates = vec![
        30.0, 30.0, 40.0, 60.0, 120.0, 200.0, 240.0, 240.0, 200.0, 140.0, 80.0, 50.0, 40.0, 35.0,
        30.0, 30.0, 30.0, 30.0, 30.0, 30.0,
    ];
    let trace = LoadTrace::new(60.0, rates).expect("valid trace");

    // Simulated Docker deployment: instances ready ~10 s after a scale-up.
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 42);
    let mut sim = Simulation::new(&model, &trace, config);
    for s in 0..3 {
        sim.set_supply(s, 3).expect("valid service");
    }

    // The Chamulteon controller with default thresholds.
    let mut scaler = Chamulteon::new(model.clone(), ChamulteonConfig::default());

    println!("time |  load | supply (ui/val/data) | decision");
    println!("-----+-------+----------------------+---------");
    let interval = 60.0;
    let intervals = (trace.duration() / interval) as usize;
    for k in 1..=intervals {
        let t = k as f64 * interval;
        sim.run_until(t).expect("time is monotonic");
        let stats = sim.interval(k - 1).expect("interval completed");

        // Build the monitoring tuple the paper's external monitor provides.
        let samples: Vec<MonitoringSample> = stats
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let provisioned = sim.provisioned(s).max(1);
                // Rescale utilization so the busy time U*n*T stays the
                // measured one even while instances are still booting.
                let util = (st.utilization * f64::from(st.instances_end.max(1))
                    / f64::from(provisioned))
                .clamp(0.0, 1.0);
                MonitoringSample::new(
                    st.duration,
                    st.arrivals,
                    util,
                    provisioned,
                    st.mean_response_time,
                )
                .expect("valid sample")
                .with_completions(st.completions)
            })
            .collect();

        let targets = scaler.tick(t, &samples);
        for (s, &target) in targets.iter().enumerate() {
            sim.scale_to(s, target).expect("valid service");
        }
        println!(
            "{:>4.0} | {:>5.0} | {:>6} {:>5} {:>6} | -> {:?}",
            t,
            stats[0].arrivals as f64 / interval,
            sim.running(0),
            sim.running(1),
            sim.running(2),
            targets
        );
    }

    let result = sim.finish();
    println!();
    println!("requests served     : {}", result.completed);
    println!(
        "SLO violations      : {:.1}%",
        result.slo_violation_percent()
    );
    println!("Apdex               : {:.1}%", result.apdex_percent());
    println!(
        "mean response time  : {:.0} ms",
        result.mean_response_time() * 1000.0
    );
}
