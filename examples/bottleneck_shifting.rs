//! Reproduces the paper's §I motivation and §V-A observation: deploying
//! an independent single-service auto-scaler per service causes
//! **bottleneck shifting** — each tier only scales after its predecessor
//! stopped throttling the traffic, so a load step ripples tier by tier —
//! while Chamulteon scales all tiers in the same decision round.
//!
//! Run with: `cargo run --release --example bottleneck_shifting`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::bench::{run_experiment, ExperimentSpec, ScalerKind};
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::sim::{DeploymentProfile, SloPolicy};
use chamulteon_repro::workload::LoadTrace;

/// A load step: quiet, then a sustained jump to 300 req/s.
fn step_spec() -> ExperimentSpec {
    let mut rates = vec![20.0; 5];
    rates.extend(vec![300.0; 15]);
    ExperimentSpec {
        name: "Load step".into(),
        trace: LoadTrace::new(60.0, rates).expect("valid trace"),
        model: ApplicationModel::paper_benchmark(),
        profile: DeploymentProfile::docker(),
        slo: SloPolicy::default(),
        scaling_interval: 60.0,
        seed: 11,
        warmup_days: 0, // a step is unforecastable; this isolates reaction
        hist_bucket: 300.0,
    }
}

/// First time the tier's supply reaches the capacity the step requires.
fn adequate_at(
    outcome: &chamulteon_repro::bench::ExperimentOutcome,
    service: usize,
    needed: u32,
) -> Option<f64> {
    let mut t = 0.0;
    while t < outcome.result.duration {
        if outcome.result.supply_at(service, t) >= needed {
            return Some(t);
        }
        t += 1.0;
    }
    None
}

fn main() {
    let spec = step_spec();
    // Instances each tier needs for 300 req/s at 80% utilization.
    let needed = [
        (300.0 * 0.059 / 0.8_f64).ceil() as u32,
        (300.0 * 0.1 / 0.8_f64).ceil() as u32,
        (300.0 * 0.04 / 0.8_f64).ceil() as u32,
    ];
    println!("Load step 20 -> 300 req/s at t = 300 s.");
    println!("Adequate capacity per tier: {needed:?} instances.\n");

    for kind in [ScalerKind::Reg, ScalerKind::React, ScalerKind::Chamulteon] {
        let outcome = run_experiment(&spec, kind);
        let times: Vec<Option<f64>> = (0..3)
            .map(|s| adequate_at(&outcome, s, needed[s]))
            .collect();
        println!("{}:", kind.name());
        for (s, label) in ["ui", "validation", "data"].iter().enumerate() {
            match times[s] {
                Some(t) => println!("  {label:<11} adequate at t = {t:>4.0} s"),
                None => println!("  {label:<11} never adequate"),
            }
        }
        // Shifting indicator: spread between the first and last tier
        // reaching adequacy.
        let known: Vec<f64> = times.iter().flatten().copied().collect();
        if known.len() == 3 {
            let spread = known.iter().cloned().fold(f64::MIN, f64::max)
                - known.iter().cloned().fold(f64::MAX, f64::min);
            println!("  staggering between tiers: {spread:.0} s");
        }
        println!(
            "  SLO violations {:.1}%, Apdex {:.1}%\n",
            outcome.report.slo_violations, outcome.report.apdex
        );
    }
    println!("Expected: the independent scalers stagger tier scale-ups (each waits for");
    println!("its predecessor's throttle to lift); Chamulteon sizes every tier in the");
    println!("same round, so its staggering is bounded by one provisioning delay.");
}
