//! The fault-injection harness and degradation ladder end-to-end: every
//! scaler of the paper's lineup runs the smoke scenario once fault-free
//! and once under each fault class — dropped samples, corrupted samples,
//! failing actuations, crashing instances — and the robustness tables
//! show how much each one degraded and how often the ladder engaged.
//!
//! Run with: `cargo run --release --example faulty_environment`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::bench::robustness::{robustness_lineup, FaultClass};
use chamulteon_repro::bench::setups::smoke_test;
use chamulteon_repro::bench::{run_experiment_with_faults, ScalerKind};
use chamulteon_repro::core::{DegradationReason, RetryPolicy};
use chamulteon_repro::metrics::render_robustness_table;
use chamulteon_repro::sim::{CorruptionMode, FaultPlan};

fn main() {
    let spec = smoke_test();
    let retry = RetryPolicy::default();

    // One table per fault class: clean vs faulted SLO violations, the
    // number of injected faults and of degraded decisions.
    for class in FaultClass::ALL {
        let reports = robustness_lineup(&spec, class, &retry);
        let title = format!("Faults: {} ({})", class.name(), spec.name);
        println!("{}", render_robustness_table(&title, &reports));
    }

    // A hand-built plan, mixing fault kinds and scoping some to a single
    // service, to show the underlying primitives.
    let duration = spec.trace.duration();
    let plan = FaultPlan::new(spec.seed)
        .drop_samples(Some(0), 0.2 * duration, 0.8 * duration, 0.3)
        .corrupt_samples(
            None,
            0.4 * duration,
            0.6 * duration,
            0.2,
            CorruptionMode::Nan,
        )
        .fail_actuations(Some(1), 0.3 * duration, 0.7 * duration, 0.5)
        .crash_instances(Some(2), 0.5 * duration, 0.9 * duration, 0.2, 1);
    let run = run_experiment_with_faults(&spec, ScalerKind::Chamulteon, Some(plan), &retry);

    println!("custom plan on chamulteon:");
    println!(
        "  injected {} faults, took {} ladder rungs, SLO violations {:.1}%",
        run.outcome.result.fault_log.len(),
        run.degradation.len(),
        run.outcome.report.slo_violations
    );
    let held = run
        .degradation
        .count_matching(|r| matches!(r, DegradationReason::SampleHeld { .. }));
    let quarantined = run
        .degradation
        .count_matching(|r| matches!(r, DegradationReason::SampleQuarantined { .. }));
    let retried = run
        .degradation
        .count_matching(|r| matches!(r, DegradationReason::ActuationRetried { .. }));
    println!("  held samples: {held}, quarantined: {quarantined}, actuation retries: {retried}");
}
