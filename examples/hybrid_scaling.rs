//! The vertical + horizontal extension (paper §VI, first future-work
//! item) end-to-end: the hybrid decision logic drives BOTH the instance
//! count and the instance size of every service in the simulator, and the
//! run is compared against pure horizontal scaling on cost and SLO.
//!
//! Run with: `cargo run --release --example hybrid_scaling`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_repro::core::{hybrid_decisions, ChamulteonConfig, VerticalPolicy};
use chamulteon_repro::perfmodel::ApplicationModel;
use chamulteon_repro::sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
use chamulteon_repro::workload::LoadTrace;

struct RunSummary {
    slo_violations: f64,
    apdex: f64,
    cost: f64,
}

fn drive(policy: &VerticalPolicy, label: &str) -> RunSummary {
    let model = ApplicationModel::paper_benchmark();
    // Ramp 50 -> 400 req/s and back over 40 minutes.
    let rates: Vec<f64> = (0..40)
        .map(|k| {
            let x = k as f64 / 39.0;
            50.0 + 350.0 * (std::f64::consts::PI * x).sin()
        })
        .collect();
    let trace = LoadTrace::new(60.0, rates).expect("valid trace");
    let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 77);
    let mut sim = Simulation::new(&model, &trace, config);
    for s in 0..3 {
        sim.set_supply(s, 2).expect("valid service");
    }
    let cham_config = ChamulteonConfig::default();
    let demands = [0.059, 0.1, 0.04];
    let mut cost = 0.0;
    let intervals = (trace.duration() / 60.0) as usize;
    for k in 1..=intervals {
        let t = k as f64 * 60.0;
        sim.run_until(t).expect("time is monotonic");
        let stats = sim.interval(k - 1).expect("interval done");
        let rate = stats[0].arrivals as f64 / 60.0;
        let decisions = hybrid_decisions(&model, rate, &demands, policy, &cham_config);
        for (s, d) in decisions.iter().enumerate() {
            sim.scale_to(s, d.instances).expect("valid service");
            sim.scale_vertical(s, policy.sizes()[d.size_index].speed)
                .expect("valid speed");
            cost += d.cost_per_hour / 60.0; // one minute of this configuration
        }
    }
    let result = sim.finish();
    println!(
        "{label:<36} SLO {:>5.1}%  Apdex {:>5.1}%  cost {:>7.2}",
        result.slo_violation_percent(),
        result.apdex_percent(),
        cost
    );
    RunSummary {
        slo_violations: result.slo_violation_percent(),
        apdex: result.apdex_percent(),
        cost,
    }
}

fn main() {
    println!("Sinusoidal ramp 50 -> 400 -> 50 req/s, 40 min, Docker deployment.\n");
    let ladder = VerticalPolicy::ec2_like();
    let horizontal_only = VerticalPolicy::new(vec![ladder.sizes()[0].clone()], 0.15);

    let h = drive(&horizontal_only, "pure horizontal (small instances)");
    let v = drive(&ladder, "hybrid (EC2-like size ladder)");

    println!();
    println!(
        "cost saving from going hybrid: {:.1}%",
        100.0 * (h.cost - v.cost) / h.cost
    );
    println!(
        "user metrics preserved: SLO {:.1}% vs {:.1}%, Apdex {:.1}% vs {:.1}%",
        v.slo_violations, h.slo_violations, v.apdex, h.apdex
    );
}
