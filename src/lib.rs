//! Umbrella crate for the Chamulteon reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency. Library users should
//! normally depend on the individual crates (`chamulteon`,
//! `chamulteon-sim`, ...) directly.

#![forbid(unsafe_code)]

pub use chamulteon as core;
pub use chamulteon_bench as bench;
pub use chamulteon_demand as demand;
pub use chamulteon_forecast as forecast;
pub use chamulteon_metrics as metrics;
pub use chamulteon_perfmodel as perfmodel;
pub use chamulteon_queueing as queueing;
pub use chamulteon_scalers as scalers;
pub use chamulteon_sim as sim;
pub use chamulteon_workload as workload;
