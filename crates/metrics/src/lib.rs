//! Elasticity and user-oriented metrics for the Chamulteon reproduction
//! (§IV-D).
//!
//! The paper scores every auto-scaler with:
//!
//! * the SPEC-endorsed **provisioning accuracy** θ_U/θ_O and **wrong
//!   provisioning time share** τ_U/τ_O (Herbst et al., ToMPECS 2018) —
//!   [`elasticity_metrics`],
//! * its own aggregate, the **auto-scaler worst-case deviation ς**: the
//!   Euclidean distance of the worst per-service accuracy and time-share
//!   averages from the theoretically optimal auto-scaler —
//!   [`worst_case_deviation`],
//! * the **SLO violation rate** and the **Apdex** user-satisfaction score
//!   (computed by `chamulteon-sim` from per-request outcomes).
//!
//! The ground-truth demand `d_t` — "the minimal amount of resources
//! required to meet the SLOs under the load intensity at time `t`" — is
//! derived from the load trace with the same M/M/n model the optimal
//! auto-scaler would use ([`demand_curves`]).
//!
//! # Example
//!
//! ```
//! use chamulteon_metrics::{elasticity_metrics, StepFn};
//!
//! let demand = StepFn::new(vec![(0.0, 2), (50.0, 4)]);
//! let supply = StepFn::new(vec![(0.0, 4)]);
//! let m = elasticity_metrics(&demand, &supply, 100.0);
//! assert_eq!(m.theta_u, 0.0);          // never under-provisioned
//! assert!(m.theta_o > 0.0);            // over-provisioned half the time
//! assert!((m.tau_o - 50.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod accounting;
pub mod aggregate;
pub mod demand_curve;
pub mod elasticity;
pub mod report;
pub mod robustness;
pub mod step;

pub use accounting::{adaptation_rate_per_hour, adaptations, instance_seconds};
pub use aggregate::{worst_case_deviation, WorstCaseDeviation};
pub use demand_curve::{
    demand_curve, demand_curve_with_cache, demand_curves, demand_curves_with_cache, DEMAND_QUANTILE,
};
pub use elasticity::{elasticity_metrics, ElasticityMetrics};
pub use report::{render_table, ScalerReport};
pub use robustness::{render_robustness_table, RobustnessReport};
pub use step::StepFn;
