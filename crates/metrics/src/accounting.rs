//! Cost-oriented accounting metrics.
//!
//! The paper's metric taxonomy (§II-C2) names "cost, system, and
//! user-oriented metrics"; §VI motivates the return-path extension with
//! "sav[ing] instance time". These two numbers make both measurable:
//!
//! * [`instance_seconds`] — the resource bill in its rawest form: the
//!   integral of the supply curve,
//! * [`adaptations`] — how many scaling operations the auto-scaler issued;
//!   a direct quantification of oscillation (Reg's pathology in Fig. 2 is
//!   a high adaptation count at equal supply).

use crate::step::StepFn;

/// The integral of the supply curve over `[0, horizon]`: total
/// instance-seconds used. Divide by 3600 for instance-hours.
pub fn instance_seconds(supply: &StepFn, horizon: f64) -> f64 {
    if !(horizon > 0.0) {
        return 0.0;
    }
    supply.mean_over(horizon) * horizon
}

/// The number of supply *changes* within `[0, horizon)` — scaling
/// adaptations actually executed. The initial placement at `t = 0` does
/// not count, and neither does a change point that re-asserts the value
/// already in effect (a hold cycle re-writing the same supply is not an
/// adaptation).
pub fn adaptations(supply: &StepFn, horizon: f64) -> usize {
    let points = supply.points();
    // Before the first change point the function already takes the first
    // value, so a first point at t > 0 is never a change either.
    let mut effective = points.first().map(|p| p.1);
    let mut count = 0;
    for &(t, v) in points {
        if t > 0.0 && t < horizon && effective != Some(v) {
            count += 1;
        }
        effective = Some(v);
    }
    count
}

/// Adaptations per simulated hour — comparable across experiment
/// durations.
pub fn adaptation_rate_per_hour(supply: &StepFn, horizon: f64) -> f64 {
    if !(horizon > 0.0) {
        return 0.0;
    }
    adaptations(supply, horizon) as f64 * 3600.0 / horizon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_seconds_integrates_steps() {
        let supply = StepFn::new(vec![(0.0, 2), (50.0, 6)]);
        // 2 for 50 s + 6 for 50 s = 400 instance-seconds.
        assert!((instance_seconds(&supply, 100.0) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn constant_supply_costs_linearly() {
        let supply = StepFn::constant(3);
        assert!((instance_seconds(&supply, 3600.0) - 10_800.0).abs() < 1e-9);
        assert_eq!(adaptations(&supply, 3600.0), 0);
    }

    #[test]
    fn degenerate_horizon_is_zero() {
        let supply = StepFn::constant(5);
        assert_eq!(instance_seconds(&supply, 0.0), 0.0);
        assert_eq!(instance_seconds(&supply, -1.0), 0.0);
        assert_eq!(adaptation_rate_per_hour(&supply, 0.0), 0.0);
    }

    #[test]
    fn adaptations_count_changes_not_placement() {
        let supply = StepFn::new(vec![(0.0, 1), (10.0, 3), (20.0, 2), (99.0, 4)]);
        assert_eq!(adaptations(&supply, 100.0), 3);
        // Changes at or past the horizon are not counted.
        assert_eq!(adaptations(&supply, 50.0), 2);
    }

    #[test]
    fn adaptations_skip_value_preserving_points() {
        // The point at t = 10 re-asserts the value already in effect; only
        // the change at t = 20 is a real adaptation.
        let supply = StepFn::new(vec![(0.0, 1), (10.0, 1), (20.0, 2)]);
        assert_eq!(adaptations(&supply, 100.0), 1);
        // A first point at t > 0 takes the value already in effect before
        // it (right-continuous extension), so it is not a change either.
        let late_start = StepFn::new(vec![(30.0, 5), (60.0, 7)]);
        assert_eq!(adaptations(&late_start, 100.0), 1);
        // Alternating holds: 1,1,2,2,1 has two changes.
        let holds = StepFn::new(vec![(0.0, 1), (5.0, 1), (10.0, 2), (15.0, 2), (20.0, 1)]);
        assert_eq!(adaptations(&holds, 100.0), 2);
    }

    #[test]
    fn adaptation_rate_normalizes_by_duration() {
        let supply = StepFn::new(vec![(0.0, 1), (10.0, 2), (20.0, 3)]);
        // 2 adaptations in 1800 s => 4 per hour.
        assert!((adaptation_rate_per_hour(&supply, 1800.0) - 4.0).abs() < 1e-9);
    }
}
