//! The auto-scaler worst-case deviation ς (§IV-D3).

use crate::elasticity::ElasticityMetrics;

/// The paper's aggregate score: the worst per-service elasticity metrics
/// are combined into an overall accuracy `θ̂` and time share `τ̂`, whose
/// Euclidean distance from the theoretically optimal auto-scaler (0, 0) is
/// the worst-case deviation ς.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseDeviation {
    /// Worst-case under-provisioning accuracy across services.
    pub theta_u_hat: f64,
    /// Worst-case over-provisioning accuracy across services.
    pub theta_o_hat: f64,
    /// Worst-case under-provisioning time share across services.
    pub tau_u_hat: f64,
    /// Worst-case over-provisioning time share across services.
    pub tau_o_hat: f64,
    /// Overall worst-case provisioning accuracy `θ̂ = (θ̂_U + θ̂_O)/2`.
    pub theta_hat: f64,
    /// Overall worst-case wrong provisioning time share
    /// `τ̂ = (τ̂_U + τ̂_O)/2`.
    pub tau_hat: f64,
    /// The deviation `ς = √(θ̂² + τ̂²)` in percent.
    pub sigma: f64,
}

/// Computes ς from the per-service elasticity metrics.
///
/// "The basic idea is to compare the auto-scalers with respect to their
/// worst behavior across all services … since the services depend on each
/// other and the system performance is limited by the worst service
/// performance."
///
/// An empty slice yields the all-zero (optimal) deviation.
pub fn worst_case_deviation(per_service: &[ElasticityMetrics]) -> WorstCaseDeviation {
    let max = |f: fn(&ElasticityMetrics) -> f64| per_service.iter().map(f).fold(0.0, f64::max);
    let theta_u_hat = max(|m| m.theta_u);
    let theta_o_hat = max(|m| m.theta_o);
    let tau_u_hat = max(|m| m.tau_u);
    let tau_o_hat = max(|m| m.tau_o);
    let theta_hat = (theta_u_hat + theta_o_hat) / 2.0;
    let tau_hat = (tau_u_hat + tau_o_hat) / 2.0;
    WorstCaseDeviation {
        theta_u_hat,
        theta_o_hat,
        tau_u_hat,
        tau_o_hat,
        theta_hat,
        tau_hat,
        sigma: (theta_hat * theta_hat + tau_hat * tau_hat).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(theta_u: f64, theta_o: f64, tau_u: f64, tau_o: f64) -> ElasticityMetrics {
        ElasticityMetrics {
            theta_u,
            theta_o,
            tau_u,
            tau_o,
        }
    }

    #[test]
    fn optimal_scaler_scores_zero() {
        let d = worst_case_deviation(&[m(0.0, 0.0, 0.0, 0.0); 3]);
        assert_eq!(d.sigma, 0.0);
        assert_eq!(d.theta_hat, 0.0);
        assert_eq!(d.tau_hat, 0.0);
    }

    #[test]
    fn empty_input_is_optimal() {
        assert_eq!(worst_case_deviation(&[]).sigma, 0.0);
    }

    #[test]
    fn takes_worst_per_metric_across_services() {
        let d = worst_case_deviation(&[m(10.0, 1.0, 30.0, 2.0), m(2.0, 20.0, 3.0, 40.0)]);
        assert_eq!(d.theta_u_hat, 10.0);
        assert_eq!(d.theta_o_hat, 20.0);
        assert_eq!(d.tau_u_hat, 30.0);
        assert_eq!(d.tau_o_hat, 40.0);
        assert_eq!(d.theta_hat, 15.0);
        assert_eq!(d.tau_hat, 35.0);
        let expect = (15.0f64 * 15.0 + 35.0 * 35.0).sqrt();
        assert!((d.sigma - expect).abs() < 1e-12);
    }

    #[test]
    fn paper_example_chamulteon_docker() {
        // Table II Chamulteon row: θ_U 3.7, θ_O 29.3, τ_U 14.9, τ_O 84.4
        // => θ̂ 16.5, τ̂ 49.65 => ς ≈ 52.3 (paper rounds to 52.9 from
        // unrounded inputs). Sanity-check the formula shape.
        let d = worst_case_deviation(&[m(3.7, 29.3, 14.9, 84.4)]);
        assert!((d.sigma - 52.32).abs() < 0.5, "sigma {}", d.sigma);
    }

    #[test]
    fn sigma_monotone_in_each_component() {
        let base = worst_case_deviation(&[m(5.0, 5.0, 5.0, 5.0)]);
        let worse = worst_case_deviation(&[m(5.0, 5.0, 5.0, 50.0)]);
        assert!(worse.sigma > base.sigma);
    }
}
