//! Experiment reports and the paper-style results table.

use crate::aggregate::{worst_case_deviation, WorstCaseDeviation};
use crate::elasticity::ElasticityMetrics;

/// Everything the paper reports per auto-scaler per experiment: the
/// averaged per-service elasticity metrics, the worst-case deviation ς and
/// the user-oriented metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerReport {
    /// Auto-scaler name (table column header).
    pub scaler: String,
    /// Per-service elasticity metrics (one entry per service).
    pub per_service: Vec<ElasticityMetrics>,
    /// SLO violations in percent.
    pub slo_violations: f64,
    /// Apdex user-satisfaction score in percent.
    pub apdex: f64,
    /// Total instance-hours consumed across all services (cost metric).
    pub instance_hours: f64,
    /// Scaling adaptations executed per hour, summed over services
    /// (oscillation metric).
    pub adaptations_per_hour: f64,
}

impl ScalerReport {
    /// The mean of each elasticity metric across services — the θ/τ rows
    /// of the paper's tables ("the average provisioning accuracy … for
    /// each service").
    pub fn mean_elasticity(&self) -> ElasticityMetrics {
        let n = self.per_service.len().max(1) as f64;
        let sum = self
            .per_service
            .iter()
            .fold(ElasticityMetrics::default(), |acc, m| ElasticityMetrics {
                theta_u: acc.theta_u + m.theta_u,
                theta_o: acc.theta_o + m.theta_o,
                tau_u: acc.tau_u + m.tau_u,
                tau_o: acc.tau_o + m.tau_o,
            });
        ElasticityMetrics {
            theta_u: sum.theta_u / n,
            theta_o: sum.theta_o / n,
            tau_u: sum.tau_u / n,
            tau_o: sum.tau_o / n,
        }
    }

    /// The worst-case deviation ς across services.
    pub fn worst_case(&self) -> WorstCaseDeviation {
        worst_case_deviation(&self.per_service)
    }
}

/// Renders a paper-style results table (rows: θ_U θ_O τ_U τ_O ς SLO Apdex;
/// columns: auto-scalers), like Tables II–V.
pub fn render_table(title: &str, reports: &[ScalerReport]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let headers: Vec<String> = reports.iter().map(|r| r.scaler.clone()).collect();
    let width = headers.iter().map(|h| h.len()).max().unwrap_or(8).max(10);
    out.push_str(&format!("{:<8}", "Metric"));
    for h in &headers {
        out.push_str(&format!(" {h:>width$}"));
    }
    out.push('\n');
    let rows: Vec<(&str, Vec<f64>)> = vec![
        (
            "theta_U",
            reports
                .iter()
                .map(|r| r.mean_elasticity().theta_u)
                .collect(),
        ),
        (
            "theta_O",
            reports
                .iter()
                .map(|r| r.mean_elasticity().theta_o)
                .collect(),
        ),
        (
            "tau_U",
            reports.iter().map(|r| r.mean_elasticity().tau_u).collect(),
        ),
        (
            "tau_O",
            reports.iter().map(|r| r.mean_elasticity().tau_o).collect(),
        ),
        (
            "sigma",
            reports.iter().map(|r| r.worst_case().sigma).collect(),
        ),
        ("SLO", reports.iter().map(|r| r.slo_violations).collect()),
        ("Apdex", reports.iter().map(|r| r.apdex).collect()),
    ];
    for (name, values) in rows {
        out.push_str(&format!("{name:<8}"));
        for v in values {
            out.push_str(&format!(" {:>width$}", format!("{v:.1}%")));
        }
        out.push('\n');
    }
    // Cost-oriented extras (not part of the paper's tables, printed for
    // the ablations): instance hours and adaptation rate.
    out.push_str(&format!("{:<8}", "inst-h"));
    for r in reports {
        out.push_str(&format!(" {:>width$}", format!("{:.1}", r.instance_hours)));
    }
    out.push('\n');
    out.push_str(&format!("{:<8}", "adapt/h"));
    for r in reports {
        out.push_str(&format!(
            " {:>width$}",
            format!("{:.1}", r.adaptations_per_hour)
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str) -> ScalerReport {
        ScalerReport {
            scaler: name.into(),
            per_service: vec![
                ElasticityMetrics {
                    theta_u: 2.0,
                    theta_o: 10.0,
                    tau_u: 5.0,
                    tau_o: 60.0,
                },
                ElasticityMetrics {
                    theta_u: 4.0,
                    theta_o: 20.0,
                    tau_u: 15.0,
                    tau_o: 80.0,
                },
            ],
            slo_violations: 6.2,
            apdex: 77.7,
            instance_hours: 12.5,
            adaptations_per_hour: 30.0,
        }
    }

    #[test]
    fn mean_elasticity_averages_services() {
        let m = report("x").mean_elasticity();
        assert!((m.theta_u - 3.0).abs() < 1e-12);
        assert!((m.theta_o - 15.0).abs() < 1e-12);
        assert!((m.tau_u - 10.0).abs() < 1e-12);
        assert!((m.tau_o - 70.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_uses_maxima() {
        let w = report("x").worst_case();
        assert_eq!(w.theta_u_hat, 4.0);
        assert_eq!(w.tau_o_hat, 80.0);
    }

    #[test]
    fn empty_per_service_is_safe() {
        let r = ScalerReport {
            scaler: "none".into(),
            per_service: vec![],
            slo_violations: 0.0,
            apdex: 100.0,
            instance_hours: 0.0,
            adaptations_per_hour: 0.0,
        };
        assert_eq!(r.mean_elasticity(), ElasticityMetrics::default());
        assert_eq!(r.worst_case().sigma, 0.0);
    }

    #[test]
    fn table_contains_all_rows_and_columns() {
        let table = render_table("Table II", &[report("chamulteon"), report("react")]);
        for needle in [
            "Table II",
            "chamulteon",
            "react",
            "theta_U",
            "theta_O",
            "tau_U",
            "tau_O",
            "sigma",
            "SLO",
            "Apdex",
            "6.2%",
            "77.7%",
            "inst-h",
            "adapt/h",
            "12.5",
            "30.0",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }
}
