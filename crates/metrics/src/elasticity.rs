//! The SPEC-endorsed elasticity metrics (§IV-D1, §IV-D2).

use crate::step::StepFn;

/// The four per-service elasticity metrics, all in percent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ElasticityMetrics {
    /// Under-provisioning accuracy θ_U: missing resources relative to the
    /// demand, time-averaged. 0 is perfect; unbounded above.
    pub theta_u: f64,
    /// Over-provisioning accuracy θ_O: surplus resources relative to the
    /// demand, time-averaged.
    pub theta_o: f64,
    /// Under-provisioning time share τ_U: percentage of time with
    /// insufficient resources, in `[0, 100]`.
    pub tau_u: f64,
    /// Over-provisioning time share τ_O: percentage of time with surplus
    /// resources, in `[0, 100]`.
    pub tau_o: f64,
}

/// Computes the elasticity metrics of a supply curve against the
/// ground-truth demand curve over `[0, horizon]`:
///
/// ```text
/// θ_U = 100/T · Σ_t max(d_t − s_t, 0)/d_t · Δt
/// θ_O = 100/T · Σ_t max(s_t − d_t, 0)/d_t · Δt
/// τ_U = 100/T · Σ_t max(sgn(d_t − s_t), 0) · Δt
/// τ_O = 100/T · Σ_t max(sgn(s_t − d_t), 0) · Δt
/// ```
///
/// Segments where the demand is 0 contribute to the time shares but not to
/// the accuracies (the relative error is undefined; a demand of at least
/// one instance is the normal case since `min_instances ≥ 1`).
///
/// A non-positive horizon yields all-zero metrics.
pub fn elasticity_metrics(demand: &StepFn, supply: &StepFn, horizon: f64) -> ElasticityMetrics {
    if !(horizon > 0.0) {
        return ElasticityMetrics::default();
    }
    let grid = demand.merged_breakpoints(supply, horizon);
    let mut theta_u = 0.0;
    let mut theta_o = 0.0;
    let mut tau_u = 0.0;
    let mut tau_o = 0.0;
    for w in grid.windows(2) {
        let dt = w[1] - w[0];
        if dt <= 0.0 {
            continue;
        }
        let d = f64::from(demand.value_at(w[0]));
        let s = f64::from(supply.value_at(w[0]));
        if s < d {
            tau_u += dt;
            if d > 0.0 {
                theta_u += (d - s) / d * dt;
            }
        } else if s > d {
            tau_o += dt;
            if d > 0.0 {
                theta_o += (s - d) / d * dt;
            }
        }
    }
    ElasticityMetrics {
        theta_u: 100.0 * theta_u / horizon,
        theta_o: 100.0 * theta_o / horizon,
        tau_u: 100.0 * tau_u / horizon,
        tau_o: 100.0 * tau_o / horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_supply_scores_zero() {
        let demand = StepFn::new(vec![(0.0, 2), (50.0, 5)]);
        let m = elasticity_metrics(&demand, &demand.clone(), 100.0);
        assert_eq!(m, ElasticityMetrics::default());
    }

    #[test]
    fn constant_over_provisioning() {
        let demand = StepFn::constant(2);
        let supply = StepFn::constant(3);
        let m = elasticity_metrics(&demand, &supply, 100.0);
        assert_eq!(m.theta_u, 0.0);
        assert_eq!(m.tau_u, 0.0);
        assert!((m.tau_o - 100.0).abs() < 1e-9);
        // Surplus of 1 over demand of 2 => 50%.
        assert!((m.theta_o - 50.0).abs() < 1e-9);
    }

    #[test]
    fn constant_under_provisioning() {
        let demand = StepFn::constant(4);
        let supply = StepFn::constant(1);
        let m = elasticity_metrics(&demand, &supply, 10.0);
        assert!((m.theta_u - 75.0).abs() < 1e-9);
        assert!((m.tau_u - 100.0).abs() < 1e-9);
        assert_eq!(m.theta_o, 0.0);
        assert_eq!(m.tau_o, 0.0);
    }

    #[test]
    fn mixed_periods_split_correctly() {
        // Demand 4 throughout; supply 2 for the first half, 8 after.
        let demand = StepFn::constant(4);
        let supply = StepFn::new(vec![(0.0, 2), (50.0, 8)]);
        let m = elasticity_metrics(&demand, &supply, 100.0);
        assert!((m.tau_u - 50.0).abs() < 1e-9);
        assert!((m.tau_o - 50.0).abs() < 1e-9);
        // Under: (4−2)/4 = 0.5 half the time => 25%.
        assert!((m.theta_u - 25.0).abs() < 1e-9);
        // Over: (8−4)/4 = 1.0 half the time => 50%.
        assert!((m.theta_o - 50.0).abs() < 1e-9);
    }

    #[test]
    fn step_changes_inside_horizon_respected() {
        let demand = StepFn::new(vec![(0.0, 1), (25.0, 2), (75.0, 1)]);
        let supply = StepFn::constant(2);
        let m = elasticity_metrics(&demand, &supply, 100.0);
        // Over-provisioned when demand is 1 (0–25 and 75–100): 50 s.
        assert!((m.tau_o - 50.0).abs() < 1e-9);
        // Surplus 1 over demand 1 => 100% during those 50 s => 50% overall.
        assert!((m.theta_o - 50.0).abs() < 1e-9);
        assert_eq!(m.tau_u, 0.0);
    }

    #[test]
    fn zero_demand_counts_time_share_only() {
        let demand = StepFn::constant(0);
        let supply = StepFn::constant(3);
        let m = elasticity_metrics(&demand, &supply, 10.0);
        assert!((m.tau_o - 100.0).abs() < 1e-9);
        assert_eq!(m.theta_o, 0.0);
    }

    #[test]
    fn degenerate_horizon() {
        let m = elasticity_metrics(&StepFn::constant(1), &StepFn::constant(2), 0.0);
        assert_eq!(m, ElasticityMetrics::default());
        let m = elasticity_metrics(&StepFn::constant(1), &StepFn::constant(2), -5.0);
        assert_eq!(m, ElasticityMetrics::default());
    }

    #[test]
    fn time_shares_sum_to_at_most_hundred() {
        let demand = StepFn::new(vec![(0.0, 3), (30.0, 6), (60.0, 2)]);
        let supply = StepFn::new(vec![(0.0, 4), (45.0, 1), (80.0, 2)]);
        let m = elasticity_metrics(&demand, &supply, 100.0);
        assert!(m.tau_u + m.tau_o <= 100.0 + 1e-9);
        assert!(m.tau_u >= 0.0 && m.tau_o >= 0.0);
        assert!(m.theta_u >= 0.0 && m.theta_o >= 0.0);
    }
}
