//! Right-continuous step functions over time.

/// A piecewise-constant, right-continuous function of time with `u32`
/// values — the representation of both the demand curve `d_t` and the
/// supply curve `s_t`.
///
/// Constructed from `(time, value)` change points; points are sorted and
/// deduplicated (last value wins for equal times). Before the first change
/// point the function takes the first value.
#[derive(Debug, Clone, PartialEq)]
pub struct StepFn {
    points: Vec<(f64, u32)>,
}

// f64 times are never NaN by construction (filtered in `new`).
impl Eq for StepFn {}

impl StepFn {
    /// Creates a step function from change points. Non-finite times are
    /// dropped; the list may be empty (the function is then constantly 0).
    pub fn new(mut points: Vec<(f64, u32)>) -> Self {
        points.retain(|(t, _)| t.is_finite());
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Deduplicate equal times, keeping the last value.
        let mut deduped: Vec<(f64, u32)> = Vec::with_capacity(points.len());
        for p in points {
            match deduped.last_mut() {
                Some(last) if last.0 == p.0 => last.1 = p.1,
                _ => deduped.push(p),
            }
        }
        StepFn { points: deduped }
    }

    /// A constant function.
    pub fn constant(value: u32) -> Self {
        StepFn {
            points: vec![(0.0, value)],
        }
    }

    /// The change points, sorted by time.
    pub fn points(&self) -> &[(f64, u32)] {
        &self.points
    }

    /// The value at time `t`.
    ///
    /// Binary search over the sorted change points: `idx` is the number of
    /// points with `time <= t`, so the governing point is `idx - 1` (the
    /// function is right-continuous). Before the first point — including a
    /// NaN query, for which no comparison holds — the first value applies.
    pub fn value_at(&self, t: f64) -> u32 {
        let idx = self.points.partition_point(|p| p.0 <= t);
        let governing = if idx == 0 {
            self.points.first()
        } else {
            self.points.get(idx - 1)
        };
        governing.map(|p| p.1).unwrap_or(0)
    }

    /// All change times of `self` and `other` within `[0, horizon)`,
    /// plus 0 and `horizon`, sorted and deduplicated — the integration grid
    /// for the elasticity metrics.
    pub fn merged_breakpoints(&self, other: &StepFn, horizon: f64) -> Vec<f64> {
        let mut times: Vec<f64> = vec![0.0, horizon];
        times.extend(
            self.points
                .iter()
                .chain(other.points.iter())
                .map(|p| p.0)
                .filter(|&t| t > 0.0 && t < horizon),
        );
        times.sort_by(|a, b| a.total_cmp(b));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        times
    }

    /// The time-weighted average value over `[0, horizon]`.
    pub fn mean_over(&self, horizon: f64) -> f64 {
        if !(horizon > 0.0) {
            return f64::from(self.value_at(0.0));
        }
        let grid = self.merged_breakpoints(&StepFn::new(vec![]), horizon);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            integral += f64::from(self.value_at(w[0])) * (w[1] - w[0]);
        }
        integral / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_semantics() {
        let f = StepFn::new(vec![(10.0, 3), (0.0, 1), (20.0, 5)]);
        assert_eq!(f.value_at(-1.0), 1); // before first point: first value
        assert_eq!(f.value_at(0.0), 1);
        assert_eq!(f.value_at(9.99), 1);
        assert_eq!(f.value_at(10.0), 3); // right-continuous
        assert_eq!(f.value_at(19.0), 3);
        assert_eq!(f.value_at(20.0), 5);
        assert_eq!(f.value_at(1e9), 5);
    }

    #[test]
    fn empty_function_is_zero() {
        let f = StepFn::new(vec![]);
        assert_eq!(f.value_at(5.0), 0);
        assert_eq!(f.mean_over(10.0), 0.0);
    }

    #[test]
    fn duplicate_times_keep_last() {
        let f = StepFn::new(vec![(5.0, 1), (5.0, 9)]);
        assert_eq!(f.value_at(5.0), 9);
        assert_eq!(f.points().len(), 1);
    }

    #[test]
    fn non_finite_times_dropped() {
        let f = StepFn::new(vec![(f64::NAN, 7), (0.0, 2)]);
        assert_eq!(f.points().len(), 1);
        assert_eq!(f.value_at(0.0), 2);
    }

    #[test]
    fn merged_breakpoints_cover_both() {
        let a = StepFn::new(vec![(0.0, 1), (10.0, 2)]);
        let b = StepFn::new(vec![(5.0, 3), (15.0, 4), (99.0, 5)]);
        let grid = a.merged_breakpoints(&b, 20.0);
        assert_eq!(grid, vec![0.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn mean_over_weights_by_time() {
        let f = StepFn::new(vec![(0.0, 2), (5.0, 6)]);
        // 2 for 5 s, 6 for 5 s => mean 4.
        assert!((f.mean_over(10.0) - 4.0).abs() < 1e-12);
        assert_eq!(StepFn::constant(7).mean_over(3.0), 7.0);
    }
}
