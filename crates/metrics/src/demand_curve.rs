//! Ground-truth demand curves `d_t` derived from the load trace.

use crate::step::StepFn;
use chamulteon_queueing::capacity::min_instances_for_response_time_quantile;
use chamulteon_workload::LoadTrace;

/// The response-time quantile the demand curve targets: the optimal
/// auto-scaler provisions so that at least this fraction of requests meets
/// the SLO (an SLO is violated per request, so bounding the mean is not
/// enough — near saturation the mean meets the target while a third of
/// requests miss it).
pub const DEMAND_QUANTILE: f64 = 0.9;

/// Derives the demand curve of one service: for every trace segment, the
/// minimal instance count whose M/M/n response-time **90th percentile**
/// ([`DEMAND_QUANTILE`]) stays within the service's share of the
/// end-to-end SLO.
///
/// `slo_share` is this service's response-time budget in seconds (see
/// [`demand_curves`] for the proportional split). Infeasible segments
/// (offered load beyond `max_instances`) are pinned at `max_instances` —
/// the optimal scaler can do no better.
pub fn demand_curve(
    trace: &LoadTrace,
    service_demand: f64,
    visit_ratio: f64,
    slo_share: f64,
    max_instances: u32,
) -> StepFn {
    let mut points = Vec::with_capacity(trace.len());
    let mut last: Option<u32> = None;
    for (i, &rate) in trace.rates().iter().enumerate() {
        let local_rate = rate * visit_ratio.max(0.0);
        let needed = min_instances_for_response_time_quantile(
            local_rate,
            service_demand,
            slo_share,
            DEMAND_QUANTILE,
            max_instances,
        )
        .unwrap_or(max_instances)
        .max(1);
        if last != Some(needed) {
            points.push((i as f64 * trace.step(), needed));
            last = Some(needed);
        }
    }
    StepFn::new(points)
}

/// Derives demand curves for every service of a chain application.
///
/// The end-to-end SLO budget is split across services proportionally to
/// `demand_i · visit_ratio_i` — the same split the optimal static sizing
/// would use (and the split `TandemNetwork::min_instances_for_slo` in
/// `chamulteon-queueing` applies).
pub fn demand_curves(
    trace: &LoadTrace,
    service_demands: &[f64],
    visit_ratios: &[f64],
    slo_response_time: f64,
    max_instances: u32,
) -> Vec<StepFn> {
    let ratios: Vec<f64> = (0..service_demands.len())
        .map(|i| visit_ratios.get(i).copied().unwrap_or(1.0).max(0.0))
        .collect();
    let total: f64 = service_demands
        .iter()
        .zip(&ratios)
        .map(|(d, v)| d.max(0.0) * v)
        .sum();
    service_demands
        .iter()
        .zip(&ratios)
        .map(|(&demand, &ratio)| {
            let share = if total > 0.0 {
                slo_response_time * (demand.max(0.0) * ratio) / total
            } else {
                slo_response_time
            };
            // Per-visit budget.
            let per_visit = if ratio > 0.0 { share / ratio } else { share };
            demand_curve(trace, demand, ratio, per_visit, max_instances)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rates: Vec<f64>) -> LoadTrace {
        LoadTrace::new(60.0, rates).unwrap()
    }

    #[test]
    fn demand_tracks_load() {
        let curve = demand_curve(&trace(vec![10.0, 100.0, 10.0]), 0.1, 1.0, 0.25, 1000);
        let low = curve.value_at(30.0);
        let high = curve.value_at(90.0);
        let back = curve.value_at(150.0);
        assert!(high > low);
        assert_eq!(low, back);
        // At 100 req/s · 0.1 s at least 11 instances (stability) needed.
        assert!(high >= 11);
    }

    #[test]
    fn idle_trace_demands_one() {
        let curve = demand_curve(&trace(vec![0.0, 0.0]), 0.1, 1.0, 0.25, 100);
        assert_eq!(curve.value_at(0.0), 1);
    }

    #[test]
    fn infeasible_segments_pinned_at_max() {
        let curve = demand_curve(&trace(vec![10_000.0]), 0.1, 1.0, 0.25, 50);
        assert_eq!(curve.value_at(0.0), 50);
    }

    #[test]
    fn curves_for_paper_application() {
        let t = trace(vec![50.0, 120.0, 80.0]);
        let curves = demand_curves(&t, &[0.059, 0.1, 0.04], &[1.0, 1.0, 1.0], 0.5, 1000);
        assert_eq!(curves.len(), 3);
        // The validation tier (largest demand) needs the most instances.
        for time in [30.0, 90.0, 150.0] {
            assert!(curves[1].value_at(time) >= curves[0].value_at(time));
            assert!(curves[1].value_at(time) >= curves[2].value_at(time));
        }
    }

    #[test]
    fn demand_vector_meets_slo_analytically() {
        // Sized instance counts must satisfy the SLO analytically.
        let t = trace(vec![100.0]);
        let curves = demand_curves(&t, &[0.059, 0.1, 0.04], &[1.0, 1.0, 1.0], 0.5, 1000);
        let mut total_rt = 0.0;
        for (i, &d) in [0.059, 0.1, 0.04].iter().enumerate() {
            let n = curves[i].value_at(0.0);
            let q = chamulteon_queueing::MmnQueue::new(100.0, d, n).unwrap();
            total_rt += q.mean_response_time().unwrap();
        }
        assert!(total_rt <= 0.5, "end-to-end {total_rt}");
    }

    #[test]
    fn visit_ratio_scales_demand() {
        let t = trace(vec![50.0]);
        let single = demand_curve(&t, 0.1, 1.0, 0.25, 1000).value_at(0.0);
        let double = demand_curve(&t, 0.1, 2.0, 0.25, 1000).value_at(0.0);
        assert!(double > single);
    }
}
