//! Ground-truth demand curves `d_t` derived from the load trace.

use crate::step::StepFn;
use chamulteon_queueing::capacity::min_instances_for_response_time_quantile;
use chamulteon_queueing::CapacityCache;
use chamulteon_workload::LoadTrace;

/// The response-time quantile the demand curve targets: the optimal
/// auto-scaler provisions so that at least this fraction of requests meets
/// the SLO (an SLO is violated per request, so bounding the mean is not
/// enough — near saturation the mean meets the target while a third of
/// requests miss it).
pub const DEMAND_QUANTILE: f64 = 0.9;

/// Derives the demand curve of one service: for every trace segment, the
/// minimal instance count whose M/M/n response-time **90th percentile**
/// ([`DEMAND_QUANTILE`]) stays within the service's share of the
/// end-to-end SLO.
///
/// `slo_share` is this service's response-time budget in seconds (see
/// [`demand_curves`] for the proportional split). Infeasible segments
/// (offered load beyond `max_instances`) are pinned at `max_instances` —
/// the optimal scaler can do no better.
pub fn demand_curve(
    trace: &LoadTrace,
    service_demand: f64,
    visit_ratio: f64,
    slo_share: f64,
    max_instances: u32,
) -> StepFn {
    derive_curve(trace, visit_ratio, max_instances, |local_rate| {
        min_instances_for_response_time_quantile(
            local_rate,
            service_demand,
            slo_share,
            DEMAND_QUANTILE,
            max_instances,
        )
    })
}

/// [`demand_curve`] answered through a [`CapacityCache`]: repeated rates
/// within the trace — and identical curves re-derived across scalers or
/// fault classes — hit the memo instead of re-running the solver. The
/// cached solver rounds conservatively (see the cache docs), so the curve
/// never undersizes.
pub fn demand_curve_with_cache(
    cache: &CapacityCache,
    trace: &LoadTrace,
    service_demand: f64,
    visit_ratio: f64,
    slo_share: f64,
    max_instances: u32,
) -> StepFn {
    derive_curve(trace, visit_ratio, max_instances, |local_rate| {
        cache.min_instances_for_response_time_quantile(
            local_rate,
            service_demand,
            slo_share,
            DEMAND_QUANTILE,
            max_instances,
        )
    })
}

/// The shared curve-derivation loop: solves per trace segment, pins
/// infeasible segments at `max_instances`, dedups consecutive levels.
fn derive_curve<S>(trace: &LoadTrace, visit_ratio: f64, max_instances: u32, solve: S) -> StepFn
where
    S: Fn(f64) -> Result<u32, chamulteon_queueing::QueueingError>,
{
    let mut points = Vec::with_capacity(trace.len());
    let mut last: Option<u32> = None;
    for (i, &rate) in trace.rates().iter().enumerate() {
        let local_rate = rate * visit_ratio.max(0.0);
        let needed = solve(local_rate).unwrap_or(max_instances).max(1);
        if last != Some(needed) {
            points.push((i as f64 * trace.step(), needed));
            last = Some(needed);
        }
    }
    StepFn::new(points)
}

/// Derives demand curves for every service of a chain application.
///
/// The end-to-end SLO budget is split across services proportionally to
/// `demand_i · visit_ratio_i` — the same split the optimal static sizing
/// would use (and the split `TandemNetwork::min_instances_for_slo` in
/// `chamulteon-queueing` applies).
pub fn demand_curves(
    trace: &LoadTrace,
    service_demands: &[f64],
    visit_ratios: &[f64],
    slo_response_time: f64,
    max_instances: u32,
) -> Vec<StepFn> {
    derive_curves(
        trace,
        service_demands,
        visit_ratios,
        slo_response_time,
        max_instances,
        demand_curve,
    )
}

/// [`demand_curves`] answered through a [`CapacityCache`] — see
/// [`demand_curve_with_cache`]. Sharing one cache across the scalers and
/// fault classes of a benchmark grid collapses the repeated ground-truth
/// derivations into hash lookups.
pub fn demand_curves_with_cache(
    cache: &CapacityCache,
    trace: &LoadTrace,
    service_demands: &[f64],
    visit_ratios: &[f64],
    slo_response_time: f64,
    max_instances: u32,
) -> Vec<StepFn> {
    derive_curves(
        trace,
        service_demands,
        visit_ratios,
        slo_response_time,
        max_instances,
        |trace, demand, ratio, per_visit, max_instances| {
            demand_curve_with_cache(cache, trace, demand, ratio, per_visit, max_instances)
        },
    )
}

/// The shared SLO-splitting loop behind [`demand_curves`] and
/// [`demand_curves_with_cache`].
fn derive_curves<C>(
    trace: &LoadTrace,
    service_demands: &[f64],
    visit_ratios: &[f64],
    slo_response_time: f64,
    max_instances: u32,
    curve: C,
) -> Vec<StepFn>
where
    C: Fn(&LoadTrace, f64, f64, f64, u32) -> StepFn,
{
    let ratios: Vec<f64> = (0..service_demands.len())
        .map(|i| visit_ratios.get(i).copied().unwrap_or(1.0).max(0.0))
        .collect();
    let total: f64 = service_demands
        .iter()
        .zip(&ratios)
        .map(|(d, v)| d.max(0.0) * v)
        .sum();
    service_demands
        .iter()
        .zip(&ratios)
        .map(|(&demand, &ratio)| {
            let share = if total > 0.0 {
                slo_response_time * (demand.max(0.0) * ratio) / total
            } else {
                slo_response_time
            };
            // Per-visit budget.
            let per_visit = if ratio > 0.0 { share / ratio } else { share };
            curve(trace, demand, ratio, per_visit, max_instances)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rates: Vec<f64>) -> LoadTrace {
        LoadTrace::new(60.0, rates).unwrap()
    }

    #[test]
    fn demand_tracks_load() {
        let curve = demand_curve(&trace(vec![10.0, 100.0, 10.0]), 0.1, 1.0, 0.25, 1000);
        let low = curve.value_at(30.0);
        let high = curve.value_at(90.0);
        let back = curve.value_at(150.0);
        assert!(high > low);
        assert_eq!(low, back);
        // At 100 req/s · 0.1 s at least 11 instances (stability) needed.
        assert!(high >= 11);
    }

    #[test]
    fn idle_trace_demands_one() {
        let curve = demand_curve(&trace(vec![0.0, 0.0]), 0.1, 1.0, 0.25, 100);
        assert_eq!(curve.value_at(0.0), 1);
    }

    #[test]
    fn infeasible_segments_pinned_at_max() {
        let curve = demand_curve(&trace(vec![10_000.0]), 0.1, 1.0, 0.25, 50);
        assert_eq!(curve.value_at(0.0), 50);
    }

    #[test]
    fn curves_for_paper_application() {
        let t = trace(vec![50.0, 120.0, 80.0]);
        let curves = demand_curves(&t, &[0.059, 0.1, 0.04], &[1.0, 1.0, 1.0], 0.5, 1000);
        assert_eq!(curves.len(), 3);
        // The validation tier (largest demand) needs the most instances.
        for time in [30.0, 90.0, 150.0] {
            assert!(curves[1].value_at(time) >= curves[0].value_at(time));
            assert!(curves[1].value_at(time) >= curves[2].value_at(time));
        }
    }

    #[test]
    fn demand_vector_meets_slo_analytically() {
        // Sized instance counts must satisfy the SLO analytically.
        let t = trace(vec![100.0]);
        let curves = demand_curves(&t, &[0.059, 0.1, 0.04], &[1.0, 1.0, 1.0], 0.5, 1000);
        let mut total_rt = 0.0;
        for (i, &d) in [0.059, 0.1, 0.04].iter().enumerate() {
            let n = curves[i].value_at(0.0);
            let q = chamulteon_queueing::MmnQueue::new(100.0, d, n).unwrap();
            total_rt += q.mean_response_time().unwrap();
        }
        assert!(total_rt <= 0.5, "end-to-end {total_rt}");
    }

    #[test]
    fn cached_curves_match_plain_curves() {
        let t = trace(vec![50.0, 120.0, 80.0, 120.0, 50.0]);
        let cache = chamulteon_queueing::CapacityCache::new();
        let plain = demand_curves(&t, &[0.059, 0.1, 0.04], &[1.0, 1.0, 1.0], 0.5, 1000);
        let cached =
            demand_curves_with_cache(&cache, &t, &[0.059, 0.1, 0.04], &[1.0, 1.0, 1.0], 0.5, 1000);
        for (p, c) in plain.iter().zip(&cached) {
            for time in [0.0, 60.0, 120.0, 180.0, 240.0] {
                assert_eq!(p.value_at(time), c.value_at(time));
            }
        }
        // Repeated rates hit the memo: 5 segments × 3 services = 15
        // lookups but only the distinct (rate, service) pairs miss.
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 15);
        assert_eq!(stats.misses, 9);
    }

    #[test]
    fn visit_ratio_scales_demand() {
        let t = trace(vec![50.0]);
        let single = demand_curve(&t, 0.1, 1.0, 0.25, 1000).value_at(0.0);
        let double = demand_curve(&t, 0.1, 2.0, 0.25, 1000).value_at(0.0);
        assert!(double > single);
    }
}
