//! Reporting for runs under injected faults: how much worse a scaler got,
//! and how often it ran degraded.
//!
//! This module is plain data + rendering only — the fault classes and the
//! degradation machinery live upstream (in the simulator and the core
//! controller); the experiment harness fills in the numbers. Keeping the
//! report free of those types preserves the layering (metrics depends on
//! neither the simulator nor the controller).

/// One scaler's behaviour under one fault class, next to its clean run.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Auto-scaler name (table row).
    pub scaler: String,
    /// Human-readable fault class name ("drop-samples", …).
    pub fault_class: String,
    /// SLO violations in percent on the fault-free run.
    pub clean_slo_violations: f64,
    /// SLO violations in percent with faults injected.
    pub faulted_slo_violations: f64,
    /// Instance-hours consumed on the fault-free run.
    pub clean_instance_hours: f64,
    /// Instance-hours consumed with faults injected.
    pub faulted_instance_hours: f64,
    /// Number of faults the simulator actually injected.
    pub faults_injected: usize,
    /// Number of degraded decisions the scaler logged (ladder rungs taken).
    pub degraded_decisions: usize,
}

impl RobustnessReport {
    /// How many percentage points of SLO violations the faults cost
    /// (negative when the faulted run happened to do better).
    pub fn slo_delta(&self) -> f64 {
        self.faulted_slo_violations - self.clean_slo_violations
    }

    /// Instance-hours difference, faulted minus clean.
    pub fn instance_hour_delta(&self) -> f64 {
        self.faulted_instance_hours - self.clean_instance_hours
    }
}

/// Renders a robustness table: one row per scaler, columns for the clean
/// and faulted SLO violations, the delta, injected fault count and the
/// degraded-decision count.
pub fn render_robustness_table(title: &str, reports: &[RobustnessReport]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} {:>7} {:>7} {:>9}\n",
        "Scaler", "clean-SLO", "fault-SLO", "delta", "faults", "degraded"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<14} {:>9} {:>9} {:>7} {:>7} {:>9}\n",
            r.scaler,
            format!("{:.1}%", r.clean_slo_violations),
            format!("{:.1}%", r.faulted_slo_violations),
            format!("{:+.1}", r.slo_delta()),
            r.faults_injected,
            r.degraded_decisions,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RobustnessReport {
        RobustnessReport {
            scaler: "chamulteon".into(),
            fault_class: "drop-samples".into(),
            clean_slo_violations: 5.0,
            faulted_slo_violations: 8.5,
            clean_instance_hours: 10.0,
            faulted_instance_hours: 11.0,
            faults_injected: 12,
            degraded_decisions: 9,
        }
    }

    #[test]
    fn deltas_are_faulted_minus_clean() {
        let r = report();
        assert!((r.slo_delta() - 3.5).abs() < 1e-12);
        assert!((r.instance_hour_delta() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_contains_all_columns() {
        let table = render_robustness_table("Faults: drop-samples", &[report()]);
        for needle in [
            "Faults: drop-samples",
            "chamulteon",
            "clean-SLO",
            "fault-SLO",
            "5.0%",
            "8.5%",
            "+3.5",
            "12",
            "9",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }
}
