//! Property-based tests for the metrics crate.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]

use chamulteon_metrics::StepFn;
use proptest::prelude::*;

/// The pre-optimization `value_at`: a linear scan from the front. Kept as
/// the reference semantics the binary search must reproduce exactly.
fn value_at_linear(points: &[(f64, u32)], t: f64) -> u32 {
    let mut value = points.first().map(|p| p.1).unwrap_or(0);
    for &(time, v) in points {
        if time <= t {
            value = v;
        } else {
            break;
        }
    }
    value
}

fn step_points() -> impl Strategy<Value = Vec<(f64, u32)>> {
    prop::collection::vec((-100.0f64..1000.0, 0u32..50), 0..40)
}

proptest! {
    /// The binary-search `value_at` agrees with the linear scan at every
    /// query time — before, between, exactly on, and after change points.
    #[test]
    fn binary_search_matches_linear_scan(
        raw in step_points(),
        queries in prop::collection::vec(-200.0f64..1200.0, 1..30),
    ) {
        let f = StepFn::new(raw);
        for &t in &queries {
            prop_assert_eq!(f.value_at(t), value_at_linear(f.points(), t));
        }
        // Probe exactly on every change point and just around it, where
        // an off-by-one in the partition would show.
        for &(time, _) in f.points() {
            for t in [time, time - 1e-9, time + 1e-9, time - 1.0, time + 1.0] {
                prop_assert_eq!(f.value_at(t), value_at_linear(f.points(), t));
            }
        }
        // NaN queries: no comparison holds, both take the first value.
        prop_assert_eq!(f.value_at(f64::NAN), value_at_linear(f.points(), f64::NAN));
    }

    /// `mean_over` is unchanged by the lookup rewrite: it still equals the
    /// explicit integral of the linear-scan reference.
    #[test]
    fn mean_over_matches_linear_reference(
        raw in step_points(),
        horizon in 1.0f64..500.0,
    ) {
        let f = StepFn::new(raw);
        let grid = f.merged_breakpoints(&StepFn::new(vec![]), horizon);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            integral += f64::from(value_at_linear(f.points(), w[0])) * (w[1] - w[0]);
        }
        let expected = integral / horizon;
        prop_assert!((f.mean_over(horizon) - expected).abs() < 1e-9);
    }
}
