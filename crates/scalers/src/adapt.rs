//! Adapt — the adaptive hybrid elasticity controller of Ali-Eldin et al.
//! (NOMS 2012).

use crate::input::{AutoScaler, ScalerInput};

/// The adaptive hybrid elasticity controller of Ali-Eldin, Tordsson and
/// Elmroth, "An adaptive hybrid elasticity controller for cloud
/// infrastructures" (NOMS 2012).
///
/// Adapt estimates the *rate of change* (slope) of the arrival stream and
/// provisions for the projected near-future load — it "aims at detecting
/// the envelope of the workload". Downward adjustments are deliberately
/// damped ("prevents premature release of resources"): the controller only
/// releases after the projected load has stayed below the provisioned
/// capacity for several consecutive intervals, and then only part of the
/// surplus at once.
///
/// Running at a high target utilization, Adapt provisions close to the raw
/// demand — the behaviour behind its under-provisioning tendency in the
/// paper's measurements (§V-D: "Reg and Adapt tend to under-provision").
#[derive(Debug, Clone, PartialEq)]
pub struct Adapt {
    /// Target utilization for sizing (default 0.95 — tight provisioning).
    pub target_utilization: f64,
    /// Consecutive low intervals required before any release (default 2).
    pub release_hysteresis: u32,
    /// Fraction of the surplus released per decision (default 0.5).
    pub release_fraction: f64,
    prev_rate: Option<f64>,
    low_intervals: u32,
}

impl Default for Adapt {
    fn default() -> Self {
        Adapt {
            target_utilization: 0.95,
            release_hysteresis: 2,
            release_fraction: 0.5,
            prev_rate: None,
            low_intervals: 0,
        }
    }
}

impl Adapt {
    /// Creates an Adapt controller with a custom target utilization
    /// (clamped into `(0, 1]`).
    pub fn new(target_utilization: f64) -> Self {
        Adapt {
            target_utilization: if target_utilization.is_finite() && target_utilization > 0.0 {
                target_utilization.min(1.0)
            } else {
                0.95
            },
            ..Adapt::default()
        }
    }
}

impl AutoScaler for Adapt {
    fn name(&self) -> &str {
        "adapt"
    }

    fn decide(&mut self, input: &ScalerInput) -> i64 {
        let rate = input.arrival_rate();
        // Slope of the workload over the last interval.
        let slope = match self.prev_rate {
            Some(prev) => (rate - prev) / input.interval,
            None => 0.0,
        };
        self.prev_rate = Some(rate);

        // Project one interval ahead; never below the current rate when the
        // workload is rising (envelope detection), never negative.
        let projected = (rate + slope * input.interval).max(0.0);
        let envelope = projected.max(rate);

        let needed_raw = envelope * input.service_demand / self.target_utilization;
        let needed = crate::convert::i64_from_f64(
            if (needed_raw - needed_raw.round()).abs() < 1e-9 {
                needed_raw.round()
            } else {
                needed_raw.ceil()
            }
            .max(1.0),
        );
        let current = i64::from(input.current_instances);

        if needed > current {
            self.low_intervals = 0;
            return needed - current;
        }
        if needed < current {
            self.low_intervals += 1;
            if self.low_intervals >= self.release_hysteresis {
                let surplus = current - needed;
                let release =
                    crate::convert::i64_from_f64((surplus as f64 * self.release_fraction).ceil())
                        .max(1);
                return -release.min(surplus);
            }
            return 0;
        }
        self.low_intervals = 0;
        0
    }

    fn reset(&mut self) {
        self.prev_rate = None;
        self.low_intervals = 0;
    }

    fn clone_box(&self) -> Box<dyn AutoScaler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn input(t: f64, rate: f64, n: u32) -> ScalerInput {
        ScalerInput::new(t, 60.0, (rate * 60.0).round() as u64, 0.1, n)
    }

    #[test]
    fn first_decision_sizes_for_current_rate() {
        let mut a = Adapt::default();
        // 19 req/s · 0.1 / 0.95 = 2 instances.
        assert_eq!(a.decide(&input(0.0, 19.0, 1)), 1);
    }

    #[test]
    fn rising_load_provisions_ahead() {
        let mut a = Adapt::default();
        a.decide(&input(0.0, 10.0, 2));
        // Rate jumped to 20: slope projects 30 next interval.
        let delta = a.decide(&input(60.0, 20.0, 2));
        // needed = ceil(30·0.1/0.95) = 4 => +2.
        assert_eq!(delta, 2);
    }

    #[test]
    fn falling_load_released_with_hysteresis() {
        let mut a = Adapt::default();
        a.decide(&input(0.0, 50.0, 6));
        // Load drops to ~9.5 req/s => needed 1, surplus 5.
        assert_eq!(
            a.decide(&input(60.0, 9.5, 6)),
            0,
            "first low interval holds"
        );
        let delta = a.decide(&input(120.0, 9.5, 6));
        assert_eq!(delta, -3, "releases half the surplus of 5, rounded up");
    }

    #[test]
    fn upscale_resets_hysteresis() {
        let mut a = Adapt::default();
        a.decide(&input(0.0, 50.0, 6));
        a.decide(&input(60.0, 9.5, 6)); // low #1
        a.decide(&input(120.0, 100.0, 6)); // spike: scale up, reset
        assert_eq!(a.decide(&input(180.0, 9.5, 6)), 0, "hysteresis restarted");
    }

    #[test]
    fn envelope_never_projects_below_current_rate() {
        let mut a = Adapt::default();
        // First call: needed 11 < current 20 counts as the first low
        // interval (hold).
        assert_eq!(a.decide(&input(0.0, 100.0, 20)), 0);
        // Sharp drop: the raw projection (10 − 90 = −80) is clamped and the
        // envelope keeps the observed rate 10 => needed = ceil(1/0.95) = 2,
        // surplus 18, second low interval releases half.
        let delta = a.decide(&input(60.0, 10.0, 20));
        assert_eq!(delta, -9);
    }

    #[test]
    fn reset_clears_state() {
        let mut a = Adapt::default();
        a.decide(&input(0.0, 10.0, 1));
        a.reset();
        assert_eq!(a.prev_rate, None);
        assert_eq!(a.low_intervals, 0);
    }

    #[test]
    fn invalid_target_falls_back() {
        assert_eq!(Adapt::new(f64::NAN).target_utilization, 0.95);
        assert_eq!(Adapt::new(-0.5).target_utilization, 0.95);
        assert_eq!(Adapt::new(2.0).target_utilization, 1.0);
    }
}
