//! React — the reactive threshold scaler of Chieu et al. (2009).

use crate::input::{AutoScaler, ScalerInput};

/// The reactive scaling algorithm of Chieu et al., "Dynamic scaling of web
/// applications in a virtualized cloud computing environment" (ICEBE 2009).
///
/// React monitors a per-instance load indicator (here: the utilization
/// implied by the arrival rate and service demand, the indicator the
/// paper's harness provides). When all instances are above the upper
/// threshold it provisions enough new instances to get back below it; when
/// there are instances below the lower threshold *and at least one
/// completely idle instance*, idle instances are released one batch at a
/// time — the cautious release that makes React over-provision in the
/// paper's VM scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct React {
    /// Scale up when utilization exceeds this (default 0.8).
    pub upper_threshold: f64,
    /// Consider scaling down when utilization falls below this
    /// (default 0.5).
    pub lower_threshold: f64,
}

impl Default for React {
    fn default() -> Self {
        React {
            upper_threshold: 0.8,
            lower_threshold: 0.5,
        }
    }
}

impl React {
    /// Creates a React scaler with custom thresholds; invalid or inverted
    /// thresholds fall back to the defaults.
    pub fn new(upper_threshold: f64, lower_threshold: f64) -> Self {
        let d = React::default();
        if upper_threshold.is_finite()
            && lower_threshold.is_finite()
            && 0.0 < lower_threshold
            && lower_threshold < upper_threshold
            && upper_threshold <= 1.0
        {
            React {
                upper_threshold,
                lower_threshold,
            }
        } else {
            d
        }
    }
}

impl AutoScaler for React {
    fn name(&self) -> &str {
        "react"
    }

    fn decide(&mut self, input: &ScalerInput) -> i64 {
        let current = i64::from(input.current_instances);
        let utilization = input.utilization();
        if utilization > self.upper_threshold {
            // Provision instances to return below the upper threshold.
            let needed = i64::from(input.instances_for_utilization(self.upper_threshold));
            return (needed - current).max(1);
        }
        if utilization < self.lower_threshold {
            // Number of instances that would still satisfy the upper
            // threshold if released; React only removes instances that are
            // entirely surplus ("with no active session") and keeps one
            // spare, releasing at most one instance per interval — the
            // slow, conservative drain of the original algorithm.
            let needed = i64::from(input.instances_for_utilization(self.upper_threshold));
            let surplus = current - needed - 1;
            if surplus > 0 {
                return -1;
            }
        }
        0
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn AutoScaler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn input(rate: f64, demand: f64, n: u32) -> ScalerInput {
        ScalerInput::new(0.0, 60.0, (rate * 60.0).round() as u64, demand, n)
    }

    #[test]
    fn scales_up_under_overload() {
        let mut r = React::default();
        // 20 req/s · 0.1 s on 1 instance: utilization 2.0.
        let delta = r.decide(&input(20.0, 0.1, 1));
        // needed = ceil(2.0 / 0.8) = 3 instances.
        assert_eq!(delta, 2);
    }

    #[test]
    fn holds_inside_band() {
        let mut r = React::default();
        // utilization = 0.6: between the thresholds.
        assert_eq!(r.decide(&input(24.0, 0.1, 4)), 0);
    }

    #[test]
    fn releases_slowly_when_idle() {
        let mut r = React::default();
        // 2 req/s · 0.1 s on 10 instances: utilization 0.02.
        let delta = r.decide(&input(2.0, 0.1, 10));
        assert_eq!(delta, -1, "one instance at a time");
    }

    #[test]
    fn keeps_a_spare_instance() {
        let mut r = React::default();
        // needed at 0.8 target = 1; current = 2 => surplus = 0, keep both.
        assert_eq!(r.decide(&input(4.0, 0.1, 2)), 0);
        // current = 3 => surplus 1, release one.
        assert_eq!(r.decide(&input(4.0, 0.1, 3)), -1);
    }

    #[test]
    fn idle_service_drains_to_floor() {
        let mut r = React::default();
        let mut n: u32 = 6;
        for _ in 0..10 {
            let delta = r.decide(&input(0.0, 0.1, n));
            n = (i64::from(n) + delta).max(1) as u32;
        }
        // needed = 1, spare = 1 => floor of 2.
        assert_eq!(n, 2);
    }

    #[test]
    fn always_scales_up_at_least_one_when_over_threshold() {
        let mut r = React::default();
        // utilization 0.81 with needed == current + 1.
        let i = input(8.1, 0.1, 1);
        assert!(r.decide(&i) >= 1);
    }

    #[test]
    fn invalid_thresholds_fall_back() {
        assert_eq!(React::new(0.5, 0.8), React::default());
        assert_eq!(React::new(f64::NAN, 0.2), React::default());
        assert_eq!(React::new(1.5, 0.2), React::default());
        let custom = React::new(0.9, 0.3);
        assert_eq!(custom.upper_threshold, 0.9);
    }
}
