//! Multi-service deployment of single-service scalers.
//!
//! The competing auto-scalers "are not designed to scale applications with
//! multiple services", so the paper deploys one scaler instance per
//! service and adjusts the arrival rate each downstream scaler sees with
//! (§IV-C):
//!
//! ```text
//! r(i) = measured arrival rate                     if i = 0
//! r(i) = min(r(i−1), n(i−1) · s(i−1))              if i > 0
//! ```
//!
//! where `n(i)` is the instance count and `s(i)` the per-instance service
//! rate of service `i`.

use crate::input::{AutoScaler, ScalerInput};

/// The interval policy shared with [`ScalerInput::new`]: non-finite or
/// non-positive intervals mean "one second", never a near-zero divisor.
fn sanitize_interval(interval: f64) -> f64 {
    if interval.is_finite() && interval > 0.0 {
        interval
    } else {
        1.0
    }
}

/// Computes the per-service input rates along a chain from the measured
/// entry rate — the paper's `r(i)` formula.
///
/// `instances[i]` and `service_demands[i]` describe service `i`; the
/// per-instance service rate is `s(i) = 1 / demand`. The returned vector
/// has one rate per service.
///
/// Degenerate tiers must not poison the chain: a non-finite or negative
/// measured rate is zero load, and a non-finite or non-positive demand is
/// treated as unlimited capacity (the tier imposes no cap) — the same
/// forgiving validation [`ScalerInput::new`] applies to its tuple. Without
/// that, an `inf` demand would zero every downstream rate and an `inf`
/// measured rate would propagate to every tier.
///
/// # Examples
///
/// ```
/// use chamulteon_scalers::chain_rates;
///
/// // Validation (10 req/s/instance, 5 instances) caps the data tier at 50.
/// let rates = chain_rates(100.0, &[20, 5, 10], &[0.059, 0.1, 0.04]);
/// assert_eq!(rates[0], 100.0);
/// assert!((rates[2] - 50.0).abs() < 1e-9);
/// ```
pub fn chain_rates(measured_rate: f64, instances: &[u32], service_demands: &[f64]) -> Vec<f64> {
    let count = instances.len().min(service_demands.len());
    let mut rates = Vec::with_capacity(count);
    let mut upstream = if measured_rate.is_finite() {
        measured_rate.max(0.0)
    } else {
        0.0
    };
    for i in 0..count {
        rates.push(upstream);
        let demand = service_demands[i];
        let capacity = if demand.is_finite() && demand > 0.0 {
            f64::from(instances[i]) / demand
        } else {
            f64::INFINITY
        };
        upstream = upstream.min(capacity);
    }
    rates
}

/// One single-service auto-scaler per service plus the chain-rate input
/// adjustment — the paper's extension of the open-source scalers to
/// multi-service applications.
pub struct IndependentScalers {
    scalers: Vec<Box<dyn AutoScaler + Send>>,
    service_demands: Vec<f64>,
}

impl Clone for IndependentScalers {
    fn clone(&self) -> Self {
        IndependentScalers {
            scalers: self.scalers.iter().map(|s| s.clone_box()).collect(),
            service_demands: self.service_demands.clone(),
        }
    }
}

impl std::fmt::Debug for IndependentScalers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndependentScalers")
            .field(
                "scalers",
                &self.scalers.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("service_demands", &self.service_demands)
            .finish()
    }
}

impl IndependentScalers {
    /// Creates the deployment from one scaler per service and the nominal
    /// per-service demands (used for the capacity term of the chain
    /// formula when no estimate is supplied).
    ///
    /// Non-finite or non-positive nominal demands are sanitized to the
    /// same 0.001 s floor [`ScalerInput::new`] uses, so a degenerate
    /// config cannot later poison the chain-capacity term.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length or are empty.
    pub fn new(scalers: Vec<Box<dyn AutoScaler + Send>>, service_demands: Vec<f64>) -> Self {
        assert_eq!(
            scalers.len(),
            service_demands.len(),
            "one scaler per service required"
        );
        assert!(!scalers.is_empty(), "at least one service required");
        let service_demands = service_demands
            .into_iter()
            .map(|d| if d.is_finite() && d > 0.0 { d } else { 0.001 })
            .collect();
        IndependentScalers {
            scalers,
            service_demands,
        }
    }

    /// Convenience: the same scaler type for every service, built by a
    /// factory closure.
    pub fn homogeneous<F>(service_demands: Vec<f64>, factory: F) -> Self
    where
        F: Fn() -> Box<dyn AutoScaler + Send>,
    {
        let scalers = (0..service_demands.len()).map(|_| factory()).collect();
        IndependentScalers::new(scalers, service_demands)
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.scalers.len()
    }

    /// The name of the underlying scaler (they are homogeneous in the
    /// paper's experiments; heterogeneous deployments report the first).
    pub fn name(&self) -> &str {
        self.scalers[0].name()
    }

    /// One scaling round: distributes the measured entry rate along the
    /// chain, invokes every per-service scaler, and returns the instance
    /// deltas.
    ///
    /// `estimated_demands` are the per-service demand estimates fed to the
    /// scalers (the paper uses LibReDE's estimates, "as used in
    /// Chamulteon"); the chain capacities use the same estimates.
    pub fn decide(
        &mut self,
        time: f64,
        interval: f64,
        entry_requests: u64,
        instances: &[u32],
        estimated_demands: &[f64],
    ) -> Vec<i64> {
        // Sanitize the interval with the same policy as `ScalerInput::new`
        // (non-finite or ≤ 0 becomes 1 s) *before* deriving the rate: a
        // NaN interval used to hit `.max(1e-9)` and turn a modest request
        // count into a rate of billions of req/s.
        let interval = sanitize_interval(interval);
        let measured_rate = entry_requests as f64 / interval;
        self.decide_rate(time, interval, measured_rate, instances, estimated_demands)
    }

    /// Like [`decide`](IndependentScalers::decide), but takes the measured
    /// entry *rate* directly — the form experiment harnesses use when the
    /// rate comes from a validated (possibly held) monitoring sample
    /// rather than a raw request count. Non-finite or negative rates are
    /// treated as zero load.
    pub fn decide_rate(
        &mut self,
        time: f64,
        interval: f64,
        entry_rate: f64,
        instances: &[u32],
        estimated_demands: &[f64],
    ) -> Vec<i64> {
        let interval = sanitize_interval(interval);
        let measured_rate = if entry_rate.is_finite() {
            entry_rate.max(0.0)
        } else {
            0.0
        };
        let demands: Vec<f64> = (0..self.scalers.len())
            .map(|i| {
                estimated_demands
                    .get(i)
                    .copied()
                    .filter(|d| d.is_finite() && *d > 0.0)
                    .unwrap_or(self.service_demands[i])
            })
            .collect();
        let rates = chain_rates(measured_rate, instances, &demands);
        self.scalers
            .iter_mut()
            .enumerate()
            .map(|(i, scaler)| {
                let requests = crate::convert::u64_from_f64((rates[i] * interval).round());
                let input = ScalerInput::new(
                    time,
                    interval,
                    requests,
                    demands[i],
                    instances.get(i).copied().unwrap_or(1),
                );
                scaler.decide(&input)
            })
            .collect()
    }

    /// Resets every per-service scaler.
    pub fn reset(&mut self) {
        for s in &mut self.scalers {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::react::React;

    #[test]
    fn chain_rates_pass_through_without_bottleneck() {
        let rates = chain_rates(50.0, &[10, 10, 10], &[0.059, 0.1, 0.04]);
        assert_eq!(rates, vec![50.0, 50.0, 50.0]);
    }

    #[test]
    fn chain_rates_throttle_downstream() {
        // UI with 1 instance caps at ~16.9.
        let rates = chain_rates(100.0, &[1, 10, 10], &[0.059, 0.1, 0.04]);
        assert_eq!(rates[0], 100.0);
        assert!((rates[1] - 1.0 / 0.059).abs() < 1e-9);
        assert!((rates[2] - 1.0 / 0.059).abs() < 1e-9);
    }

    #[test]
    fn chain_rates_monotone_nonincreasing() {
        let rates = chain_rates(500.0, &[3, 7, 2], &[0.059, 0.1, 0.04]);
        for w in rates.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn chain_rates_degenerate_inputs() {
        assert!(chain_rates(-10.0, &[1], &[0.1]).iter().all(|&r| r == 0.0));
        assert_eq!(chain_rates(10.0, &[], &[]).len(), 0);
        // Zero demand treated as unlimited capacity.
        let rates = chain_rates(10.0, &[1, 1], &[0.0, 0.1]);
        assert_eq!(rates[1], 10.0);
    }

    #[test]
    fn chain_rates_degenerate_tiers_do_not_poison_the_chain() {
        // Regression: a non-finite measured rate used to flow through
        // `.max(0.0)` untouched, forwarding `inf` to every tier.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let rates = chain_rates(bad, &[5, 5], &[0.1, 0.1]);
            assert!(
                rates.iter().all(|&r| r == 0.0),
                "rate {bad} leaked into the chain: {rates:?}"
            );
        }
        // Regression: an `inf` demand used to compute capacity n/inf = 0,
        // silently zeroing every downstream rate. An invalid demand now
        // means "no cap from this tier", like zero demand already did.
        for bad in [f64::INFINITY, f64::NAN, -0.1] {
            let rates = chain_rates(40.0, &[5, 5, 5], &[0.1, bad, 0.1]);
            assert!(
                rates.iter().all(|r| r.is_finite()),
                "demand {bad} produced non-finite rates: {rates:?}"
            );
            assert_eq!(rates[2], 40.0, "demand {bad} starved the data tier");
        }
    }

    #[test]
    fn nominal_demands_are_sanitized_at_construction() {
        let mut multi = IndependentScalers::new(
            vec![
                Box::new(React::default()),
                Box::new(React::default()),
                Box::new(React::default()),
            ],
            vec![0.059, f64::NAN, -1.0],
        );
        // 100 req/s; no estimates, so the (sanitized) nominals drive both
        // the chain capacities and the per-scaler demand. All deltas must
        // be sane (finite math end to end; broken tiers look tiny, not
        // infinite).
        let deltas = multi.decide(0.0, 60.0, 6000, &[1, 1, 1], &[]);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0], 7, "healthy entry tier sizes as usual");
        assert!(deltas[1] <= 1 && deltas[2] <= 1, "floor demand ≈ no load");
    }

    #[test]
    fn nan_interval_behaves_like_one_second() {
        let mut bad =
            IndependentScalers::homogeneous(vec![0.059, 0.1, 0.04], || Box::new(React::default()));
        let mut good =
            IndependentScalers::homogeneous(vec![0.059, 0.1, 0.04], || Box::new(React::default()));
        // Regression: a NaN interval used to become `1e-9`, inflating 100
        // requests into 1e11 req/s. It now follows the ScalerInput policy
        // (1 s), making the two calls identical.
        let a = bad.decide(0.0, f64::NAN, 100, &[1, 1, 1], &[]);
        let b = good.decide(0.0, 1.0, 100, &[1, 1, 1], &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn independent_scalers_scale_each_tier() {
        let mut multi =
            IndependentScalers::homogeneous(vec![0.059, 0.1, 0.04], || Box::new(React::default()));
        assert_eq!(multi.service_count(), 3);
        assert_eq!(multi.name(), "react");
        // 100 req/s at the entry; all tiers start at 1.
        let deltas = multi.decide(0.0, 60.0, 6000, &[1, 1, 1], &[0.059, 0.1, 0.04]);
        // Tier 0 sees 100 req/s => needs ceil(100·0.059/0.8)=8 => +7.
        assert_eq!(deltas[0], 7);
        // Tier 1 sees min(100, 1/0.059 ≈ 16.9) => needs ceil(1.695/0.8)=3.
        assert_eq!(deltas[1], 2);
        // Tier 2 sees min(16.9, 10) = 10 => needs 1 => no change.
        assert_eq!(deltas[2], 0);
    }

    #[test]
    fn demand_estimates_override_nominal() {
        let mut multi = IndependentScalers::homogeneous(vec![0.1], || Box::new(React::default()));
        // Estimated demand twice the nominal: double the instances needed.
        let with_estimate = multi.decide(0.0, 60.0, 600, &[1], &[0.2]);
        multi.reset();
        let with_nominal = multi.decide(0.0, 60.0, 600, &[1], &[]);
        assert!(with_estimate[0] > with_nominal[0]);
    }

    #[test]
    #[should_panic(expected = "one scaler per service")]
    fn mismatched_lengths_panic() {
        let _ = IndependentScalers::new(vec![Box::new(React::default())], vec![0.1, 0.2]);
    }

    #[test]
    fn decide_rate_matches_decide_and_sanitizes() {
        let mut by_count =
            IndependentScalers::homogeneous(vec![0.059, 0.1, 0.04], || Box::new(React::default()));
        let mut by_rate =
            IndependentScalers::homogeneous(vec![0.059, 0.1, 0.04], || Box::new(React::default()));
        let a = by_count.decide(0.0, 60.0, 6000, &[1, 1, 1], &[]);
        let b = by_rate.decide_rate(0.0, 60.0, 100.0, &[1, 1, 1], &[]);
        assert_eq!(a, b);
        // Garbage rates are zero load, not a panic.
        by_rate.reset();
        let quiet = by_rate.decide_rate(60.0, 60.0, f64::NAN, &[5, 5, 5], &[]);
        assert!(
            quiet.iter().all(|&d| d <= 0),
            "NaN rate scales down: {quiet:?}"
        );
        let quiet = by_rate.decide_rate(120.0, 60.0, -50.0, &[5, 5, 5], &[]);
        assert!(quiet.iter().all(|&d| d <= 0));
    }
}
