//! The competing auto-scalers of the Chamulteon evaluation (§IV-C).
//!
//! The paper benchmarks Chamulteon against four well-cited open-source
//! single-service auto-scalers, each re-implemented here from its original
//! description:
//!
//! * [`React`] (Chieu et al. 2009) — purely reactive threshold scaling,
//! * [`Adapt`] (Ali-Eldin et al. 2012) — an adaptive controller tracking
//!   the workload's rate of change and its envelope, releasing resources
//!   reluctantly,
//! * [`Hist`] (Urgaonkar et al. 2008) — predictive provisioning from
//!   histograms of historical per-bucket arrival rates (high percentile)
//!   with reactive upward correction,
//! * [`Reg`] (Iqbal et al. 2011) — reactive scale-up plus scale-down driven
//!   by a second-order regression over the complete workload history.
//!
//! All scalers implement [`AutoScaler`] and receive the paper's exact input
//! tuple (§IV-C): the accumulated request count of the last interval, the
//! estimated service demand, and the current instance count; they return
//! the instance delta to apply.
//!
//! Because these scalers are single-service, the paper deploys one instance
//! per service and feeds downstream services the *capacity-throttled* rate
//! `r(i) = min(r(i−1), n(i−1)·s(i−1))`. [`IndependentScalers`] packages
//! that deployment, including [`chain_rates`] implementing the formula.
//!
//! # Example
//!
//! ```
//! use chamulteon_scalers::{AutoScaler, React, ScalerInput};
//!
//! let mut scaler = React::default();
//! // 60 s interval, 1200 requests (20 req/s), demand 0.1 s, 1 instance.
//! let input = ScalerInput::new(0.0, 60.0, 1200, 0.1, 1);
//! let delta = scaler.decide(&input);
//! assert!(delta > 0); // 20 req/s · 0.1 s ≫ one instance's capacity
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod adapt;
mod convert;
pub mod hist;
pub mod input;
pub mod multi;
pub mod react;
pub mod reg;

pub use adapt::Adapt;
pub use hist::Hist;
pub use input::{AutoScaler, ScalerInput};
pub use multi::{chain_rates, IndependentScalers};
pub use react::React;
pub use reg::Reg;
