//! Crate-private checked numeric conversions, so request counts and bucket
//! indices derived from float rate arithmetic narrow in exactly one place.

/// Converts a non-negative bucket index computed in `f64` to `usize`,
/// saturating at the bounds (non-positive and NaN map to 0).
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
pub(crate) fn usize_from_f64(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        0
    } else if value >= usize::MAX as f64 {
        usize::MAX
    } else {
        value as usize
    }
}

/// Converts a request count computed in `f64` to `u64`, saturating at the
/// bounds (non-positive and NaN map to 0).
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
pub(crate) fn u64_from_f64(value: f64) -> u64 {
    if value.is_nan() || value <= 0.0 {
        0
    } else if value >= u64::MAX as f64 {
        u64::MAX
    } else {
        value as u64
    }
}

/// Converts an instance delta computed in `f64` to `i64`, saturating at
/// the bounds (NaN maps to 0).
#[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
pub(crate) fn i64_from_f64(value: f64) -> i64 {
    if value.is_nan() {
        0
    } else if value >= i64::MAX as f64 {
        i64::MAX
    } else if value <= i64::MIN as f64 {
        i64::MIN
    } else {
        value as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_saturates() {
        assert_eq!(usize_from_f64(-2.0), 0);
        assert_eq!(usize_from_f64(3.7), 3);
        assert_eq!(usize_from_f64(f64::INFINITY), usize::MAX);
    }

    #[test]
    fn u64_saturates() {
        assert_eq!(u64_from_f64(f64::NAN), 0);
        assert_eq!(u64_from_f64(41.9), 41);
        assert_eq!(u64_from_f64(1e30), u64::MAX);
    }

    #[test]
    fn i64_saturates_both_ways() {
        assert_eq!(i64_from_f64(-3.2), -3);
        assert_eq!(i64_from_f64(5.9), 5);
        assert_eq!(i64_from_f64(-1e30), i64::MIN);
        assert_eq!(i64_from_f64(1e30), i64::MAX);
    }
}
