//! Reg — regression-based scaling of Iqbal et al. (FGCS 2011).

use crate::input::{AutoScaler, ScalerInput};

/// The regression-based auto-scaler of Iqbal, Dailey, Carrera and Janecek,
/// "Adaptive resource provisioning for read intensive multi-tier
/// applications in the cloud" (FGCS 2011).
///
/// Scale-up is reactive, similar to React: when capacity is insufficient,
/// instances are added immediately. Scale-down is predictive: a
/// **second-order polynomial regression over the complete workload
/// history** — recomputed every interval — predicts the future load, and
/// when the current provisioned capacity exceeds what the prediction
/// needs, the service is shrunk to the predicted requirement.
///
/// Extrapolating a quadratic fitted to the whole history is exactly what
/// produces Reg's signature behaviour in the paper (Fig. 2): phases of
/// rapid oscillation and sustained under-provisioning.
#[derive(Debug, Clone, PartialEq)]
pub struct Reg {
    /// Target utilization for sizing (default 0.9 — tight, as in the
    /// original's capacity model).
    pub target_utilization: f64,
    history: Vec<(f64, f64)>,
}

impl Default for Reg {
    fn default() -> Self {
        Reg {
            target_utilization: 0.9,
            history: Vec::new(),
        }
    }
}

impl Reg {
    /// Creates a Reg scaler with a custom target utilization (clamped into
    /// `(0, 1]`).
    pub fn new(target_utilization: f64) -> Self {
        Reg {
            target_utilization: if target_utilization.is_finite() && target_utilization > 0.0 {
                target_utilization.min(1.0)
            } else {
                0.9
            },
            history: Vec::new(),
        }
    }

    /// Fits `rate = c0 + c1·t + c2·t²` by least squares over the complete
    /// history and evaluates it at `t`. Falls back to the last observation
    /// when the system is singular or the history is short.
    fn predict(&self, t: f64) -> f64 {
        let n = self.history.len();
        if n < 3 {
            return self.history.last().map(|&(_, r)| r).unwrap_or(0.0);
        }
        // Normalize time to improve conditioning.
        let t0 = self.history[0].0;
        let scale = (self.history[n - 1].0 - t0).max(1.0);
        let xs: Vec<f64> = self
            .history
            .iter()
            .map(|&(ti, _)| (ti - t0) / scale)
            .collect();
        let ys: Vec<f64> = self.history.iter().map(|&(_, r)| r).collect();
        // Normal equations for the quadratic fit.
        let mut s = [0.0f64; 5]; // sums of x^0..x^4
        let mut b = [0.0f64; 3]; // sums of y·x^0..x^2
        for (&x, &y) in xs.iter().zip(&ys) {
            let x2 = x * x;
            s[0] += 1.0;
            s[1] += x;
            s[2] += x2;
            s[3] += x2 * x;
            s[4] += x2 * x2;
            b[0] += y;
            b[1] += y * x;
            b[2] += y * x2;
        }
        let a = [[s[0], s[1], s[2]], [s[1], s[2], s[3]], [s[2], s[3], s[4]]];
        match solve3(a, b) {
            Some(c) => {
                let x = (t - t0) / scale;
                (c[0] + c[1] * x + c[2] * x * x).max(0.0)
            }
            None => ys[n - 1],
        }
    }
}

/// Solves a 3×3 linear system with Gaussian elimination; `None` when
/// singular.
// Index form reads clearer than iterator gymnastics over two rows of the
// same matrix.
#[allow(clippy::needless_range_loop)]
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for (k, &xk) in x.iter().enumerate().take(3).skip(row + 1) {
            sum -= a[row][k] * xk;
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

impl AutoScaler for Reg {
    fn name(&self) -> &str {
        "reg"
    }

    fn decide(&mut self, input: &ScalerInput) -> i64 {
        let rate = input.arrival_rate();
        self.history.push((input.time, rate));
        let current = i64::from(input.current_instances);

        // Reactive scale-up.
        let needed_now = i64::from(input.instances_for_utilization(self.target_utilization));
        if needed_now > current {
            return needed_now - current;
        }

        // Predictive scale-down from the quadratic extrapolation.
        let predicted = self.predict(input.time + input.interval);
        let sized = ScalerInput::new(
            input.time,
            input.interval,
            crate::convert::u64_from_f64((predicted * input.interval).round()),
            input.service_demand,
            input.current_instances,
        );
        let needed_pred = i64::from(sized.instances_for_utilization(self.target_utilization));
        // Never drop below what the current load needs outright.
        let target = needed_pred.max(needed_now);
        if target < current {
            return target - current;
        }
        0
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn clone_box(&self) -> Box<dyn AutoScaler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn input(t: f64, rate: f64, n: u32) -> ScalerInput {
        ScalerInput::new(t, 60.0, (rate * 60.0).round() as u64, 0.1, n)
    }

    #[test]
    fn reactive_scale_up() {
        let mut r = Reg::default();
        // 45 req/s · 0.1 / 0.9 = 5 instances.
        assert_eq!(r.decide(&input(0.0, 45.0, 1)), 4);
    }

    #[test]
    fn scales_down_on_declining_trend() {
        let mut r = Reg::default();
        let mut n = 10u32;
        // Steadily declining load: the quadratic extrapolates further down.
        for (k, rate) in [50.0, 40.0, 30.0, 20.0].iter().enumerate() {
            let d = r.decide(&input(k as f64 * 60.0, *rate, n));
            n = (i64::from(n) + d).max(1) as u32;
        }
        assert!(n < 10, "scaled down on decline, n={n}");
        // Never below what the last observed rate needs: 20·0.1/0.9 = 3.
        assert!(n >= 3);
    }

    #[test]
    fn quadratic_predicts_parabola() {
        let mut r = Reg::default();
        // rate(t) = 0.001·t² sampled at minutes 0..5.
        for k in 0..6 {
            let t = k as f64 * 60.0;
            r.history.push((t, 0.001 * t * t));
        }
        let predicted = r.predict(360.0);
        assert!(
            (predicted - 0.001 * 360.0 * 360.0).abs() < 2.0,
            "{predicted}"
        );
    }

    #[test]
    fn short_history_predicts_last_value() {
        let mut r = Reg::default();
        r.history.push((0.0, 12.0));
        assert_eq!(r.predict(60.0), 12.0);
        r.history.clear();
        assert_eq!(r.predict(60.0), 0.0);
    }

    #[test]
    fn prediction_clamped_nonnegative() {
        let mut r = Reg::default();
        // Steep decline extrapolates negative; clamp to 0.
        for (k, rate) in [100.0, 60.0, 20.0].iter().enumerate() {
            r.history.push((k as f64 * 60.0, *rate));
        }
        assert!(r.predict(300.0) >= 0.0);
    }

    #[test]
    fn never_scales_below_current_need() {
        let mut r = Reg::default();
        // History suggesting collapse, but current rate still needs 5.
        for (k, rate) in [100.0, 70.0, 45.0].iter().enumerate() {
            let _ = r.decide(&input(k as f64 * 60.0, *rate, 12));
        }
        let d = r.decide(&input(180.0, 45.0, 12));
        // needed_now = 45·0.1/0.9 = 5.
        assert!(12 + d >= 5);
    }

    #[test]
    fn reset_clears_history() {
        let mut r = Reg::default();
        r.decide(&input(0.0, 10.0, 1));
        r.reset();
        assert!(r.history.is_empty());
    }

    #[test]
    fn solve3_known_system() {
        // x=1, y=2, z=3.
        let a = [[1.0, 1.0, 1.0], [2.0, 0.0, 1.0], [0.0, 1.0, 2.0]];
        let b = [6.0, 5.0, 8.0];
        let x = solve3(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
        assert!((x[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve3_singular() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [1.0, 1.0, 1.0]];
        assert!(solve3(a, [1.0, 2.0, 3.0]).is_none());
    }
}
