//! Hist — histogram-based predictive provisioning of Urgaonkar et al.
//! (TAAS 2008).

use crate::input::{AutoScaler, ScalerInput};

/// The predictive+reactive provisioning technique of Urgaonkar, Shenoy,
/// Chandra, Goyal and Wood, "Agile dynamic provisioning of multi-tier
/// internet applications" (ACM TAAS 2008).
///
/// The predictive component maintains a histogram of arrival rates observed
/// per schedule *bucket* (the original uses hours of the day) and, at each
/// bucket boundary, provisions for a high percentile of that bucket's
/// historical rates. The reactive component corrects upward immediately
/// when the observed rate exceeds the provisioned capacity ("to correct
/// errors in the long-term predictions or to react to unanticipated flash
/// crowds"). Provisioning to a high percentile for a whole bucket is what
/// gives Hist its over-provisioning tendency in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Bucket length in seconds (the "hour" of the original, shortened for
    /// the paper's compressed traces; default 600 s).
    pub bucket_length: f64,
    /// Percentile of the bucket's rate history to provision for, in
    /// `(0, 100]` (default 95).
    pub percentile: f64,
    /// Target utilization used to translate rates into instances
    /// (default 0.85).
    pub target_utilization: f64,
    /// Per-bucket observed arrival rates across the experiment.
    history: Vec<Vec<f64>>,
    current_bucket: Option<usize>,
    /// Instance count the predictive component chose for this bucket.
    predicted_base: Option<u32>,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            bucket_length: 600.0,
            percentile: 95.0,
            target_utilization: 0.85,
            history: Vec::new(),
            current_bucket: None,
            predicted_base: None,
        }
    }
}

impl Hist {
    /// Creates a Hist scaler with a custom bucket length in seconds
    /// (clamped to ≥ 60 s).
    pub fn with_bucket_length(bucket_length: f64) -> Self {
        Hist {
            bucket_length: if bucket_length.is_finite() {
                bucket_length.max(60.0)
            } else {
                600.0
            },
            ..Hist::default()
        }
    }

    fn bucket_of(&self, time: f64) -> usize {
        crate::convert::usize_from_f64(time.max(0.0) / self.bucket_length)
    }

    fn percentile_of(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = crate::convert::usize_from_f64(
            (self.percentile / 100.0 * (sorted.len() as f64 - 1.0)).round(),
        );
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// The rate to provision for at the start of `bucket`: the percentile
    /// of that bucket's own history; for a bucket never seen before, the
    /// previous bucket's history (the original provisions hour by hour, so
    /// the nearest known hour is the best stand-in); as a last resort the
    /// percentile of everything observed so far.
    fn predicted_rate(&self, bucket: usize) -> Option<f64> {
        if let Some(p) = self.history.get(bucket).and_then(|r| self.percentile_of(r)) {
            return Some(p);
        }
        if bucket > 0 {
            if let Some(p) = self
                .history
                .get(bucket - 1)
                .and_then(|r| self.percentile_of(r))
            {
                return Some(p);
            }
        }
        let all: Vec<f64> = self.history.iter().flatten().copied().collect();
        self.percentile_of(&all)
    }
}

impl AutoScaler for Hist {
    fn name(&self) -> &str {
        "hist"
    }

    fn decide(&mut self, input: &ScalerInput) -> i64 {
        let rate = input.arrival_rate();
        let bucket = self.bucket_of(input.time);
        if self.history.len() <= bucket {
            self.history.resize(bucket + 1, Vec::new());
        }

        let current = i64::from(input.current_instances);
        let mut desired = current;

        // Predictive step at every bucket boundary — before recording the
        // current observation, since the original predicts purely from
        // *past* history.
        if self.current_bucket != Some(bucket) {
            self.current_bucket = Some(bucket);
            if let Some(predicted) = self.predicted_rate(bucket) {
                let sized = ScalerInput::new(
                    input.time,
                    input.interval,
                    crate::convert::u64_from_f64((predicted * input.interval).round()),
                    input.service_demand,
                    input.current_instances,
                );
                let base = sized.instances_for_utilization(self.target_utilization);
                self.predicted_base = Some(base);
                desired = i64::from(base);
            }
        }

        self.history[bucket].push(rate);

        // Reactive correction: never stay below what the observed rate
        // needs right now.
        let reactive_floor = i64::from(input.instances_for_utilization(self.target_utilization));
        desired = desired.max(reactive_floor);

        // Within a bucket, never drop below the predictive base — the
        // original re-provisions only at the hourly timescale.
        if let Some(base) = self.predicted_base {
            desired = desired.max(i64::from(base));
        }

        desired - current
    }

    fn reset(&mut self) {
        self.history.clear();
        self.current_bucket = None;
        self.predicted_base = None;
    }

    fn clone_box(&self) -> Box<dyn AutoScaler + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn input(t: f64, rate: f64, n: u32) -> ScalerInput {
        ScalerInput::new(t, 60.0, (rate * 60.0).round() as u64, 0.1, n)
    }

    #[test]
    fn reactive_correction_scales_up_immediately() {
        let mut h = Hist::default();
        // First call, no history yet for prediction beyond this sample:
        // reactive floor = ceil(30·0.1/0.85) = 4.
        let delta = h.decide(&input(0.0, 30.0, 1));
        assert_eq!(delta, 3);
    }

    #[test]
    fn provisions_percentile_of_bucket_history() {
        let mut h = Hist::with_bucket_length(120.0);
        // Fill bucket 0 with rates 10..=20.
        let mut n = 1u32;
        for (k, rate) in (10..=20).enumerate() {
            let d = h.decide(&input(k as f64 * 10.0, rate as f64, n));
            n = (i64::from(n) + d).max(1) as u32;
        }
        // Entering bucket 1: prediction uses global history (bucket 1 has
        // none) => p95 of 10..20 ≈ 20 => ceil(20·0.1/0.85) = 3.
        let d = h.decide(&input(125.0, 5.0, n));
        let n_after = (i64::from(n) + d).max(1) as u32;
        assert_eq!(n_after, 3);
    }

    #[test]
    fn does_not_scale_down_within_bucket() {
        let mut h = Hist::default();
        let mut n = 1u32;
        let d = h.decide(&input(0.0, 40.0, n));
        n = (i64::from(n) + d) as u32;
        let peak = n;
        // Load vanishes but we stay in the same bucket: no scale-down
        // below the predictive base (set at bucket entry), and the base
        // never shrinks mid-bucket.
        for k in 1..5 {
            let d = h.decide(&input(k as f64 * 60.0, 1.0, n));
            n = (i64::from(n) + d).max(1) as u32;
            assert!(n >= peak.min(n), "never below the bucket base");
        }
    }

    #[test]
    fn new_bucket_allows_scale_down() {
        let mut h = Hist::with_bucket_length(120.0);
        let mut n = 1u32;
        // Busy bucket 0.
        for k in 0..2 {
            let d = h.decide(&input(k as f64 * 60.0, 40.0, n));
            n = (i64::from(n) + d).max(1) as u32;
        }
        assert!(n >= 5);
        // Bucket 1 starts quiet; bucket-1 history empty => global p95 still
        // high, so stays up. Feed several quiet buckets so the global
        // percentile decays.
        for k in 2..40 {
            let d = h.decide(&input(k as f64 * 60.0, 2.0, n));
            n = (i64::from(n) + d).max(1) as u32;
        }
        assert!(n < 5, "eventually scales down in later buckets, n={n}");
    }

    #[test]
    fn reset_clears_history() {
        let mut h = Hist::default();
        h.decide(&input(0.0, 30.0, 1));
        h.reset();
        assert!(h.history.is_empty());
        assert_eq!(h.current_bucket, None);
    }

    #[test]
    fn percentile_helper() {
        let h = Hist::default();
        assert_eq!(h.percentile_of(&[]), None);
        assert_eq!(h.percentile_of(&[5.0]), Some(5.0));
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = h.percentile_of(&values).unwrap();
        assert!((p - 95.0).abs() <= 1.0);
    }
}
