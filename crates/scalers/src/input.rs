//! The auto-scaler interface and its input tuple.

/// The inputs every competing auto-scaler receives each scaling interval —
/// the paper's §IV-C tuple plus the current time (needed by Hist's
/// bucketed schedule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalerInput {
    /// Current time in seconds since experiment start.
    pub time: f64,
    /// Length of the elapsed scaling interval in seconds.
    pub interval: f64,
    /// Accumulated number of requests that arrived during the interval.
    pub requests: u64,
    /// Estimated service demand in seconds per request (from the demand
    /// estimator, as in the paper).
    pub service_demand: f64,
    /// Number of currently running instances.
    pub current_instances: u32,
}

impl ScalerInput {
    /// Creates an input tuple. Degenerate values are sanitized: a
    /// non-positive interval becomes 1 s, a non-positive demand 0.001 s,
    /// zero instances become 1.
    pub fn new(
        time: f64,
        interval: f64,
        requests: u64,
        service_demand: f64,
        current_instances: u32,
    ) -> Self {
        ScalerInput {
            time: if time.is_finite() { time } else { 0.0 },
            interval: if interval.is_finite() && interval > 0.0 {
                interval
            } else {
                1.0
            },
            requests,
            service_demand: if service_demand.is_finite() && service_demand > 0.0 {
                service_demand
            } else {
                0.001
            },
            current_instances: current_instances.max(1),
        }
    }

    /// The mean arrival rate over the interval, req/s.
    pub fn arrival_rate(&self) -> f64 {
        self.requests as f64 / self.interval
    }

    /// The offered load in Erlangs, `λ·D`.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate() * self.service_demand
    }

    /// The theoretical utilization at the current instance count.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / f64::from(self.current_instances)
    }

    /// The minimal instance count that keeps utilization at or below
    /// `target` (≥ 1).
    pub fn instances_for_utilization(&self, target: f64) -> u32 {
        let target = if target.is_finite() && target > 0.0 {
            target.min(1.0)
        } else {
            1.0
        };
        let raw = self.offered_load() / target;
        let snapped = if (raw - raw.round()).abs() < 1e-9 {
            raw.round()
        } else {
            raw.ceil()
        };
        chamulteon_queueing::capacity::saturating_f64_to_u32(snapped).max(1)
    }
}

/// A periodically invoked auto-scaler: consumes the last interval's
/// monitoring tuple, returns the signed instance delta to apply.
///
/// Implementations are stateful (histories, hysteresis counters); one
/// instance is deployed per scaled service, exactly as the paper deploys
/// the open-source scalers.
pub trait AutoScaler {
    /// A short stable identifier (`"react"`, `"adapt"`, …).
    fn name(&self) -> &str;

    /// Decides how many instances to add (positive) or remove (negative).
    fn decide(&mut self, input: &ScalerInput) -> i64;

    /// Resets all internal state (for reuse across experiments).
    fn reset(&mut self);

    /// Clones the scaler into a fresh box, so holders of trait objects
    /// (e.g. [`IndependentScalers`](crate::IndependentScalers)) can
    /// themselves be `Clone` — needed to checkpoint a benchmark run.
    fn clone_box(&self) -> Box<dyn AutoScaler + Send>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let i = ScalerInput::new(0.0, 60.0, 1200, 0.1, 4);
        assert!((i.arrival_rate() - 20.0).abs() < 1e-12);
        assert!((i.offered_load() - 2.0).abs() < 1e-12);
        assert!((i.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(i.instances_for_utilization(0.8), 3);
        assert_eq!(i.instances_for_utilization(1.0), 2);
    }

    #[test]
    fn sanitizes_degenerate_inputs() {
        let i = ScalerInput::new(f64::NAN, 0.0, 10, -1.0, 0);
        assert_eq!(i.time, 0.0);
        assert_eq!(i.interval, 1.0);
        assert_eq!(i.service_demand, 0.001);
        assert_eq!(i.current_instances, 1);
    }

    #[test]
    fn instances_for_utilization_edge_cases() {
        let idle = ScalerInput::new(0.0, 60.0, 0, 0.1, 5);
        assert_eq!(idle.instances_for_utilization(0.8), 1);
        // Invalid target behaves like 1.0.
        let i = ScalerInput::new(0.0, 60.0, 600, 0.1, 1);
        assert_eq!(i.instances_for_utilization(f64::NAN), 1);
        assert_eq!(i.instances_for_utilization(2.0), 1);
        // The target ≤ 0 side of the clamp: also full utilization, never
        // an EPSILON-sized divisor demanding u32::MAX instances (this is
        // the policy `chamulteon_queueing::capacity` mirrors).
        assert_eq!(i.instances_for_utilization(0.0), 1);
        assert_eq!(i.instances_for_utilization(-0.5), 1);
        assert_eq!(i.instances_for_utilization(f64::NEG_INFINITY), 1);
    }

    #[test]
    fn exact_boundary_not_overshot() {
        // 48 req/s · 0.1 / 0.8 = exactly 6.
        let i = ScalerInput::new(0.0, 60.0, 2880, 0.1, 1);
        assert_eq!(i.instances_for_utilization(0.8), 6);
    }
}
