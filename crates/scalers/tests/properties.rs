//! Property-based tests for the baseline auto-scalers.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_scalers::{
    chain_rates, Adapt, AutoScaler, Hist, IndependentScalers, React, Reg, ScalerInput,
};
use proptest::prelude::*;

fn all_scalers() -> Vec<Box<dyn AutoScaler + Send>> {
    vec![
        Box::new(React::default()),
        Box::new(Adapt::default()),
        Box::new(Hist::default()),
        Box::new(Reg::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No scaler ever drives the instance count below 1, whatever the
    /// input sequence.
    #[test]
    fn instance_count_never_below_one(
        loads in prop::collection::vec(0.0f64..500.0, 1..40),
        demand in 0.01f64..0.5,
    ) {
        for mut scaler in all_scalers() {
            let mut n: u32 = 1;
            for (k, &rate) in loads.iter().enumerate() {
                let input = ScalerInput::new(
                    k as f64 * 60.0,
                    60.0,
                    (rate * 60.0).round() as u64,
                    demand,
                    n,
                );
                let delta = scaler.decide(&input);
                let next = i64::from(n) + delta;
                prop_assert!(next >= 1, "{} dropped to {next}", scaler.name());
                n = next as u32;
            }
        }
    }

    /// After enough intervals of constant load, every scaler settles on a
    /// capacity that can serve the load (no persistent under-provisioning
    /// at steady state).
    #[test]
    fn steady_state_capacity_sufficient(rate in 5.0f64..300.0, demand in 0.02f64..0.2) {
        for mut scaler in all_scalers() {
            let mut n: u32 = 1;
            for k in 0..60 {
                let input = ScalerInput::new(
                    k as f64 * 60.0,
                    60.0,
                    (rate * 60.0).round() as u64,
                    demand,
                    n,
                );
                n = (i64::from(n) + scaler.decide(&input)).max(1) as u32;
            }
            let capacity = f64::from(n) / demand;
            prop_assert!(
                capacity >= rate * 0.99,
                "{}: settled at {n} instances ({capacity:.1} req/s) for {rate:.1} req/s",
                scaler.name()
            );
        }
    }

    /// Scalers never request an absurd over-provisioning at steady state
    /// (within 3x the minimal requirement after settling).
    #[test]
    fn steady_state_not_absurdly_overprovisioned(rate in 20.0f64..300.0) {
        let demand = 0.1;
        for mut scaler in all_scalers() {
            let mut n: u32 = 1;
            for k in 0..80 {
                let input = ScalerInput::new(
                    k as f64 * 60.0,
                    60.0,
                    (rate * 60.0).round() as u64,
                    demand,
                    n,
                );
                n = (i64::from(n) + scaler.decide(&input)).max(1) as u32;
            }
            let minimal = (rate * demand).ceil();
            prop_assert!(
                f64::from(n) <= minimal * 3.0 + 2.0,
                "{}: {n} instances for minimal {minimal}",
                scaler.name()
            );
        }
    }

    /// The chain-rate formula is monotone non-increasing along the chain
    /// and bounded by each prefix capacity.
    #[test]
    fn chain_rates_bounded(
        rate in 0.0f64..1000.0,
        instances in prop::collection::vec(1u32..50, 1..6),
        demands in prop::collection::vec(0.01f64..0.5, 1..6),
    ) {
        let len = instances.len().min(demands.len());
        let rates = chain_rates(rate, &instances[..len], &demands[..len]);
        prop_assert_eq!(rates.len(), len);
        for w in rates.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        for (i, &r) in rates.iter().enumerate().skip(1) {
            let upstream_cap = f64::from(instances[i - 1]) / demands[i - 1];
            prop_assert!(r <= upstream_cap + 1e-9);
        }
    }

    /// The multi-service wrapper produces one delta per service and all
    /// resulting counts stay at least 1.
    #[test]
    fn independent_scalers_shape(
        rate in 0.0f64..500.0,
        rounds in 1usize..20,
    ) {
        let mut multi = IndependentScalers::homogeneous(
            vec![0.059, 0.1, 0.04],
            || Box::new(React::default()),
        );
        let mut counts = vec![1u32, 1, 1];
        for k in 0..rounds {
            let deltas = multi.decide(
                k as f64 * 60.0,
                60.0,
                (rate * 60.0).round() as u64,
                &counts,
                &[0.059, 0.1, 0.04],
            );
            prop_assert_eq!(deltas.len(), 3);
            for (c, d) in counts.iter_mut().zip(&deltas) {
                let next = i64::from(*c) + d;
                prop_assert!(next >= 1);
                *c = next as u32;
            }
        }
    }

    /// Reset restores initial behavior: a reset scaler decides the same as
    /// a fresh one.
    #[test]
    fn reset_equals_fresh(loads in prop::collection::vec(1.0f64..200.0, 1..10)) {
        for (mut used, mut fresh) in [
            (Box::new(Reg::default()) as Box<dyn AutoScaler + Send>,
             Box::new(Reg::default()) as Box<dyn AutoScaler + Send>),
            (Box::new(Adapt::default()), Box::new(Adapt::default())),
            (Box::new(Hist::default()), Box::new(Hist::default())),
        ] {
            for (k, &rate) in loads.iter().enumerate() {
                let input = ScalerInput::new(k as f64 * 60.0, 60.0, (rate * 60.0) as u64, 0.1, 5);
                let _ = used.decide(&input);
            }
            used.reset();
            let probe = ScalerInput::new(0.0, 60.0, 3000, 0.1, 5);
            prop_assert_eq!(used.decide(&probe), fresh.decide(&probe), "{}", used.name());
        }
    }
}
