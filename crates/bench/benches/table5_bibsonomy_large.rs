//! Regenerates **Table V** of the paper: all five auto-scalers on the
//! BibSonomy-like trace at the large scale (peak ≈120 containers, Docker,
//! 1 h, 60 s interval).
//!
//! Run with: `cargo bench -p chamulteon-bench --bench table5_bibsonomy_large`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::paper::{render_paper_table, run_lineup, TABLE5};
use chamulteon_bench::setups::bibsonomy_large;
use chamulteon_metrics::render_table;

fn main() {
    let spec = bibsonomy_large();
    eprintln!(
        "Running {} — 5 scalers x {:.0} s simulated...",
        spec.name,
        spec.trace.duration()
    );
    let reports = run_lineup(&spec);
    println!(
        "{}",
        render_table(
            "Table V (measured) — BibSonomy trace, large setup",
            &reports
        )
    );
    println!(
        "{}",
        render_paper_table("Table V (paper, for comparison)", &TABLE5)
    );
}
