//! FOX cost-awareness ablation (§III-A3, evaluated separately in the
//! paper's prior work [21]): Chamulteon with FOX disabled versus FOX under
//! EC2 hourly and GCP per-minute billing, on the Wikipedia/Docker
//! scenario.
//!
//! FOX should *reduce billed instance time wasted on re-provisioning*
//! (instances are kept until their paid interval is nearly exhausted) at
//! the price of extra physical over-provisioning.
//!
//! Run with: `cargo bench -p chamulteon-bench --bench ablation_fox`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon::ChargingModel;
use chamulteon_bench::setups::wikipedia_docker;
use chamulteon_bench::{run_experiment, ScalerKind};
use chamulteon_metrics::render_table;

/// Bills a supply timeline as if every instance start opened a fresh lease
/// under `model` — what the *cloud* charges for the measured behaviour.
fn bill_supply(outcome: &chamulteon_bench::ExperimentOutcome, model: &ChargingModel) -> f64 {
    let mut total = 0.0;
    for timeline in &outcome.result.supply {
        // Track individual instance lifetimes from the step function.
        let mut stack: Vec<f64> = Vec::new();
        let mut prev = 0u32;
        for change in timeline {
            if change.running > prev {
                for _ in 0..(change.running - prev) {
                    stack.push(change.time);
                }
            } else {
                for _ in 0..(prev - change.running) {
                    if let Some(start) = stack.pop() {
                        total += model.billed_duration(change.time - start);
                    }
                }
            }
            prev = change.running;
        }
        for start in stack {
            total += model.billed_duration(outcome.result.duration - start);
        }
    }
    total
}

fn main() {
    let spec = wikipedia_docker();
    eprintln!("Running FOX ablation on {}...", spec.name);

    let plain = run_experiment(&spec, ScalerKind::Chamulteon);
    let fox_ec2 = run_experiment(&spec, ScalerKind::ChamulteonFoxEc2);
    let fox_gcp = run_experiment(&spec, ScalerKind::ChamulteonFoxGcp);

    let reports = vec![
        plain.report.clone(),
        fox_ec2.report.clone(),
        fox_gcp.report.clone(),
    ];
    println!(
        "{}",
        render_table("FOX ablation — elasticity and user metrics", &reports)
    );

    println!("Billed instance hours (what the cloud would charge):");
    let ec2 = ChargingModel::ec2_hourly();
    let gcp = ChargingModel::gcp_per_minute();
    println!(
        "{:<16} {:>16} {:>16}",
        "variant", "EC2-hourly [h]", "GCP-per-min [h]"
    );
    for (name, outcome) in [
        ("no FOX", &plain),
        ("FOX (EC2)", &fox_ec2),
        ("FOX (GCP)", &fox_gcp),
    ] {
        println!(
            "{:<16} {:>16.1} {:>16.1}",
            name,
            bill_supply(outcome, &ec2) / 3600.0,
            bill_supply(outcome, &gcp) / 3600.0
        );
    }
    println!();
    println!("Expected shape: under hourly billing FOX avoids release/re-acquire churn,");
    println!("so its EC2 bill is at or below the no-FOX bill despite higher tau_O;");
    println!("under per-minute billing the reviewer is nearly neutral.");
}
