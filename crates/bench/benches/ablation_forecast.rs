//! Forecast-method ablation (DESIGN.md §5): the accuracy of the
//! Telescope-style hybrid against every baseline forecaster on both
//! synthetic traces, at the horizon Chamulteon actually uses.
//!
//! The paper adopts Telescope because it "has a reliable forecast accuracy
//! and a short time-to-result" (§III-A); this bench backs that choice with
//! numbers from our reproduction.
//!
//! Run with: `cargo bench -p chamulteon-bench --bench ablation_forecast`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_forecast::{
    mase, ArForecaster, DriftForecaster, Forecaster, HoltForecaster, HoltWintersForecaster,
    MeanForecaster, NaiveForecaster, SeasonalNaiveForecaster, SesForecaster, TelescopeForecaster,
    ThetaForecaster, TimeSeries,
};
use chamulteon_workload::generators::{bibsonomy_like, wikipedia_like};
use chamulteon_workload::LoadTrace;

/// Rolling-origin evaluation: forecast `horizon` steps from every origin in
/// the second half of the series, score with MASE against the training
/// prefix. Returns the mean MASE.
fn rolling_mase(method: &dyn Forecaster, series: &TimeSeries, horizon: usize) -> f64 {
    let n = series.len();
    let mut scores = Vec::new();
    let mut origin = n / 2;
    while origin + horizon <= n {
        let (train, rest) = series.split_at(origin);
        if let Ok(fc) = method.forecast(&train, horizon) {
            let actual = &rest.values()[..horizon];
            let m = mase(train.values(), actual, fc.values(), 1);
            if m.is_finite() {
                scores.push(m);
            }
        }
        origin += horizon;
    }
    if scores.is_empty() {
        f64::NAN
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

fn trace_series(trace: &LoadTrace, step: f64) -> TimeSeries {
    let resampled = trace.resample(step).expect("valid step");
    TimeSeries::from_values(step, resampled.rates().to_vec()).expect("finite rates")
}

fn main() {
    // Four compressed days so even the latest rolling origin leaves the
    // seasonal methods two full seasons of training data, 60 s resolution.
    let day = 86_400.0;
    let wiki = {
        let t = wikipedia_like(1, 60.0, 4.0 * day).compress_to(4.0 * 3600.0);
        trace_series(&t.scale_to_peak(400.0), 60.0)
    };
    let bib = {
        let t = bibsonomy_like(1, 60.0, 4.0 * day).compress_to(4.0 * 3600.0);
        trace_series(&t.scale_to_peak(400.0), 60.0)
    };
    // One compressed day = 60 observations at this resolution.
    let season = 60;
    let horizon = 8;

    let methods: Vec<(&str, Box<dyn Forecaster>)> = vec![
        (
            "telescope (detected)",
            Box::new(TelescopeForecaster::default()),
        ),
        (
            "telescope (known season)",
            Box::new(TelescopeForecaster::with_season(season)),
        ),
        ("naive", Box::new(NaiveForecaster)),
        (
            "seasonal-naive",
            Box::new(SeasonalNaiveForecaster::new(season)),
        ),
        ("drift", Box::new(DriftForecaster)),
        (
            "mean (window 10)",
            Box::new(MeanForecaster::with_window(10)),
        ),
        ("ses", Box::new(SesForecaster::default())),
        ("holt (damped)", Box::new(HoltForecaster::default())),
        (
            "holt-winters",
            Box::new(HoltWintersForecaster::with_period(season).expect("valid period")),
        ),
        ("ar(3)", Box::new(ArForecaster::default())),
        ("theta", Box::new(ThetaForecaster::default())),
    ];

    println!("Forecast ablation — rolling-origin MASE at horizon {horizon} (lower is better)");
    println!("{:<26} {:>14} {:>14}", "method", "wikipedia", "bibsonomy");
    for (label, m) in &methods {
        let w = rolling_mase(m.as_ref(), &wiki, horizon);
        let b = rolling_mase(m.as_ref(), &bib, horizon);
        println!("{label:<26} {w:>14.3} {b:>14.3}");
    }
    println!();
    println!("Expected shape: the telescope hybrid (especially with the known season)");
    println!("beats the naive family on the seasonal Wikipedia trace and stays");
    println!("competitive on the noisy BibSonomy trace.");
}
