//! Ablation of the two decision cycles (DESIGN.md §5): full Chamulteon
//! versus reactive-only versus proactive-only, on the Wikipedia/Docker
//! scenario. The paper motivates the hybrid design (§II-B, §III); this
//! bench quantifies what each cycle contributes.
//!
//! Run with: `cargo bench -p chamulteon-bench --bench ablation_cycles`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::setups::wikipedia_vm;
use chamulteon_bench::{run_experiment, ScalerKind};
use chamulteon_metrics::render_table;

fn main() {
    // The VM scenario: with ~2-minute provisioning delays, reacting after
    // the fact is expensive and forecasting ahead pays off — the setting
    // where the hybrid design earns its keep.
    let spec = wikipedia_vm();
    eprintln!("Running cycle ablation on {}...", spec.name);
    let reports: Vec<_> = [
        ScalerKind::Chamulteon,
        ScalerKind::ChamulteonReactiveOnly,
        ScalerKind::ChamulteonProactiveOnly,
    ]
    .iter()
    .map(|&k| run_experiment(&spec, k).report)
    .collect();
    println!(
        "{}",
        render_table(
            "Cycle ablation — full hybrid vs. reactive-only vs. proactive-only",
            &reports
        )
    );
    println!("Expected shape: the hybrid matches reactive-only on user metrics while");
    println!("the proactive cycle reduces under-provisioning during ramps; proactive-only");
    println!("degrades whenever the forecast drifts (no fallback).");
}
