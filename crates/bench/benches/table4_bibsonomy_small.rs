//! Regenerates **Table IV** of the paper: all five auto-scalers on the
//! BibSonomy-like trace at the small scale (peak ≈60 containers, Docker,
//! 1 h, 60 s interval).
//!
//! Run with: `cargo bench -p chamulteon-bench --bench table4_bibsonomy_small`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::paper::{render_paper_table, run_lineup, TABLE4};
use chamulteon_bench::setups::bibsonomy_small;
use chamulteon_metrics::render_table;

fn main() {
    let spec = bibsonomy_small();
    eprintln!(
        "Running {} — 5 scalers x {:.0} s simulated...",
        spec.name,
        spec.trace.duration()
    );
    let reports = run_lineup(&spec);
    println!(
        "{}",
        render_table(
            "Table IV (measured) — BibSonomy trace, small setup",
            &reports
        )
    );
    println!(
        "{}",
        render_paper_table("Table IV (paper, for comparison)", &TABLE4)
    );
}
