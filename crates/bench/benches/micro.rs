//! Criterion micro-benchmarks for the performance-sensitive pieces: the
//! queueing solvers, the Telescope forecast, Algorithm 1, a full
//! Chamulteon tick, and raw simulator throughput.
//!
//! These guard the "short time-to-result" property the paper requires of
//! the forecasting component (§III-A) and document the controller's
//! per-tick overhead.
//!
//! Run with: `cargo bench -p chamulteon-bench --bench micro`

use chamulteon::{proactive_decisions, Chamulteon, ChamulteonConfig};
use chamulteon_demand::MonitoringSample;
use chamulteon_forecast::{Forecaster, TelescopeForecaster, TimeSeries};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::min_instances_for_response_time;
use chamulteon_queueing::erlang_c;
use chamulteon_sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
use chamulteon_workload::LoadTrace;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_queueing(c: &mut Criterion) {
    c.bench_function("erlang_c_100_servers", |b| {
        b.iter(|| erlang_c(black_box(100), black_box(80.0)).unwrap())
    });
    c.bench_function("min_instances_for_slo", |b| {
        b.iter(|| {
            min_instances_for_response_time(black_box(400.0), black_box(0.1), 0.25, 1000).unwrap()
        })
    });
}

fn bench_forecast(c: &mut Criterion) {
    let values: Vec<f64> = (0..120)
        .map(|t| 100.0 + 40.0 * (t as f64 * std::f64::consts::TAU / 60.0).sin())
        .collect();
    let history = TimeSeries::from_values(60.0, values).unwrap();
    c.bench_function("telescope_forecast_120obs_h8", |b| {
        b.iter(|| {
            TelescopeForecaster::default()
                .forecast(black_box(&history), 8)
                .unwrap()
        })
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    let model = ApplicationModel::paper_benchmark();
    let config = ChamulteonConfig::default();
    c.bench_function("algorithm1_three_services", |b| {
        b.iter(|| {
            proactive_decisions(
                black_box(&model),
                black_box(300.0),
                &[0.059, 0.1, 0.04],
                &[10, 17, 7],
                &config,
            )
        })
    });
}

fn bench_controller_tick(c: &mut Criterion) {
    let model = ApplicationModel::paper_benchmark();
    let samples: Vec<MonitoringSample> = [0.059, 0.1, 0.04]
        .iter()
        .map(|&d| {
            MonitoringSample::new(60.0, 6000, (100.0 * d / 10.0_f64).min(1.0), 10, Some(d * 1.2))
                .unwrap()
        })
        .collect();
    c.bench_function("chamulteon_tick", |b| {
        b.iter_batched(
            || {
                let mut ctl = Chamulteon::new(model.clone(), ChamulteonConfig::default());
                let warmup: Vec<f64> = (0..120).map(|k| 100.0 + (k % 60) as f64).collect();
                ctl.preload_history(60.0, &warmup);
                ctl
            },
            |mut ctl| ctl.tick(60.0, black_box(&samples)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulate_60s_at_200rps", |b| {
        b.iter_batched(
            || {
                let model = ApplicationModel::paper_benchmark();
                let trace = LoadTrace::new(60.0, vec![200.0]).unwrap();
                let config =
                    SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 42);
                let mut sim = Simulation::new(&model, &trace, config);
                sim.set_supply(0, 20).unwrap();
                sim.set_supply(1, 34).unwrap();
                sim.set_supply(2, 14).unwrap();
                sim
            },
            |sim| sim.run_to_end(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_queueing,
    bench_forecast,
    bench_algorithm1,
    bench_controller_tick,
    bench_simulator
);
criterion_main!(benches);
