//! Micro-benchmarks for the performance-sensitive pieces: the queueing
//! solvers, the Telescope forecast, Algorithm 1, a full Chamulteon tick,
//! and raw simulator throughput.
//!
//! These guard the "short time-to-result" property the paper requires of
//! the forecasting component (§III-A) and document the controller's
//! per-tick overhead. The harness is std-only (median-of-samples over
//! auto-calibrated batches) because the build environment cannot resolve
//! criterion; numbers are indicative, not criterion-grade.
//!
//! Run with: `cargo bench -p chamulteon-bench --bench micro`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon::{proactive_decisions, Chamulteon, ChamulteonConfig};
use chamulteon_demand::MonitoringSample;
use chamulteon_forecast::{Forecaster, TelescopeForecaster, TimeSeries};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::min_instances_for_response_time;
use chamulteon_queueing::erlang_c;
use chamulteon_sim::{DeploymentProfile, Simulation, SimulationConfig, SloPolicy};
use chamulteon_workload::LoadTrace;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 30;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Times `op` (median over [`SAMPLES`] batches, batch size auto-calibrated
/// so one batch runs ≈[`TARGET_SAMPLE_TIME`]) and prints one report line.
fn bench<T>(name: &str, mut op: impl FnMut() -> T) {
    // Calibrate the batch size on a single timed run.
    let start = Instant::now();
    black_box(op());
    let once = start.elapsed().max(Duration::from_nanos(1));
    let batch = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(op());
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let fastest = per_iter[0];
    println!(
        "{name:32} median {:>12}  fastest {:>12}  ({batch} iters/sample)",
        format_time(median),
        format_time(fastest),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn bench_queueing() {
    bench("erlang_c_100_servers", || {
        erlang_c(black_box(100), black_box(80.0)).unwrap()
    });
    bench("min_instances_for_slo", || {
        min_instances_for_response_time(black_box(400.0), black_box(0.1), 0.25, 1000).unwrap()
    });
}

fn bench_forecast() {
    let values: Vec<f64> = (0..120)
        .map(|t| 100.0 + 40.0 * (t as f64 * std::f64::consts::TAU / 60.0).sin())
        .collect();
    let history = TimeSeries::from_values(60.0, values).unwrap();
    bench("telescope_forecast_120obs_h8", || {
        TelescopeForecaster::default()
            .forecast(black_box(&history), 8)
            .unwrap()
    });
}

fn bench_algorithm1() {
    let model = ApplicationModel::paper_benchmark();
    let config = ChamulteonConfig::default();
    bench("algorithm1_three_services", || {
        proactive_decisions(
            black_box(&model),
            black_box(300.0),
            &[0.059, 0.1, 0.04],
            &[10, 17, 7],
            &config,
        )
    });
}

fn bench_controller_tick() {
    let model = ApplicationModel::paper_benchmark();
    let samples: Vec<MonitoringSample> = [0.059, 0.1, 0.04]
        .iter()
        .map(|&d| {
            MonitoringSample::new(
                60.0,
                6000,
                (100.0 * d / 10.0_f64).min(1.0),
                10,
                Some(d * 1.2),
            )
            .unwrap()
        })
        .collect();
    // Setup (controller construction + history preload) is inside the timed
    // closure; it is dwarfed by the tick itself but keep that in mind when
    // comparing against criterion-based historical numbers.
    bench("chamulteon_tick", || {
        let mut ctl = Chamulteon::new(model.clone(), ChamulteonConfig::default());
        let warmup: Vec<f64> = (0..120).map(|k| 100.0 + (k % 60) as f64).collect();
        ctl.preload_history(60.0, &warmup);
        ctl.tick(60.0, black_box(&samples))
    });
}

fn bench_simulator() {
    bench("simulate_60s_at_200rps", || {
        let model = ApplicationModel::paper_benchmark();
        let trace = LoadTrace::new(60.0, vec![200.0]).unwrap();
        let config = SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), 42);
        let mut sim = Simulation::new(&model, &trace, config);
        sim.set_supply(0, 20).unwrap();
        sim.set_supply(1, 34).unwrap();
        sim.set_supply(2, 14).unwrap();
        sim.run_to_end()
    });
}

fn main() {
    bench_queueing();
    bench_forecast();
    bench_algorithm1();
    bench_controller_tick();
    bench_simulator();
}
