//! Regenerates **Table II** of the paper: all five auto-scalers on the
//! Wikipedia-like trace in the Docker deployment (1 h experiment, 60 s
//! scaling interval, peak ≈120 containers).
//!
//! Run with: `cargo bench -p chamulteon-bench --bench table2_wikipedia_docker`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::paper::{render_paper_table, run_lineup, TABLE2};
use chamulteon_bench::setups::wikipedia_docker;
use chamulteon_metrics::render_table;

fn main() {
    let spec = wikipedia_docker();
    eprintln!(
        "Running {} — 5 scalers x {:.0} s simulated...",
        spec.name,
        spec.trace.duration()
    );
    let reports = run_lineup(&spec);
    println!(
        "{}",
        render_table("Table II (measured) — Wikipedia trace, Docker", &reports)
    );
    println!(
        "{}",
        render_paper_table("Table II (paper, for comparison)", &TABLE2)
    );
}
