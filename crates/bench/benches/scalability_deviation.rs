//! Regenerates the **§V-C scalability claim**: the relative deviation of
//! each auto-scaler's worst-case deviation ς between the small (60) and
//! large (120 container) BibSonomy setups. The paper reports Chamulteon
//! lowest at 8.97%, Hist second (13.57%), React highest (43.88%).
//!
//! Run with: `cargo bench -p chamulteon-bench --bench scalability_deviation`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::paper::run_lineup;
use chamulteon_bench::setups::{bibsonomy_large, bibsonomy_small};

fn main() {
    eprintln!("Running BibSonomy small and large setups for all scalers...");
    let small = run_lineup(&bibsonomy_small());
    let large = run_lineup(&bibsonomy_large());

    println!("Scalability (relative deviation of sigma between small and large setup)");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "scaler", "sigma_small", "sigma_large", "rel_dev"
    );
    let mut rows: Vec<(String, f64, f64, f64)> = small
        .iter()
        .zip(&large)
        .map(|(s, l)| {
            let ss = s.worst_case().sigma;
            let sl = l.worst_case().sigma;
            let rel = if ss > 0.0 {
                100.0 * (sl - ss).abs() / ss
            } else {
                0.0
            };
            (s.scaler.clone(), ss, sl, rel)
        })
        .collect();
    rows.sort_by(|a, b| a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal));
    for (name, ss, sl, rel) in &rows {
        println!("{name:<12} {ss:>11.1}% {sl:>11.1}% {rel:>11.2}%");
    }
    println!();
    println!("Paper reference: chamulteon 8.97% (lowest), hist 13.57%, react 43.88% (highest).");
}
