//! Ablation of the return-path (backpressure) extension — the paper's
//! §VI sketch: "the auto-scaler could scale down to the maximum capacity
//! of the bottleneck resource and save instance time."
//!
//! Scenario: the data tier has a hard instance cap well below what the
//! load needs; with backpressure enabled, upstream tiers are sized for
//! what the bottleneck can actually serve instead of the full offered
//! rate. Delivered throughput is identical — the saved instance-hours are
//! pure waste elimination.
//!
//! Run with: `cargo bench -p chamulteon-bench --bench ablation_backpressure`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon::{proactive_decisions, ChamulteonConfig};
use chamulteon_perfmodel::ApplicationModelBuilder;

fn main() {
    let model = ApplicationModelBuilder::new()
        .service("ui", 0.059, 1, 500, 1)
        .service("validation", 0.1, 1, 500, 1)
        .service("data", 0.04, 1, 6, 1) // hard cap: 150 req/s max
        .call("ui", "validation", 1.0)
        .call("validation", "data", 1.0)
        .entry("ui")
        .build()
        .expect("valid model");
    let demands = [0.059, 0.1, 0.04];

    println!("Return-path ablation — data tier capped at 6 instances (150 req/s max)");
    println!(
        "{:>10} {:>22} {:>22} {:>10}",
        "load_rps", "plain [ui/val/data]", "backpressure", "saved"
    );
    for &rate in &[50.0, 100.0, 150.0, 250.0, 400.0, 800.0] {
        let plain = proactive_decisions(
            &model,
            rate,
            &demands,
            &[1, 1, 1],
            &ChamulteonConfig::default(),
        );
        let aware = proactive_decisions(
            &model,
            rate,
            &demands,
            &[1, 1, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        let total = |v: &[u32]| v.iter().sum::<u32>();
        let saved = total(&plain) as i64 - total(&aware) as i64;
        println!(
            "{:>10.0} {:>22} {:>22} {:>10}",
            rate,
            format!("{:?}", plain),
            format!("{:?}", aware),
            saved
        );
    }
    println!();
    println!("Below the bottleneck capacity the two configurations are identical; past");
    println!("it, backpressure stops paying for upstream instances whose output can only");
    println!("queue at the capped tier. Delivered throughput is the same in both modes.");
}
