//! Regenerates **Figures 2 and 3** of the paper: the per-service
//! demand-vs-supply series plus the sent-vs-SLO-conformant request series,
//! for Reg (Fig. 2 — bottleneck shifting and oscillation) and Chamulteon
//! (Fig. 3 — neither) on the Wikipedia trace in the Docker deployment.
//!
//! The paper plots continuous curves; this harness prints the same series
//! as one row per scaling interval, suitable for piping into any plotting
//! tool.
//!
//! Run with:
//! `cargo bench -p chamulteon-bench --bench fig2_fig3_scaling_behavior`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::setups::wikipedia_docker;
use chamulteon_bench::{run_experiment, ExperimentOutcome, ScalerKind};

fn print_series(title: &str, outcome: &ExperimentOutcome, interval: f64) {
    println!("{title}");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "time_s", "d1", "s1", "d2", "s2", "d3", "s3", "sent_rps", "slo_rps"
    );
    let duration = outcome.result.duration;
    let steps = (duration / interval).round() as usize;
    for k in 0..steps {
        let t = k as f64 * interval;
        let mut row = format!("{t:>8.0}");
        for service in 0..3 {
            let d = outcome.demand[service].value_at(t);
            let s = outcome.result.supply_at(service, t);
            row.push_str(&format!(" {d:>8} {s:>8}"));
        }
        // Average the per-second counters over the interval.
        let lo = t as usize;
        let hi = ((t + interval) as usize).min(outcome.result.sent_per_second.len());
        let span = (hi - lo).max(1) as f64;
        let sent: u64 = outcome.result.sent_per_second[lo..hi].iter().sum();
        let conf: u64 = outcome.result.conformant_per_second[lo..hi].iter().sum();
        row.push_str(&format!(
            " {:>10.1} {:>10.1}",
            sent as f64 / span,
            conf as f64 / span
        ));
        println!("{row}");
    }
    println!();
}

fn main() {
    let spec = wikipedia_docker();
    eprintln!("Running {} for Reg and Chamulteon...", spec.name);

    let reg = run_experiment(&spec, ScalerKind::Reg);
    print_series(
        "Figure 2 (measured) — scaling behavior of Reg on the Wikipedia trace\n\
         (columns: per-service demand dN / supply sN, sent and SLO-conformant req/s)",
        &reg,
        spec.scaling_interval,
    );

    let cham = run_experiment(&spec, ScalerKind::Chamulteon);
    print_series(
        "Figure 3 (measured) — scaling behavior of Chamulteon on the Wikipedia trace",
        &cham,
        spec.scaling_interval,
    );

    // The paper's qualitative claims, quantified.
    let lag = |o: &ExperimentOutcome, service: usize, threshold: u32| -> Option<f64> {
        let duration = o.result.duration;
        let mut t = 0.0;
        while t < duration {
            if o.result.supply_at(service, t) >= threshold {
                return Some(t);
            }
            t += 1.0;
        }
        None
    };
    println!(
        "Bottleneck-shifting check (time until each tier first reaches 50% of its peak supply):"
    );
    for (name, o) in [("reg", &reg), ("chamulteon", &cham)] {
        let peaks: Vec<u32> = (0..3)
            .map(|s| {
                o.result.supply[s]
                    .iter()
                    .map(|c| c.running)
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let times: Vec<String> = (0..3)
            .map(|s| {
                lag(o, s, (peaks[s] / 2).max(2))
                    .map(|t| format!("{t:.0}s"))
                    .unwrap_or_else(|| "never".into())
            })
            .collect();
        println!(
            "  {name:<12} service1 {} | service2 {} | service3 {}",
            times[0], times[1], times[2]
        );
    }
}
