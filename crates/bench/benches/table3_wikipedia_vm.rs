//! Regenerates **Table III** of the paper: all five auto-scalers on the
//! Wikipedia-like trace in the VM deployment (6 h experiment, 120 s
//! scaling interval, slow provisioning, peak ≈20 VMs).
//!
//! Run with: `cargo bench -p chamulteon-bench --bench table3_wikipedia_vm`

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_bench::paper::{render_paper_table, run_lineup, TABLE3};
use chamulteon_bench::setups::wikipedia_vm;
use chamulteon_metrics::render_table;

fn main() {
    let spec = wikipedia_vm();
    eprintln!(
        "Running {} — 5 scalers x {:.0} s simulated...",
        spec.name,
        spec.trace.duration()
    );
    let reports = run_lineup(&spec);
    println!(
        "{}",
        render_table("Table III (measured) — Wikipedia trace, VM", &reports)
    );
    println!(
        "{}",
        render_paper_table("Table III (paper, for comparison)", &TABLE3)
    );
}
