//! Instrumentation must never change a decision: a run with the tracing
//! recorder and metrics registry attached is bit-identical to the plain
//! run — same simulation result, same scored report, same degradation
//! record — for clean and faulted seeds alike.

use chamulteon::RetryPolicy;
use chamulteon_bench::robustness::FaultClass;
use chamulteon_bench::setups::smoke_test;
use chamulteon_bench::{run_experiment_observed, run_experiment_with_faults, ScalerKind};
use chamulteon_obs::{EventKind, Obs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `class_idx` 0 is the clean run; 1..=4 index [`FaultClass::ALL`].
    #[test]
    fn instrumented_runs_are_bit_identical(seed in 1u64..1000, class_idx in 0usize..5) {
        let mut spec = smoke_test();
        spec.seed = seed;
        let retry = RetryPolicy::default();
        let plan = class_idx
            .checked_sub(1)
            .map(|c| FaultClass::ALL[c].plan(spec.seed, spec.trace.duration(), spec.scaling_interval));

        let plain = run_experiment_with_faults(&spec, ScalerKind::Chamulteon, plan.clone(), &retry);
        let (obs, ring) = Obs::recording(1 << 18);
        let traced = run_experiment_observed(&spec, ScalerKind::Chamulteon, plan, &retry, &obs);

        prop_assert_eq!(&plain.outcome.result, &traced.outcome.result);
        prop_assert_eq!(&plain.outcome.report, &traced.outcome.report);
        prop_assert_eq!(&plain.outcome.demand, &traced.outcome.demand);
        prop_assert_eq!(
            plain.outcome.billed_instance_seconds,
            traced.outcome.billed_instance_seconds
        );
        prop_assert_eq!(&plain.degradation, &traced.degradation);

        // The instrumented run actually traced: every cycle is visible and
        // every scaling decision carries a provenance record.
        let events = ring.take();
        prop_assert_eq!(ring.dropped(), 0);
        let cycles = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CycleStart { .. }))
            .count();
        prop_assert!(cycles > 0);
        let decisions = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Decision(_)))
            .count();
        prop_assert_eq!(decisions, cycles * spec.model.service_count());
        // Degradation events mirror the degradation log entry for entry.
        let degradations = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Degradation { .. }))
            .count();
        prop_assert_eq!(degradations, traced.degradation.len());
        // Fault events mirror the injected-fault record.
        let faults = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Fault { .. }))
            .count();
        prop_assert_eq!(faults, traced.outcome.result.fault_log.len());
    }
}

/// The independent baselines run the same validated-observation boundary;
/// attaching a sink must not change them either.
#[test]
fn instrumented_baseline_is_bit_identical() {
    let spec = smoke_test();
    let retry = RetryPolicy::default();
    let plan =
        FaultClass::DropSamples.plan(spec.seed, spec.trace.duration(), spec.scaling_interval);
    let plain = run_experiment_with_faults(&spec, ScalerKind::Adapt, Some(plan.clone()), &retry);
    let (obs, ring) = Obs::recording(1 << 18);
    let traced = run_experiment_observed(&spec, ScalerKind::Adapt, Some(plan), &retry, &obs);
    assert_eq!(plain.outcome.result, traced.outcome.result);
    assert_eq!(plain.outcome.report, traced.outcome.report);
    assert_eq!(plain.degradation, traced.degradation);
    // Baselines trace their boundary degradations and actuations, not
    // per-service decision provenance (that is the controller's).
    let events = ring.take();
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Degradation { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Actuation { .. })));
}
