//! Property tests for the bench harness's parallel runner: fanning work
//! out over threads must never change what is computed, only when.

use chamulteon_bench::parallel_map;
use proptest::prelude::*;

proptest! {
    /// The pool returns exactly the sequential results in exactly the
    /// input order, for any item count and any thread count (including
    /// the degenerate 0/1-thread fast path).
    #[test]
    fn parallel_map_matches_sequential(
        items in prop::collection::vec(0u32..u32::MAX, 0..48),
        threads in 0usize..9,
    ) {
        let f = |i: usize, &x: &u32| u64::from(x).wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let sequential: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        prop_assert_eq!(parallel_map(&items, threads, f), sequential);
    }

    /// Pool results are independent of the thread count: any two worker
    /// configurations agree bit-for-bit.
    #[test]
    fn parallel_map_thread_count_invariant(
        items in prop::collection::vec(-1_000_000i64..1_000_000, 1..32),
        a in 1usize..7,
        b in 1usize..7,
    ) {
        let f = |i: usize, &x: &i64| x.wrapping_mul(31).wrapping_sub(i as i64);
        prop_assert_eq!(parallel_map(&items, a, f), parallel_map(&items, b, f));
    }
}
