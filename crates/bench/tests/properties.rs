//! Property tests for the bench harness's parallel runner and the
//! graph-scale sizing paths: fanning work out over threads must never
//! change what is computed, only when.

use chamulteon::{proactive_decisions, ChamulteonConfig};
use chamulteon_bench::{parallel_map, proactive_decisions_legacy, proactive_decisions_sharded};
use chamulteon_perfmodel::{topology, TopologyFamily};
use chamulteon_queueing::CapacityCache;
use proptest::prelude::*;

proptest! {
    /// The pool returns exactly the sequential results in exactly the
    /// input order, for any item count and any thread count (including
    /// the degenerate 0/1-thread fast path).
    #[test]
    fn parallel_map_matches_sequential(
        items in prop::collection::vec(0u32..u32::MAX, 0..48),
        threads in 0usize..9,
    ) {
        let f = |i: usize, &x: &u32| u64::from(x).wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        let sequential: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        prop_assert_eq!(parallel_map(&items, threads, f), sequential);
    }

    /// Pool results are independent of the thread count: any two worker
    /// configurations agree bit-for-bit.
    #[test]
    fn parallel_map_thread_count_invariant(
        items in prop::collection::vec(-1_000_000i64..1_000_000, 1..32),
        a in 1usize..7,
        b in 1usize..7,
    ) {
        let f = |i: usize, &x: &i64| x.wrapping_mul(31).wrapping_sub(i as i64);
        prop_assert_eq!(parallel_map(&items, a, f), parallel_map(&items, b, f));
    }

    /// Sharded sizing is pinned to the exact sequential Algorithm 1: for
    /// any topology family, size, entry rate, current deployment, and
    /// thread count, `proactive_decisions_sharded` returns bit-identical
    /// decisions to `chamulteon::proactive_decisions` — and so does the
    /// legacy (seed-faithful) reimplementation the benchmark compares
    /// against.
    #[test]
    fn sharded_sizing_matches_sequential_exact(
        fam_index in 0usize..4,
        n in 1usize..48,
        seed in 0u64..500,
        rate in 0.0f64..10_000.0,
        current in prop::collection::vec(0u32..200, 0..48),
        threads in 1usize..9,
    ) {
        let fam = TopologyFamily::ALL[fam_index];
        let model = topology::model(fam, n, seed).expect("generated model is valid");
        let config = ChamulteonConfig::default();
        let exact = proactive_decisions(&model, rate, &[], &current, &config);
        let cache = CapacityCache::new();
        prop_assert_eq!(
            &proactive_decisions_sharded(&cache, &model, rate, &[], &current, &config, threads),
            &exact
        );
        prop_assert_eq!(
            &proactive_decisions_legacy(&cache, &model, rate, &[], &current, &config),
            &exact
        );
    }
}
