//! Chaos test for the multi-tenant cluster: a tenant's controller
//! crashes mid-billing-interval and recovery must keep the arbiter's
//! lease accounting intact — transferred warm-pool leases are neither
//! orphaned nor double-billed.
//!
//! The lever is the coordinator checkpoint: under
//! `RecoveryPolicy::Checkpoint` the harness snapshots the arbiter (lease
//! books, warm pool with original start times, billed ledger) alongside
//! the controllers, so a crash restores the exact cluster state and the
//! continuation is bit-identical to the crash-free run.

// Example/test/bench code: panics are acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use chamulteon::ArbitrationPolicy;
use chamulteon_bench::multi_tenant::{
    run_multi_tenant, run_multi_tenant_recovered, MultiTenantSpec, TenantCrash,
};
use chamulteon_obs::{EventKind, Obs};
use chamulteon_sim::RecoveryPolicy;

/// A crash cycle whose time (cycle × 30 s) is *not* a multiple of the
/// gcp-per-minute charging interval (60 s): the crash lands mid-interval,
/// while warm-pool leases are inside a paid window.
const MID_INTERVAL_CRASH: TenantCrash = TenantCrash {
    cycle: 13, // t = 390 s
    tenant: 0,
};

fn spec() -> MultiTenantSpec {
    MultiTenantSpec::smoke(ArbitrationPolicy::WeightedFairShare)
}

#[test]
fn checkpointed_crash_recovery_neither_orphans_nor_double_bills_transfers() {
    let spec = spec();
    // The crash must land while the warm pool is in play, or the test
    // proves nothing about transferred leases.
    let clean = run_multi_tenant(&spec, &Obs::disabled());
    assert!(clean.warm_deposits > 0 && clean.warm_draws > 0);

    let (obs, ring) = Obs::recording(1 << 18);
    let crashed = run_multi_tenant_recovered(
        &spec,
        &obs,
        RecoveryPolicy::Checkpoint { cadence: 1 },
        Some(MID_INTERVAL_CRASH),
    );

    // The restore actually happened, warm, from the previous cycle.
    let restores: Vec<_> = ring
        .take()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::Restore {
                cycle,
                cold,
                checkpoint_cycle,
            } => Some((cycle, cold, checkpoint_cycle)),
            _ => None,
        })
        .collect();
    assert_eq!(restores, vec![(13, false, Some(12))]);

    // Recovery equivalence: with the arbiter (and its warm pool) in the
    // checkpoint, the recovered cluster's ledgers are bit-identical to
    // the crash-free run — nothing was billed twice and no transferred
    // lease was dropped.
    assert_eq!(crashed.tenants.len(), clean.tenants.len());
    for (c, r) in clean.tenants.iter().zip(&crashed.tenants) {
        assert_eq!(
            c.billed_instance_seconds.to_bits(),
            r.billed_instance_seconds.to_bits(),
            "tenant {} billed {} clean vs {} recovered",
            c.tenant,
            c.billed_instance_seconds,
            r.billed_instance_seconds
        );
        assert_eq!(c.granted, r.granted, "tenant {} grants diverged", c.tenant);
        assert_eq!(c.drawn_warm, r.drawn_warm);
        assert_eq!(c.deposited, r.deposited);
        assert_eq!(c.closed, r.closed);
    }
    assert_eq!(crashed.warm_draws, clean.warm_draws);
    assert_eq!(crashed.warm_deposits, clean.warm_deposits);
    assert_eq!(crashed.warm_expiries, clean.warm_expiries);
    assert!(crashed.peak_in_use <= crashed.budget);
}

#[test]
fn crash_without_checkpoints_restarts_cold_and_keeps_the_ledger_consistent() {
    let spec = spec();
    let (obs, ring) = Obs::recording(1 << 18);
    let crashed = run_multi_tenant_recovered(
        &spec,
        &obs,
        RecoveryPolicy::ColdRestart,
        Some(MID_INTERVAL_CRASH),
    );
    let cold_restores = ring
        .take()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Restore { cold: true, .. }))
        .count();
    assert_eq!(cold_restores, 1);
    // Even a cold controller restart cannot break the cluster invariants:
    // the live arbiter keeps the books, so billing stays conservative and
    // the budget holds.
    assert!(crashed.peak_in_use <= crashed.budget);
    for t in &crashed.tenants {
        assert!(t.billed_instance_seconds > 0.0);
    }
}

#[test]
fn checkpointing_without_a_crash_is_a_pure_read() {
    let spec = spec();
    let plain = run_multi_tenant(&spec, &Obs::disabled());
    let checkpointed = run_multi_tenant_recovered(
        &spec,
        &Obs::disabled(),
        RecoveryPolicy::Checkpoint { cadence: 1 },
        None,
    );
    for (a, b) in plain.tenants.iter().zip(&checkpointed.tenants) {
        assert_eq!(
            a.billed_instance_seconds.to_bits(),
            b.billed_instance_seconds.to_bits()
        );
        assert_eq!(a.granted, b.granted);
    }
    assert_eq!(plain.peak_in_use, checkpointed.peak_in_use);
}
