//! The paper's published numbers (Tables II–V), for side-by-side
//! comparison in bench output and EXPERIMENTS.md.
//!
//! Only the *shape* is expected to match our measurements (who wins, by
//! roughly what factor): the substrate here is a simulator, not the
//! authors' CloudStack/Kubernetes testbed.

use crate::drivers::ScalerKind;
use crate::experiment::{run_experiment, ExperimentSpec};
use chamulteon_metrics::ScalerReport;

/// One row set of a published table: scaler name and the seven reported
/// values (θ_U, θ_O, τ_U, τ_O, ς, SLO, Apdex), all in percent.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Scaler column name.
    pub scaler: &'static str,
    /// θ_U, θ_O, τ_U, τ_O, ς, SLO violations, Apdex.
    pub values: [f64; 7],
}

/// Paper Table II — Wikipedia trace, Docker.
pub const TABLE2: [PaperRow; 5] = [
    PaperRow {
        scaler: "chamulteon",
        values: [3.7, 29.3, 14.9, 84.4, 52.9, 6.2, 77.7],
    },
    PaperRow {
        scaler: "adapt",
        values: [12.6, 10.2, 34.7, 54.9, 50.6, 24.2, 51.6],
    },
    PaperRow {
        scaler: "hist",
        values: [7.0, 32.1, 25.6, 69.4, 58.1, 12.5, 67.8],
    },
    PaperRow {
        scaler: "reg",
        values: [15.3, 8.8, 52.2, 41.2, 52.9, 37.3, 31.1],
    },
    PaperRow {
        scaler: "react",
        values: [5.3, 13.1, 23.6, 69.7, 50.3, 11.2, 72.8],
    },
];

/// Paper Table III — Wikipedia trace, VM.
pub const TABLE3: [PaperRow; 5] = [
    PaperRow {
        scaler: "chamulteon",
        values: [0.9, 15.6, 3.0, 60.6, 37.0, 2.0, 83.2],
    },
    PaperRow {
        scaler: "adapt",
        values: [9.7, 6.0, 31.0, 15.7, 34.9, 19.1, 30.7],
    },
    PaperRow {
        scaler: "hist",
        values: [4.5, 23.9, 15.7, 38.7, 37.1, 5.1, 69.8],
    },
    PaperRow {
        scaler: "reg",
        values: [7.3, 10.2, 24.0, 24.0, 34.8, 12.6, 50.3],
    },
    PaperRow {
        scaler: "react",
        values: [0.2, 47.5, 0.8, 94.1, 57.8, 1.0, 92.0],
    },
];

/// Paper Table IV — BibSonomy trace, small setup.
pub const TABLE4: [PaperRow; 5] = [
    PaperRow {
        scaler: "chamulteon",
        values: [2.0, 19.1, 7.4, 78.8, 47.4, 7.3, 90.5],
    },
    PaperRow {
        scaler: "adapt",
        values: [9.7, 9.3, 40.6, 40.7, 50.1, 17.8, 79.8],
    },
    PaperRow {
        scaler: "hist",
        values: [5.43, 18.9, 23.8, 61.2, 48.7, 11.9, 84.6],
    },
    PaperRow {
        scaler: "reg",
        values: [11.0, 4.9, 42.7, 32.3, 48.7, 23.4, 71.2],
    },
    PaperRow {
        scaler: "react",
        values: [3.5, 14.9, 14.5, 68.5, 56.1, 10.5, 87.5],
    },
];

/// Paper Table V — BibSonomy trace, large setup.
pub const TABLE5: [PaperRow; 5] = [
    PaperRow {
        scaler: "chamulteon",
        values: [2.4, 19.5, 6.9, 89.7, 51.4, 9.6, 77.1],
    },
    PaperRow {
        scaler: "adapt",
        values: [17.5, 7.7, 50.8, 38.9, 55.8, 33.2, 42.8],
    },
    PaperRow {
        scaler: "hist",
        values: [5.9, 24.6, 28.3, 65.7, 56.1, 12.9, 75.4],
    },
    PaperRow {
        scaler: "reg",
        values: [15.4, 4.6, 55.4, 36.0, 59.1, 36.3, 35.2],
    },
    PaperRow {
        scaler: "react",
        values: [5.6, 9.4, 32.6, 55.1, 53.3, 15.3, 74.1],
    },
];

/// Renders a published table in the same layout as
/// [`chamulteon_metrics::render_table`].
pub fn render_paper_table(title: &str, rows: &[PaperRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let width = rows
        .iter()
        .map(|r| r.scaler.len())
        .max()
        .unwrap_or(8)
        .max(10);
    out.push_str(&format!("{:<8}", "Metric"));
    for r in rows {
        out.push_str(&format!(" {:>width$}", r.scaler));
    }
    out.push('\n');
    let names = [
        "theta_U", "theta_O", "tau_U", "tau_O", "sigma", "SLO", "Apdex",
    ];
    for (i, name) in names.iter().enumerate() {
        out.push_str(&format!("{name:<8}"));
        for r in rows {
            out.push_str(&format!(" {:>width$}", format!("{:.1}%", r.values[i])));
        }
        out.push('\n');
    }
    out
}

/// Runs the paper's five-scaler lineup through one experiment, one cell
/// per worker thread (up to the available cores). Every cell is
/// deterministic in the spec's seed and the pool returns results in
/// input order, so the reports are identical to [`run_lineup_seq`].
pub fn run_lineup(spec: &ExperimentSpec) -> Vec<ScalerReport> {
    run_lineup_with_threads(spec, crate::pool::default_threads())
}

/// [`run_lineup`] with an explicit worker-thread count.
pub fn run_lineup_with_threads(spec: &ExperimentSpec, threads: usize) -> Vec<ScalerReport> {
    let kinds = ScalerKind::paper_lineup();
    crate::pool::parallel_map(&kinds, threads, |_, &k| run_experiment(spec, k).report)
}

/// The sequential reference for [`run_lineup`]: one scaler at a time on
/// the calling thread. Kept as the benchmark baseline and the
/// equivalence oracle for the parallel path.
pub fn run_lineup_seq(spec: &ExperimentSpec) -> Vec<ScalerReport> {
    ScalerKind::paper_lineup()
        .iter()
        .map(|&k| run_experiment(spec, k).report)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_lineup_matches_sequential() {
        let spec = crate::setups::smoke_test();
        assert_eq!(run_lineup_with_threads(&spec, 3), run_lineup_seq(&spec));
    }

    #[test]
    fn paper_tables_have_five_scalers_each() {
        for table in [&TABLE2, &TABLE3, &TABLE4, &TABLE5] {
            assert_eq!(table.len(), 5);
            assert_eq!(table[0].scaler, "chamulteon");
        }
    }

    #[test]
    fn rendered_paper_table_contains_values() {
        let text = render_paper_table("Paper Table II", &TABLE2);
        assert!(text.contains("chamulteon"));
        assert!(text.contains("3.7%"));
        assert!(text.contains("77.7%"));
        assert!(text.contains("sigma"));
    }

    #[test]
    fn paper_findings_encoded_correctly() {
        // §V-D finding 1: Chamulteon has the best (lowest) SLO violations
        // in 3 of 4 experiments (all but Table III where React wins).
        for table in [&TABLE2, &TABLE4, &TABLE5] {
            let chamulteon_slo = table[0].values[5];
            for row in &table[1..] {
                assert!(chamulteon_slo <= row.values[5], "{}", row.scaler);
            }
        }
        // §V-D finding 4: Reg and Adapt have the worst user metrics.
        for table in [&TABLE2, &TABLE3, &TABLE4, &TABLE5] {
            let worst_apdex = table
                .iter()
                .min_by(|a, b| a.values[6].partial_cmp(&b.values[6]).unwrap())
                .unwrap();
            assert!(
                worst_apdex.scaler == "reg" || worst_apdex.scaler == "adapt",
                "worst is {}",
                worst_apdex.scaler
            );
        }
    }
}
