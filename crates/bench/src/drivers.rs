//! Uniform driving of the five auto-scalers (plus ablation variants).

use chamulteon::{
    ChamulteonConfig, ChargingModel, ControllerSnapshot, DegradationLog, DegradationReason,
    Observation, SpikeGate,
};
use chamulteon_demand::{MonitoringSample, RollingDemandEstimator};
use chamulteon_obs::{Event, EventKind, Obs};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_scalers::{Adapt, AutoScaler, Hist, IndependentScalers, React, Reg};
use chamulteon_sim::ObservedSample;
#[cfg(test)]
use chamulteon_sim::ServiceIntervalStats;

/// Which auto-scaler to run in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerKind {
    /// The paper's contribution, both cycles enabled.
    Chamulteon,
    /// Ablation: reactive cycle only.
    ChamulteonReactiveOnly,
    /// Ablation: proactive cycle only.
    ChamulteonProactiveOnly,
    /// Chamulteon with the FOX cost reviewer under EC2 hourly billing.
    ChamulteonFoxEc2,
    /// Chamulteon with FOX under GCP per-minute billing.
    ChamulteonFoxGcp,
    /// React (Chieu et al. 2009), one instance per service.
    React,
    /// Adapt (Ali-Eldin et al. 2012), one instance per service.
    Adapt,
    /// Hist (Urgaonkar et al. 2008), one instance per service.
    Hist,
    /// Reg (Iqbal et al. 2011), one instance per service.
    Reg,
}

impl ScalerKind {
    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ScalerKind::Chamulteon => "chamulteon",
            ScalerKind::ChamulteonReactiveOnly => "cham-reactive",
            ScalerKind::ChamulteonProactiveOnly => "cham-proactive",
            ScalerKind::ChamulteonFoxEc2 => "cham-fox-ec2",
            ScalerKind::ChamulteonFoxGcp => "cham-fox-gcp",
            ScalerKind::React => "react",
            ScalerKind::Adapt => "adapt",
            ScalerKind::Hist => "hist",
            ScalerKind::Reg => "reg",
        }
    }

    /// The five columns of the paper's tables.
    pub fn paper_lineup() -> [ScalerKind; 5] {
        [
            ScalerKind::Chamulteon,
            ScalerKind::Adapt,
            ScalerKind::Hist,
            ScalerKind::Reg,
            ScalerKind::React,
        ]
    }
}

/// The controller configuration a Chamulteon-family kind runs with;
/// `None` for the independent baselines (they have no controller whose
/// snapshot could be restored).
fn chamulteon_config(kind: ScalerKind) -> Option<ChamulteonConfig> {
    match kind {
        ScalerKind::Chamulteon | ScalerKind::ChamulteonFoxEc2 | ScalerKind::ChamulteonFoxGcp => {
            Some(ChamulteonConfig::default())
        }
        ScalerKind::ChamulteonReactiveOnly => Some(ChamulteonConfig::reactive_only()),
        ScalerKind::ChamulteonProactiveOnly => Some(ChamulteonConfig::proactive_only()),
        ScalerKind::React | ScalerKind::Adapt | ScalerKind::Hist | ScalerKind::Reg => None,
    }
}

/// Rescales a reported utilization from the instances that produced it
/// (`instances_end`, the running count) to the instance count the sample
/// will report (`provisioned`, running + booting): the busy time
/// `U·n·T` must stay the measured one, otherwise instances that are still
/// booting would be counted as having worked and the demand estimate
/// would inflate exactly during scale-ups. NaN or negative readings pass
/// through untouched so the validation boundary sees — and quarantines —
/// the corruption instead of a laundered value.
fn observed_utilization(observed: &ObservedSample, provisioned: u32) -> f64 {
    if observed.utilization.is_finite() && observed.utilization >= 0.0 {
        let running = observed.instances_end.max(1);
        let provisioned = provisioned.max(1);
        (observed.utilization * f64::from(running) / f64::from(provisioned)).clamp(0.0, 1.0)
    } else {
        observed.utilization
    }
}

/// Maps an observed report (or its absence) to the controller's
/// [`Observation`] input, applying the utilization rescale.
fn observation_from(observed: Option<&ObservedSample>, provisioned: u32) -> Observation {
    match observed {
        None => Observation::Missing,
        Some(o) => Observation::Raw {
            duration: o.duration,
            arrivals: o.arrivals,
            completions: o.completions,
            utilization: observed_utilization(o, provisioned),
            instances: provisioned.max(1),
            // Harmless zero response times are dropped like the truth
            // path does; NaN passes through for the boundary to reject.
            mean_response_time: o
                .mean_response_time
                .filter(|rt| !(rt.is_finite() && *rt <= 0.0)),
        },
    }
}

/// A running scaler instance bound to an experiment.
///
/// `Clone` snapshots the complete scaler state (controller caches,
/// demand-estimator windows, degradation records), which is what lets the
/// experiment harness checkpoint a run and fork faulted continuations
/// from it.
#[derive(Clone)]
pub(crate) enum Driver {
    Chamulteon(Box<chamulteon::Chamulteon>),
    Independent {
        multi: IndependentScalers,
        /// Shared demand estimation, "determined by LibReDE as used in
        /// Chamulteon" (§IV-C).
        estimators: Vec<RollingDemandEstimator>,
        /// Last validated entry arrival rate, held through monitoring
        /// dropouts so the competitors get the same degradation ladder
        /// rung Chamulteon gets.
        last_entry_rate: f64,
        /// Degraded-decision record for the independent deployment (the
        /// Chamulteon variant keeps its own inside the controller).
        degradation: DegradationLog,
        /// Per-service spike gates, same plausibility rung the controller
        /// applies.
        spike_gates: Vec<SpikeGate>,
        /// Trace/metrics sink, mirroring the events the Chamulteon
        /// controller emits for its own degradation rungs.
        obs: Obs,
    },
}

impl Driver {
    /// Test convenience; the experiment loop constructs drivers through
    /// [`new_observed`](Driver::new_observed) with the run's sink.
    #[cfg(test)]
    pub(crate) fn new(kind: ScalerKind, model: &ApplicationModel, hist_bucket: f64) -> Driver {
        Self::new_observed(kind, model, hist_bucket, Obs::disabled())
    }

    /// [`Driver::new`] with a trace/metrics sink attached: Chamulteon
    /// variants route it into the controller; independent baselines emit
    /// the same boundary-degradation events the controller would.
    pub(crate) fn new_observed(
        kind: ScalerKind,
        model: &ApplicationModel,
        hist_bucket: f64,
        obs: Obs,
    ) -> Driver {
        let demands: Vec<f64> = model
            .services()
            .iter()
            .map(|s| s.nominal_demand())
            .collect();
        let make_estimators = || {
            demands
                .iter()
                .map(|&d| RollingDemandEstimator::new(5, 0.4, d))
                .collect::<Vec<_>>()
        };
        let chamulteon_with = |config: ChamulteonConfig| {
            Driver::Chamulteon(Box::new(
                chamulteon::Chamulteon::new(model.clone(), config).with_obs(obs.clone()),
            ))
        };
        match kind {
            ScalerKind::Chamulteon => chamulteon_with(ChamulteonConfig::default()),
            ScalerKind::ChamulteonReactiveOnly => {
                chamulteon_with(ChamulteonConfig::reactive_only())
            }
            ScalerKind::ChamulteonProactiveOnly => {
                chamulteon_with(ChamulteonConfig::proactive_only())
            }
            ScalerKind::ChamulteonFoxEc2 => Driver::Chamulteon(Box::new(
                chamulteon::Chamulteon::new(model.clone(), ChamulteonConfig::default())
                    .with_fox(ChargingModel::ec2_hourly())
                    .with_obs(obs),
            )),
            ScalerKind::ChamulteonFoxGcp => Driver::Chamulteon(Box::new(
                chamulteon::Chamulteon::new(model.clone(), ChamulteonConfig::default())
                    .with_fox(ChargingModel::gcp_per_minute())
                    .with_obs(obs),
            )),
            ScalerKind::React => Driver::Independent {
                estimators: make_estimators(),
                last_entry_rate: 0.0,
                degradation: DegradationLog::new(),
                spike_gates: vec![SpikeGate::new(); model.service_count()],
                multi: IndependentScalers::homogeneous(demands, || Box::new(React::default())),
                obs,
            },
            ScalerKind::Adapt => Driver::Independent {
                estimators: make_estimators(),
                last_entry_rate: 0.0,
                degradation: DegradationLog::new(),
                spike_gates: vec![SpikeGate::new(); model.service_count()],
                multi: IndependentScalers::homogeneous(demands, || Box::new(Adapt::default())),
                obs,
            },
            ScalerKind::Hist => Driver::Independent {
                estimators: make_estimators(),
                last_entry_rate: 0.0,
                degradation: DegradationLog::new(),
                spike_gates: vec![SpikeGate::new(); model.service_count()],
                multi: IndependentScalers::homogeneous(demands, move || {
                    Box::new(Hist::with_bucket_length(hist_bucket)) as Box<dyn AutoScaler + Send>
                }),
                obs,
            },
            ScalerKind::Reg => Driver::Independent {
                estimators: make_estimators(),
                last_entry_rate: 0.0,
                degradation: DegradationLog::new(),
                spike_gates: vec![SpikeGate::new(); model.service_count()],
                multi: IndependentScalers::homogeneous(demands, || Box::new(Reg::default())),
                obs,
            },
        }
    }

    /// Optionally preload arrival-rate history (only meaningful for
    /// Chamulteon's proactive cycle).
    pub(crate) fn preload_history(&mut self, interval: f64, rates: &[f64]) {
        if let Driver::Chamulteon(c) = self {
            c.preload_history(interval, rates);
        }
    }

    /// One scaling round from ground-truth interval stats — a test
    /// convenience; the experiment loop drives [`decide_observed`]
    /// directly.
    ///
    /// [`decide_observed`]: Driver::decide_observed
    #[cfg(test)]
    pub(crate) fn decide(
        &mut self,
        time: f64,
        interval: f64,
        stats: &[ServiceIntervalStats],
        provisioned: &[u32],
        entry: usize,
    ) -> Vec<u32> {
        // Route ground truth through the same validated-observation path
        // the fault experiments use: on clean inputs the two are
        // numerically identical (counts below 2^53 round-trip exactly).
        let observed: Vec<Option<ObservedSample>> = stats
            .iter()
            .map(|s| Some(ObservedSample::from_stats(s)))
            .collect();
        self.decide_observed(time, interval, &observed, provisioned, entry)
    }

    /// One scaling round from what monitoring *reported* — possibly
    /// dropped (`None`), stale or corrupt samples. Panic-free: invalid
    /// readings are quarantined at the validation boundary and the
    /// degradation ladder supplies the fallbacks.
    pub(crate) fn decide_observed(
        &mut self,
        time: f64,
        interval: f64,
        observed: &[Option<ObservedSample>],
        provisioned: &[u32],
        entry: usize,
    ) -> Vec<u32> {
        match self {
            Driver::Chamulteon(controller) => {
                let observations: Vec<Observation> = observed
                    .iter()
                    .zip(provisioned)
                    .map(|(o, &n)| observation_from(o.as_ref(), n))
                    .collect();
                controller.tick_observed(time, &observations)
            }
            Driver::Independent {
                multi,
                estimators,
                last_entry_rate,
                degradation,
                spike_gates,
                obs,
            } => {
                let mut degrade = |time: f64, reason: DegradationReason| {
                    obs.record_with(|| {
                        let kind = EventKind::Degradation {
                            code: reason.as_code().to_owned(),
                            attempt: reason.attempt(),
                        };
                        match reason.service() {
                            Some(service) => Event::service(time, service, kind),
                            None => Event::cycle(time, kind),
                        }
                    });
                    obs.metrics().increment("degradation.events");
                    degradation.record(time, reason);
                };
                // Validate every report at the boundary; feed estimators
                // from fresh valid samples only.
                let mut entry_sample: Option<MonitoringSample> = None;
                for (service, ((estimator, o), &n)) in estimators
                    .iter_mut()
                    .zip(observed)
                    .zip(provisioned)
                    .enumerate()
                {
                    let mut validated = None;
                    if let Some(o) = o.as_ref() {
                        match MonitoringSample::from_observed(
                            o.duration,
                            o.arrivals,
                            o.completions,
                            observed_utilization(o, n),
                            n.max(1),
                            o.mean_response_time
                                .filter(|rt| !(rt.is_finite() && *rt <= 0.0)),
                        ) {
                            Ok(sample) if !spike_gates[service].admit(sample.arrival_rate()) => {
                                degrade(time, DegradationReason::SampleImplausible { service });
                            }
                            Ok(sample) => validated = Some(sample),
                            Err(_) => {
                                degrade(time, DegradationReason::SampleQuarantined { service });
                            }
                        }
                    }
                    match validated {
                        Some(sample) => {
                            estimator.observe(sample);
                            if service == entry {
                                entry_sample = Some(sample);
                            }
                        }
                        None if o.is_none() => {
                            degrade(time, DegradationReason::SampleHeld { service });
                        }
                        None => {}
                    }
                }
                // Entry rate: fresh when valid, held otherwise.
                let entry_rate = match entry_sample {
                    Some(s) => {
                        *last_entry_rate = s.arrival_rate();
                        s.arrival_rate()
                    }
                    None => {
                        degrade(time, DegradationReason::EntryRateUnusable);
                        *last_entry_rate
                    }
                };
                let demands: Vec<f64> = estimators.iter().map(|e| e.current_demand()).collect();
                let deltas = multi.decide_rate(time, interval, entry_rate, provisioned, &demands);
                provisioned
                    .iter()
                    .zip(&deltas)
                    .map(|(&n, &d)| u32::try_from((i64::from(n) + d).max(1)).unwrap_or(1))
                    .collect()
            }
        }
    }

    /// The encoded snapshot of the controller's complete state —
    /// Chamulteon variants only; the independent baselines have no
    /// checkpoint format and always restart cold.
    pub(crate) fn snapshot_encoded(&self) -> Option<String> {
        match self {
            Driver::Chamulteon(c) => Some(c.snapshot().encode()),
            Driver::Independent { .. } => None,
        }
    }

    /// Rebuilds a crashed driver. When `checkpoint` holds a decodable
    /// snapshot and `kind` is a Chamulteon variant, the controller is
    /// restored from it (warm restart — FOX ledger, demand windows and
    /// forecast state survive); otherwise the replacement starts from
    /// scratch, with no warmup history (a crash loses the in-memory
    /// state a live run had accumulated). Returns the new driver and
    /// whether the restart was warm.
    pub(crate) fn restart(
        kind: ScalerKind,
        model: &ApplicationModel,
        hist_bucket: f64,
        obs: Obs,
        checkpoint: Option<&str>,
    ) -> (Driver, bool) {
        if let (Some(config), Some(text)) = (chamulteon_config(kind), checkpoint) {
            if let Ok(snapshot) = ControllerSnapshot::decode(text) {
                if let Ok(mut c) = chamulteon::Chamulteon::restore(model.clone(), config, &snapshot)
                {
                    c.set_obs(obs);
                    return (Driver::Chamulteon(Box::new(c)), true);
                }
            }
        }
        (Self::new_observed(kind, model, hist_bucket, obs), false)
    }

    /// Drains the degraded-decision record accumulated so far.
    pub(crate) fn take_degradation(&mut self) -> DegradationLog {
        match self {
            Driver::Chamulteon(c) => c.take_degradation(),
            Driver::Independent { degradation, .. } => std::mem::take(degradation),
        }
    }

    /// FOX-billed instance seconds, when applicable.
    pub(crate) fn billed_instance_seconds(&self, now: f64) -> Option<f64> {
        match self {
            Driver::Chamulteon(c) => c.billed_instance_seconds(now),
            Driver::Independent { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ScalerKind::Chamulteon.name(), "chamulteon");
        assert_eq!(ScalerKind::React.name(), "react");
        let lineup = ScalerKind::paper_lineup();
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[0], ScalerKind::Chamulteon);
    }

    #[test]
    fn drivers_construct_for_all_kinds() {
        let model = ApplicationModel::paper_benchmark();
        for kind in [
            ScalerKind::Chamulteon,
            ScalerKind::ChamulteonReactiveOnly,
            ScalerKind::ChamulteonProactiveOnly,
            ScalerKind::ChamulteonFoxEc2,
            ScalerKind::ChamulteonFoxGcp,
            ScalerKind::React,
            ScalerKind::Adapt,
            ScalerKind::Hist,
            ScalerKind::Reg,
        ] {
            let mut d = Driver::new(kind, &model, 600.0);
            let stats: Vec<ServiceIntervalStats> = (0..3)
                .map(|_| ServiceIntervalStats {
                    start: 0.0,
                    duration: 60.0,
                    arrivals: 600,
                    completions: 600,
                    utilization: 0.5,
                    mean_response_time: Some(0.1),
                    instances_end: 2,
                    queue_length_end: 0,
                })
                .collect();
            let targets = d.decide(60.0, 60.0, &stats, &[2, 2, 2], 0);
            assert_eq!(targets.len(), 3, "{kind:?}");
            assert!(targets.iter().all(|&t| t >= 1), "{kind:?}");
        }
    }

    #[test]
    fn restart_restores_chamulteon_state_and_is_cold_without_a_checkpoint() {
        let model = ApplicationModel::paper_benchmark();
        let stats: Vec<ServiceIntervalStats> = (0..3)
            .map(|_| ServiceIntervalStats {
                start: 0.0,
                duration: 60.0,
                arrivals: 900,
                completions: 900,
                utilization: 0.6,
                mean_response_time: Some(0.1),
                instances_end: 2,
                queue_length_end: 0,
            })
            .collect();
        let mut survivor = Driver::new(ScalerKind::ChamulteonFoxEc2, &model, 600.0);
        for k in 1..=8 {
            let _ = survivor.decide(60.0 * f64::from(k), 60.0, &stats, &[2, 2, 2], 0);
        }
        let checkpoint = survivor.snapshot_encoded().expect("chamulteon snapshots");
        // Warm restart: the restored driver carries the FOX ledger and
        // keeps deciding exactly like the survivor.
        let (mut warm, was_warm) = Driver::restart(
            ScalerKind::ChamulteonFoxEc2,
            &model,
            600.0,
            Obs::disabled(),
            Some(&checkpoint),
        );
        assert!(was_warm);
        assert_eq!(
            warm.billed_instance_seconds(480.0).map(f64::to_bits),
            survivor.billed_instance_seconds(480.0).map(f64::to_bits)
        );
        for k in 9..=14 {
            let t = 60.0 * f64::from(k);
            assert_eq!(
                warm.decide(t, 60.0, &stats, &[2, 2, 2], 0),
                survivor.decide(t, 60.0, &stats, &[2, 2, 2], 0),
                "cycle {k}"
            );
        }
        // Cold restart paths: no checkpoint, garbage, or a baseline kind.
        let (_, warm) =
            Driver::restart(ScalerKind::Chamulteon, &model, 600.0, Obs::disabled(), None);
        assert!(!warm);
        let (_, warm) = Driver::restart(
            ScalerKind::Chamulteon,
            &model,
            600.0,
            Obs::disabled(),
            Some("not a snapshot"),
        );
        assert!(!warm);
        let (react, warm) = Driver::restart(
            ScalerKind::React,
            &model,
            600.0,
            Obs::disabled(),
            Some(&checkpoint),
        );
        assert!(!warm, "baselines have no checkpoint format");
        assert!(react.snapshot_encoded().is_none());
    }

    #[test]
    fn fox_driver_reports_billing() {
        let model = ApplicationModel::paper_benchmark();
        let mut d = Driver::new(ScalerKind::ChamulteonFoxEc2, &model, 600.0);
        let stats: Vec<ServiceIntervalStats> = (0..3)
            .map(|_| ServiceIntervalStats {
                start: 0.0,
                duration: 60.0,
                arrivals: 600,
                completions: 600,
                utilization: 0.5,
                mean_response_time: None,
                instances_end: 2,
                queue_length_end: 0,
            })
            .collect();
        let _ = d.decide(60.0, 60.0, &stats, &[2, 2, 2], 0);
        assert!(d.billed_instance_seconds(60.0).is_some());
        let plain = Driver::new(ScalerKind::React, &model, 600.0);
        assert!(plain.billed_instance_seconds(60.0).is_none());
    }
}
