//! Uniform driving of the five auto-scalers (plus ablation variants).

use chamulteon::{ChamulteonConfig, ChargingModel};
use chamulteon_demand::{MonitoringSample, RollingDemandEstimator};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_scalers::{Adapt, AutoScaler, Hist, IndependentScalers, React, Reg};
use chamulteon_sim::ServiceIntervalStats;

/// Which auto-scaler to run in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerKind {
    /// The paper's contribution, both cycles enabled.
    Chamulteon,
    /// Ablation: reactive cycle only.
    ChamulteonReactiveOnly,
    /// Ablation: proactive cycle only.
    ChamulteonProactiveOnly,
    /// Chamulteon with the FOX cost reviewer under EC2 hourly billing.
    ChamulteonFoxEc2,
    /// Chamulteon with FOX under GCP per-minute billing.
    ChamulteonFoxGcp,
    /// React (Chieu et al. 2009), one instance per service.
    React,
    /// Adapt (Ali-Eldin et al. 2012), one instance per service.
    Adapt,
    /// Hist (Urgaonkar et al. 2008), one instance per service.
    Hist,
    /// Reg (Iqbal et al. 2011), one instance per service.
    Reg,
}

impl ScalerKind {
    /// The display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ScalerKind::Chamulteon => "chamulteon",
            ScalerKind::ChamulteonReactiveOnly => "cham-reactive",
            ScalerKind::ChamulteonProactiveOnly => "cham-proactive",
            ScalerKind::ChamulteonFoxEc2 => "cham-fox-ec2",
            ScalerKind::ChamulteonFoxGcp => "cham-fox-gcp",
            ScalerKind::React => "react",
            ScalerKind::Adapt => "adapt",
            ScalerKind::Hist => "hist",
            ScalerKind::Reg => "reg",
        }
    }

    /// The five columns of the paper's tables.
    pub fn paper_lineup() -> [ScalerKind; 5] {
        [
            ScalerKind::Chamulteon,
            ScalerKind::Adapt,
            ScalerKind::Hist,
            ScalerKind::Reg,
            ScalerKind::React,
        ]
    }
}

/// Rescales a measured utilization from the instances that produced it
/// (`instances_end`, the running count) to the instance count the sample
/// will report (`provisioned`, running + booting): the busy time
/// `U·n·T` must stay the measured one, otherwise instances that are still
/// booting would be counted as having worked and the demand estimate
/// would inflate exactly during scale-ups.
pub(crate) fn effective_utilization(stats: &ServiceIntervalStats, provisioned: u32) -> f64 {
    let running = stats.instances_end.max(1);
    let provisioned = provisioned.max(1);
    (stats.utilization * f64::from(running) / f64::from(provisioned)).clamp(0.0, 1.0)
}

/// A running scaler instance bound to an experiment.
pub(crate) enum Driver {
    Chamulteon(Box<chamulteon::Chamulteon>),
    Independent {
        multi: IndependentScalers,
        /// Shared demand estimation, "determined by LibReDE as used in
        /// Chamulteon" (§IV-C).
        estimators: Vec<RollingDemandEstimator>,
    },
}

impl Driver {
    pub(crate) fn new(kind: ScalerKind, model: &ApplicationModel, hist_bucket: f64) -> Driver {
        let demands: Vec<f64> = model
            .services()
            .iter()
            .map(|s| s.nominal_demand())
            .collect();
        let make_estimators = || {
            demands
                .iter()
                .map(|&d| RollingDemandEstimator::new(5, 0.4, d))
                .collect::<Vec<_>>()
        };
        let chamulteon_with = |config: ChamulteonConfig| {
            Driver::Chamulteon(Box::new(chamulteon::Chamulteon::new(model.clone(), config)))
        };
        match kind {
            ScalerKind::Chamulteon => chamulteon_with(ChamulteonConfig::default()),
            ScalerKind::ChamulteonReactiveOnly => {
                chamulteon_with(ChamulteonConfig::reactive_only())
            }
            ScalerKind::ChamulteonProactiveOnly => {
                chamulteon_with(ChamulteonConfig::proactive_only())
            }
            ScalerKind::ChamulteonFoxEc2 => Driver::Chamulteon(Box::new(
                chamulteon::Chamulteon::new(model.clone(), ChamulteonConfig::default())
                    .with_fox(ChargingModel::ec2_hourly()),
            )),
            ScalerKind::ChamulteonFoxGcp => Driver::Chamulteon(Box::new(
                chamulteon::Chamulteon::new(model.clone(), ChamulteonConfig::default())
                    .with_fox(ChargingModel::gcp_per_minute()),
            )),
            ScalerKind::React => Driver::Independent {
                estimators: make_estimators(),
                multi: IndependentScalers::homogeneous(demands, || Box::new(React::default())),
            },
            ScalerKind::Adapt => Driver::Independent {
                estimators: make_estimators(),
                multi: IndependentScalers::homogeneous(demands, || Box::new(Adapt::default())),
            },
            ScalerKind::Hist => Driver::Independent {
                estimators: make_estimators(),
                multi: IndependentScalers::homogeneous(demands, move || {
                    Box::new(Hist::with_bucket_length(hist_bucket)) as Box<dyn AutoScaler + Send>
                }),
            },
            ScalerKind::Reg => Driver::Independent {
                estimators: make_estimators(),
                multi: IndependentScalers::homogeneous(demands, || Box::new(Reg::default())),
            },
        }
    }

    /// Optionally preload arrival-rate history (only meaningful for
    /// Chamulteon's proactive cycle).
    pub(crate) fn preload_history(&mut self, interval: f64, rates: &[f64]) {
        if let Driver::Chamulteon(c) = self {
            c.preload_history(interval, rates);
        }
    }

    /// One scaling round: takes the interval stats of every service and
    /// the currently provisioned counts, returns the new absolute targets.
    pub(crate) fn decide(
        &mut self,
        time: f64,
        interval: f64,
        stats: &[ServiceIntervalStats],
        provisioned: &[u32],
        entry: usize,
    ) -> Vec<u32> {
        match self {
            Driver::Chamulteon(controller) => {
                let samples: Vec<MonitoringSample> = stats
                    .iter()
                    .zip(provisioned)
                    .map(|(s, &n)| {
                        MonitoringSample::new(
                            s.duration,
                            s.arrivals,
                            effective_utilization(s, n),
                            n.max(1),
                            s.mean_response_time.filter(|rt| *rt > 0.0),
                        )
                        .expect("simulator stats are valid")
                        .with_completions(s.completions)
                    })
                    .collect();
                controller.tick(time, &samples)
            }
            Driver::Independent { multi, estimators } => {
                for ((estimator, s), &n) in estimators.iter_mut().zip(stats).zip(provisioned) {
                    if let Ok(sample) = MonitoringSample::new(
                        s.duration,
                        s.arrivals,
                        effective_utilization(s, n),
                        n.max(1),
                        s.mean_response_time.filter(|rt| *rt > 0.0),
                    ) {
                        estimator.observe(sample.with_completions(s.completions));
                    }
                }
                let demands: Vec<f64> = estimators.iter().map(|e| e.current_demand()).collect();
                let deltas =
                    multi.decide(time, interval, stats[entry].arrivals, provisioned, &demands);
                provisioned
                    .iter()
                    .zip(&deltas)
                    .map(|(&n, &d)| (i64::from(n) + d).max(1) as u32)
                    .collect()
            }
        }
    }

    /// FOX-billed instance seconds, when applicable.
    pub(crate) fn billed_instance_seconds(&self, now: f64) -> Option<f64> {
        match self {
            Driver::Chamulteon(c) => c.billed_instance_seconds(now),
            Driver::Independent { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ScalerKind::Chamulteon.name(), "chamulteon");
        assert_eq!(ScalerKind::React.name(), "react");
        let lineup = ScalerKind::paper_lineup();
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[0], ScalerKind::Chamulteon);
    }

    #[test]
    fn drivers_construct_for_all_kinds() {
        let model = ApplicationModel::paper_benchmark();
        for kind in [
            ScalerKind::Chamulteon,
            ScalerKind::ChamulteonReactiveOnly,
            ScalerKind::ChamulteonProactiveOnly,
            ScalerKind::ChamulteonFoxEc2,
            ScalerKind::ChamulteonFoxGcp,
            ScalerKind::React,
            ScalerKind::Adapt,
            ScalerKind::Hist,
            ScalerKind::Reg,
        ] {
            let mut d = Driver::new(kind, &model, 600.0);
            let stats: Vec<ServiceIntervalStats> = (0..3)
                .map(|_| ServiceIntervalStats {
                    start: 0.0,
                    duration: 60.0,
                    arrivals: 600,
                    completions: 600,
                    utilization: 0.5,
                    mean_response_time: Some(0.1),
                    instances_end: 2,
                    queue_length_end: 0,
                })
                .collect();
            let targets = d.decide(60.0, 60.0, &stats, &[2, 2, 2], 0);
            assert_eq!(targets.len(), 3, "{kind:?}");
            assert!(targets.iter().all(|&t| t >= 1), "{kind:?}");
        }
    }

    #[test]
    fn fox_driver_reports_billing() {
        let model = ApplicationModel::paper_benchmark();
        let mut d = Driver::new(ScalerKind::ChamulteonFoxEc2, &model, 600.0);
        let stats: Vec<ServiceIntervalStats> = (0..3)
            .map(|_| ServiceIntervalStats {
                start: 0.0,
                duration: 60.0,
                arrivals: 600,
                completions: 600,
                utilization: 0.5,
                mean_response_time: None,
                instances_end: 2,
                queue_length_end: 0,
            })
            .collect();
        let _ = d.decide(60.0, 60.0, &stats, &[2, 2, 2], 0);
        assert!(d.billed_instance_seconds(60.0).is_some());
        let plain = Driver::new(ScalerKind::React, &model, 600.0);
        assert!(plain.billed_instance_seconds(60.0).is_none());
    }
}
