//! Graph-scale decision runners: one full proactive cycle at 10 / 100 /
//! 1000 services, legacy-vs-optimized-vs-sharded.
//!
//! The paper evaluates a 3-tier chain; ROADMAP item 2 asks what a decision
//! cycle costs on production-sized graphs. This module provides the three
//! comparable decision paths the `graph-scale` bench subcommand times:
//!
//! * [`proactive_decisions_legacy`] — the pre-arena implementation kept as
//!   the **sequential baseline**: it re-runs Kahn's algorithm on every
//!   call, walks the nested-`Vec` graph, and answers every capacity solve
//!   with an individual locked cache lookup (exactly the seed shape of
//!   `core::algorithm`).
//! * `chamulteon::algorithm::proactive_decisions_cached` — the optimized
//!   path: precompiled arena order, per-stage solve batches answered by
//!   hoisted corner evaluation.
//! * [`proactive_decisions_sharded`] — the optimized path with each
//!   stage's solve batch sharded across
//!   [`parallel_map`](crate::pool::parallel_map) worker threads and merged
//!   back in index order.
//!
//! All three produce **bit-identical targets** for the same inputs: they
//! walk the same canonical topological order, accumulate forwarded rates
//! in the same sequence, and answer every solve at the same quantized
//! bucket corner (the legacy path through the memo map, the optimized
//! paths by evaluating the closed form at that corner directly — a memo
//! entry is exactly that evaluation). The bench binary asserts this
//! agreement at runtime on every measured configuration;
//! [`decisions_agree`] is the non-panicking check it uses.
//!
//! This module is decision-path code (xtask `DECISION_PATH_MODULES`): it
//! is panic-free and clock-free — all timing lives in the
//! `chamulteon-exp` binary, the only module allowed to read `Instant`.

use crate::pool::parallel_map;
use chamulteon::algorithm::{proactive_decisions_cached, proactive_decisions_staged, SizingCell};
use chamulteon::ChamulteonConfig;
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::CapacityCache;

/// Minimum number of solve cells in a stage before
/// [`proactive_decisions_sharded`] fans the batch out to worker threads.
///
/// The utilization solver is closed-form (~tens of nanoseconds per cell),
/// so a scoped-thread dispatch only pays for itself on very wide stages;
/// below this width the sharded path degrades to the plain batched call.
/// The machinery matters for pluggable solvers that are actually expensive
/// (Erlang response-time quantiles), and the threshold keeps the fast
/// solver honest instead of hiding thread-spawn overhead in the results.
pub const SHARD_MIN_CELLS: usize = 256;

/// The seed implementation of Algorithm 1's cached decision pass, kept as
/// the benchmark's sequential baseline: re-sorts the graph topologically
/// **on every call**, walks the nested adjacency lists, and issues one
/// locked cache lookup per sized service. Bit-identical to
/// `proactive_decisions_cached` — the canonical order and the memoized
/// solver answers are the same — it just does strictly more bookkeeping
/// per call.
pub fn proactive_decisions_legacy(
    cache: &CapacityCache,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> Vec<u32> {
    let n = model.service_count();
    let demands: Vec<f64> = (0..n)
        .map(|i| {
            estimated_demands
                .get(i)
                .copied()
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| model.service(i).nominal_demand())
        })
        .collect();
    let mut targets: Vec<u32> = (0..n)
        .map(|i| {
            current_instances
                .get(i)
                .copied()
                .unwrap_or_else(|| model.service(i).initial_instances())
                .max(1)
        })
        .collect();
    // The legacy cost being measured: a fresh Kahn sort per decision call.
    let order = model
        .graph()
        .topological_order()
        .unwrap_or_else(|| (0..n).collect());
    let mut offered = vec![0.0; n];
    if let Some(slot) = offered.get_mut(model.entry()) {
        *slot = forecast_entry_rate.max(0.0);
    }
    for &node in &order {
        let spec = model.service(node);
        let current = targets[node].max(1);
        let rate = offered[node].max(0.0);
        let demand = demands[node].max(0.0);
        let rho = rate * demand / f64::from(current);
        let desired = if rho >= config.rho_upper || rho < config.rho_lower {
            cache.min_instances_for_utilization(rate, demand, config.rho_target)
        } else {
            current
        };
        targets[node] = desired.clamp(spec.min_instances(), spec.max_instances());
        let capacity = f64::from(targets[node]) / demands[node];
        let completed = offered[node].min(capacity);
        for &(to, multiplicity) in model.graph().calls_from(node) {
            offered[to] += completed * multiplicity;
        }
    }
    if config.backpressure_enabled {
        legacy_backpressure(
            cache,
            model,
            forecast_entry_rate,
            &demands,
            &mut targets,
            config,
        );
    }
    targets
}

/// The seed backpressure epilogue: recomputes visit ratios from the graph
/// on every call (the optimized path reads them from the arena cache).
fn legacy_backpressure(
    cache: &CapacityCache,
    model: &ApplicationModel,
    entry_rate: f64,
    demands: &[f64],
    targets: &mut [u32],
    config: &ChamulteonConfig,
) {
    let ratios = model.graph().visit_ratios(model.entry());
    let mut achievable = entry_rate.max(0.0);
    let mut bottlenecked = false;
    for (i, spec) in model.services().iter().enumerate() {
        if ratios[i] <= 0.0 {
            continue;
        }
        let offered_local = entry_rate.max(0.0) * ratios[i];
        let max_capacity = f64::from(spec.max_instances()) / demands[i];
        if targets[i] == spec.max_instances() && offered_local > max_capacity * config.rho_upper {
            achievable = achievable.min(max_capacity * config.rho_target / ratios[i]);
            bottlenecked = true;
        }
    }
    if !bottlenecked || achievable >= entry_rate {
        return;
    }
    for (i, spec) in model.services().iter().enumerate() {
        let local = achievable * ratios[i];
        let current = targets[i].max(1);
        let rho = local.max(0.0) * demands[i].max(0.0) / f64::from(current);
        let desired = if rho >= config.rho_upper || rho < config.rho_lower {
            cache.min_instances_for_utilization(
                local.max(0.0),
                demands[i].max(0.0),
                config.rho_target,
            )
        } else {
            current
        };
        let resized = desired.clamp(spec.min_instances(), spec.max_instances());
        targets[i] = targets[i].min(resized.max(spec.min_instances()));
    }
}

/// The staged decision pass with each stage's solve batch sharded across
/// up to `threads` worker threads.
///
/// Stages below [`SHARD_MIN_CELLS`] unique cells (or `threads <= 1`) run
/// as a single batched cache call. Wider stages are split into
/// `threads` contiguous chunks solved concurrently via
/// [`parallel_map`](crate::pool::parallel_map), whose results come back
/// **in input order** — so the flattened answer vector is exactly what the
/// single-threaded batch would return, and the targets stay bit-identical
/// to both sequential paths regardless of thread scheduling: each solve is
/// a pure corner evaluation of its cell, with no shared state at all.
pub fn proactive_decisions_sharded(
    cache: &CapacityCache,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
    threads: usize,
) -> Vec<u32> {
    let corner = cache.utilization_corner_solver(config.rho_target);
    proactive_decisions_staged(
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |cells: &[SizingCell], solved: &mut Vec<u32>| {
            if threads > 1 && cells.len() >= SHARD_MIN_CELLS {
                let chunk_len = cells.len().div_ceil(threads).max(1);
                let chunks: Vec<&[SizingCell]> = cells.chunks(chunk_len).collect();
                let answered: Vec<Vec<u32>> = parallel_map(&chunks, threads, |_, part| {
                    part.iter()
                        .map(|c| corner.solve(c.arrival_rate, c.service_demand))
                        .collect()
                });
                solved.clear();
                solved.extend(answered.into_iter().flatten());
            } else {
                solved.clear();
                solved.reserve(cells.len());
                solved.extend(
                    cells
                        .iter()
                        .map(|c| corner.solve(c.arrival_rate, c.service_demand)),
                );
            }
        },
    )
}

/// Which decision implementation a cycle run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CyclePath {
    /// [`proactive_decisions_legacy`]: per-call re-sort, per-service
    /// locked lookups.
    Legacy,
    /// `proactive_decisions_cached`: arena order, per-stage batched
    /// corner evaluation.
    Batched,
    /// [`proactive_decisions_sharded`] with the given worker count.
    Sharded(usize),
}

impl CyclePath {
    /// Stable lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            CyclePath::Legacy => "legacy",
            CyclePath::Batched => "batched",
            CyclePath::Sharded(_) => "sharded",
        }
    }
}

/// Runs one full proactive cycle — the controller's forecast-horizon loop:
/// each step takes the previous step's targets as the current deployment
/// and decides for the next forecast rate — and returns the final targets.
///
/// Demand estimates are left to the model's nominal values (the fallback
/// both decision paths share), and the deployment starts from each
/// service's initial instance count, so a cycle is a pure function of
/// `(model, entry_rates, config)` plus the cache contents.
pub fn run_proactive_cycle_path(
    cache: &CapacityCache,
    model: &ApplicationModel,
    entry_rates: &[f64],
    config: &ChamulteonConfig,
    path: CyclePath,
) -> Vec<u32> {
    let mut current: Vec<u32> = model
        .services()
        .iter()
        .map(chamulteon_perfmodel::ServiceSpec::initial_instances)
        .collect();
    for &rate in entry_rates {
        current = match path {
            CyclePath::Legacy => {
                proactive_decisions_legacy(cache, model, rate, &[], &current, config)
            }
            CyclePath::Batched => {
                proactive_decisions_cached(cache, model, rate, &[], &current, config)
            }
            CyclePath::Sharded(threads) => {
                proactive_decisions_sharded(cache, model, rate, &[], &current, config, threads)
            }
        };
    }
    current
}

/// The deterministic forecast-rate schedule the graph-scale bench drives
/// through one cycle: a ramp from 70% to 130% of `base` over `horizon`
/// steps, so each step re-sizes (the rates move enough to leave the hold
/// band) and the cycle exercises the solve path, not just the band check.
pub fn cycle_rates(base: f64, horizon: usize) -> Vec<f64> {
    let span = horizon.max(1);
    (0..horizon)
        .map(|step| {
            let fraction = to_f64(step) / to_f64(span);
            base * (0.7 + 0.6 * fraction)
        })
        .collect()
}

/// `usize → f64` for small step counts, without a bare cast on the
/// decision path.
fn to_f64(x: usize) -> f64 {
    u32::try_from(x).map(f64::from).unwrap_or(f64::MAX)
}

/// Non-panicking bit-identity check between two decision vectors — the
/// runtime assertion the bench binary reports (and fails its exit code
/// on) instead of panicking inside decision-path code.
pub fn decisions_agree(a: &[u32], b: &[u32]) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use chamulteon_perfmodel::{topology, TopologyFamily};

    fn config() -> ChamulteonConfig {
        ChamulteonConfig::default()
    }

    #[test]
    fn legacy_matches_optimized_on_paper_benchmark() {
        let model = ApplicationModel::paper_benchmark();
        let cache = CapacityCache::new();
        for &rate in &[0.0, 33.9, 100.0, 999.0] {
            let legacy =
                proactive_decisions_legacy(&cache, &model, rate, &[], &[1, 1, 1], &config());
            let batched =
                proactive_decisions_cached(&cache, &model, rate, &[], &[1, 1, 1], &config());
            assert_eq!(legacy, batched, "rate {rate}");
        }
    }

    #[test]
    fn all_three_paths_agree_across_families() {
        for family in TopologyFamily::ALL {
            let model = topology::model(family, 60, 11).expect("valid model");
            let cache = CapacityCache::new();
            let rates = cycle_rates(400.0, 6);
            let legacy =
                run_proactive_cycle_path(&cache, &model, &rates, &config(), CyclePath::Legacy);
            let batched =
                run_proactive_cycle_path(&cache, &model, &rates, &config(), CyclePath::Batched);
            let sharded =
                run_proactive_cycle_path(&cache, &model, &rates, &config(), CyclePath::Sharded(4));
            assert!(decisions_agree(&legacy, &batched), "{}", family.name());
            assert!(decisions_agree(&batched, &sharded), "{}", family.name());
        }
    }

    #[test]
    fn sharded_forces_wide_batches_through_the_pool() {
        // A graph wide enough that some stage's pending-solve batch
        // exceeds SHARD_MIN_CELLS and genuinely fans out; either way the
        // result must match the batched path bit for bit.
        let model = topology::model(TopologyFamily::ScaleFree, 600, 5).expect("valid model");
        let cache_a = CapacityCache::new();
        let cache_b = CapacityCache::new();
        let batched = proactive_decisions_cached(&cache_a, &model, 5000.0, &[], &[], &config());
        let sharded = proactive_decisions_sharded(&cache_b, &model, 5000.0, &[], &[], &config(), 4);
        assert_eq!(batched, sharded);
    }

    #[test]
    fn cycle_rates_ramp_and_length() {
        let rates = cycle_rates(100.0, 12);
        assert_eq!(rates.len(), 12);
        assert!((rates[0] - 70.0).abs() < 1e-9);
        assert!(rates.last().copied().unwrap_or(0.0) > rates[0]);
    }

    #[test]
    fn backpressure_paths_agree() {
        // A capped mid-tier forces the backpressure epilogue in both
        // implementations.
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("ui", 0.059, 1, 500, 1)
            .service("validation", 0.1, 1, 500, 1)
            .service("data", 0.04, 1, 3, 1)
            .call("ui", "validation", 1.0)
            .call("validation", "data", 1.0)
            .entry("ui")
            .build()
            .expect("valid model");
        let cfg = ChamulteonConfig::with_backpressure();
        let cache = CapacityCache::new();
        let legacy = proactive_decisions_legacy(&cache, &model, 1000.0, &[], &[1, 1, 1], &cfg);
        let batched = proactive_decisions_cached(&cache, &model, 1000.0, &[], &[1, 1, 1], &cfg);
        let sharded = proactive_decisions_sharded(&cache, &model, 1000.0, &[], &[1, 1, 1], &cfg, 4);
        assert_eq!(legacy, batched);
        assert_eq!(batched, sharded);
    }
}
