//! The measurement loop and scoring.

use crate::drivers::{Driver, ScalerKind};
use chamulteon::{DegradationLog, DegradationReason, RetryPolicy};
use chamulteon_metrics::{
    adaptation_rate_per_hour, demand_curves_with_cache, elasticity_metrics, instance_seconds,
    ScalerReport, StepFn,
};
use chamulteon_obs::{ActuationOutcome, Event, EventKind, Obs};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::min_instances_for_utilization;
use chamulteon_queueing::CapacityCache;
use chamulteon_sim::{
    DeploymentProfile, DesSimulation, FaultPlan, HybridConfig, ObservedSample, RecoveryPolicy,
    SimError, Simulation, SimulationConfig, SimulationResult, SloPolicy, SupplyChange,
};
use chamulteon_workload::LoadTrace;

/// Which simulation core executes an experiment.
///
/// Every core presents the same `ObservedSample`/`SimulationResult`
/// surface, so the measurement loop, the scalers and the scoring run
/// unmodified on either; the default everywhere is the fixed-step engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CoreKind {
    /// The fixed-step engine — the seed measurement substrate, with VM
    /// pool and fork support.
    #[default]
    FixedStep,
    /// The event-driven core in pure-DES mode (bit-exact with the
    /// fixed-step engine on flat deployments).
    EventDriven,
    /// The event-driven core with the hybrid fluid-flow switch armed.
    Hybrid(HybridConfig),
}

/// Either simulation core behind the one dispatch surface the
/// measurement loop uses. Both variants are boxed: each engine carries
/// per-service state (and the event core a request slab and event heap)
/// that would otherwise bloat every `RunState` the enum sits in.
#[derive(Clone)]
pub enum SimCore {
    /// The fixed-step engine.
    Fixed(Box<Simulation>),
    /// The event-driven core (pure or hybrid, per its config).
    Des(Box<DesSimulation>),
}

impl SimCore {
    /// Builds the requested core over the same model/trace/config.
    pub fn new(
        kind: CoreKind,
        model: &ApplicationModel,
        trace: &LoadTrace,
        config: SimulationConfig,
    ) -> Self {
        match kind {
            CoreKind::FixedStep => SimCore::Fixed(Box::new(Simulation::new(model, trace, config))),
            CoreKind::EventDriven => {
                SimCore::Des(Box::new(DesSimulation::new(model, trace, config)))
            }
            CoreKind::Hybrid(hybrid) => SimCore::Des(Box::new(DesSimulation::new(
                model,
                trace,
                config.with_hybrid(hybrid),
            ))),
        }
    }

    /// See [`Simulation::run_until`].
    pub fn run_until(&mut self, t: f64) -> Result<(), SimError> {
        match self {
            SimCore::Fixed(sim) => sim.run_until(t),
            SimCore::Des(sim) => sim.run_until(t),
        }
    }

    /// See [`Simulation::observe_interval`].
    pub fn observe_interval(&self, index: usize) -> Option<Vec<Option<ObservedSample>>> {
        match self {
            SimCore::Fixed(sim) => sim.observe_interval(index),
            SimCore::Des(sim) => sim.observe_interval(index),
        }
    }

    /// See [`Simulation::controller_crash_at`].
    pub fn controller_crash_at(&mut self, cycle: usize, time: f64) -> bool {
        match self {
            SimCore::Fixed(sim) => sim.controller_crash_at(cycle, time),
            SimCore::Des(sim) => sim.controller_crash_at(cycle, time),
        }
    }

    /// See [`Simulation::provisioned`].
    pub fn provisioned(&self, service: usize) -> u32 {
        match self {
            SimCore::Fixed(sim) => sim.provisioned(service),
            SimCore::Des(sim) => sim.provisioned(service),
        }
    }

    /// See [`Simulation::set_supply`].
    pub fn set_supply(&mut self, service: usize, count: u32) -> Result<(), SimError> {
        match self {
            SimCore::Fixed(sim) => sim.set_supply(service, count),
            SimCore::Des(sim) => sim.set_supply(service, count),
        }
    }

    /// See [`Simulation::scale_to`].
    pub fn scale_to(&mut self, service: usize, target: u32) -> Result<(), SimError> {
        match self {
            SimCore::Fixed(sim) => sim.scale_to(service, target),
            SimCore::Des(sim) => sim.scale_to(service, target),
        }
    }

    /// See [`Simulation::fork_with_fault_plan`]. The event-driven core
    /// does not fork; robustness-grid callers fall back to a
    /// from-scratch run.
    pub fn fork_with_fault_plan(&self, plan: FaultPlan) -> Result<SimCore, SimError> {
        match self {
            SimCore::Fixed(sim) => sim
                .fork_with_fault_plan(plan)
                .map(|forked| SimCore::Fixed(Box::new(forked))),
            SimCore::Des(sim) => sim
                .fork_with_fault_plan(plan)
                .map(|forked| SimCore::Des(Box::new(forked))),
        }
    }

    /// Events the event-driven core has processed; `None` on the
    /// fixed-step engine, which has no event counter.
    pub fn events_processed(&self) -> Option<u64> {
        match self {
            SimCore::Fixed(_) => None,
            SimCore::Des(sim) => Some(sim.events_processed()),
        }
    }

    /// See [`Simulation::finish`].
    pub fn finish(self) -> SimulationResult {
        match self {
            SimCore::Fixed(sim) => sim.finish(),
            SimCore::Des(sim) => sim.finish(),
        }
    }
}

/// One measurement scenario — everything Table II–V vary: the trace, the
/// deployment (Docker vs. VM provisioning delays), the scaling interval
/// and the experiment duration.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Scenario name for table titles.
    pub name: String,
    /// The load-intensity profile driving the experiment.
    pub trace: LoadTrace,
    /// The application under test.
    pub model: ApplicationModel,
    /// Provisioning delays (Docker vs. VM).
    pub profile: DeploymentProfile,
    /// SLO policy for request accounting.
    pub slo: SloPolicy,
    /// Scaling (and monitoring) interval in seconds — 60 s for Docker,
    /// 120 s for VMs in the paper.
    pub scaling_interval: f64,
    /// Simulation seed (experiments are deterministic in it).
    pub seed: u64,
    /// Number of warmup "days" of history preloaded into proactive
    /// scalers (the paper's two days of historical data).
    pub warmup_days: usize,
    /// Hist's schedule bucket length in seconds.
    pub hist_bucket: f64,
}

/// The outcome of driving one scaler through one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Raw simulation result (supply timelines, request accounting).
    pub result: SimulationResult,
    /// Scored report (elasticity metrics, ς, SLO, Apdex).
    pub report: ScalerReport,
    /// Ground-truth demand curves used for scoring, one per service.
    pub demand: Vec<StepFn>,
    /// FOX-billed instance seconds, when the driver had FOX attached.
    pub billed_instance_seconds: Option<f64>,
}

/// An [`ExperimentOutcome`] plus the record of every degraded decision —
/// the return type of [`run_experiment_with_faults`].
#[derive(Debug, Clone)]
pub struct FaultedOutcome {
    /// The scored experiment, exactly as for a clean run.
    pub outcome: ExperimentOutcome,
    /// Every rung of the degradation ladder the scaler (and the actuation
    /// retry loop) took during the run.
    pub degradation: DegradationLog,
}

/// Runs one auto-scaler through one experiment and scores it.
///
/// The loop follows the paper's setup: the application starts sized for
/// the initial load, then every `scaling_interval` the scaler receives the
/// monitoring tuple of the last interval and its decisions are applied
/// with the deployment profile's provisioning delays.
pub fn run_experiment(spec: &ExperimentSpec, kind: ScalerKind) -> ExperimentOutcome {
    run_experiment_with_faults(spec, kind, None, &RetryPolicy::no_retries()).outcome
}

/// [`run_experiment`] on an explicitly chosen simulation core — the
/// entry point the `des-scale` bench uses to drive the same scalers and
/// scoring through the event-driven core (pure or hybrid) instead of the
/// fixed-step engine.
pub fn run_experiment_on(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    core: CoreKind,
) -> ExperimentOutcome {
    let cache = CapacityCache::new();
    finalize_run(
        init_run_observed_on(spec, kind, None, &Obs::disabled(), core),
        spec,
        &RetryPolicy::no_retries(),
        &cache,
    )
    .outcome
}

/// Like [`run_experiment`], but with an optional [`FaultPlan`] injecting
/// monitoring, actuation and instance faults, and a [`RetryPolicy`]
/// governing how failed scaling commands are retried (with backoff time
/// advancing the simulation clock, capped so retries never cross into the
/// next scaling interval).
///
/// With `fault_plan = None` and [`RetryPolicy::no_retries`] this is
/// numerically identical to the clean run: the scaler sees the same
/// observations (faithful copies of the interval truth) and no actuation
/// ever fails. The injected-fault record is available on
/// `outcome.result.fault_log`; the scaler's degraded decisions are in
/// `degradation`.
pub fn run_experiment_with_faults(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
    retry: &RetryPolicy,
) -> FaultedOutcome {
    let cache = CapacityCache::new();
    run_experiment_with_faults_cached(spec, kind, fault_plan, retry, &cache)
}

/// Like [`run_experiment_with_faults`], but with a [`RecoveryPolicy`]
/// governing how the scaler comes back from injected controller crashes
/// (`FaultKind::ControllerCrash` windows in the plan): under
/// [`RecoveryPolicy::Checkpoint`] the harness snapshots the controller
/// every `cadence` cycles and a crashed controller restores from the
/// latest checkpoint; under [`RecoveryPolicy::ColdRestart`] the
/// replacement starts from scratch. Independent baselines have no
/// checkpoint format and always restart cold. With no controller-crash
/// windows the outcome is bit-identical to
/// [`run_experiment_with_faults`]: snapshots are pure reads and no
/// restart ever happens.
pub fn run_experiment_recovered(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
    retry: &RetryPolicy,
    recovery: RecoveryPolicy,
) -> FaultedOutcome {
    let cache = CapacityCache::new();
    let mut state = init_run(spec, kind, fault_plan);
    state.recovery = recovery;
    finalize_run(state, spec, retry, &cache)
}

/// [`run_experiment_with_faults`] with a trace/metrics sink attached:
/// every control-loop event (cycle starts, forecasts, conflict
/// resolutions, per-service decision provenance, actuation outcomes,
/// injected faults) flows into `obs`. With a disabled sink this is the
/// plain runner; with any sink the outcome is bit-identical to the
/// uninstrumented run (pinned by the `obs_identity` proptest).
pub fn run_experiment_observed(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
    retry: &RetryPolicy,
    obs: &Obs,
) -> FaultedOutcome {
    let cache = CapacityCache::new();
    finalize_run(
        init_run_observed(spec, kind, fault_plan, obs),
        spec,
        retry,
        &cache,
    )
}

/// [`run_experiment_with_faults`] scoring its demand curves through the
/// given capacity cache, so grid runners can share one warm cache across
/// many runs of the same spec. Results are independent of cache sharing:
/// every cached lookup evaluates the solver at the quantization-bucket
/// corner, a pure function of the inputs.
pub(crate) fn run_experiment_with_faults_cached(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
    retry: &RetryPolicy,
    cache: &CapacityCache,
) -> FaultedOutcome {
    finalize_run(init_run(spec, kind, fault_plan), spec, retry, cache)
}

/// A benchmark run paused between scaling intervals: the simulation, the
/// scaler driver, the harness's degradation record and the next interval
/// index. Cloning a `RunState` is a checkpoint — the robustness grid runs
/// the clean prefix once, clones it, and forks each faulted variant from
/// the clone instead of replaying the prefix from scratch.
#[derive(Clone)]
pub(crate) struct RunState {
    sim: SimCore,
    driver: Driver,
    kind: ScalerKind,
    harness_log: DegradationLog,
    /// Trace/metrics sink shared with the driver; disabled on plain runs.
    obs: Obs,
    /// 1-based index of the next scaling interval to process; past
    /// `interval_count` (or `usize::MAX` after a degraded break) the
    /// measurement loop is done.
    next_k: usize,
    /// How a controller crash injected by the fault plan is recovered
    /// from; [`RecoveryPolicy::ColdRestart`] (the default) also means no
    /// checkpoints are ever taken, keeping crash-free runs bit-identical
    /// to the pre-recovery harness.
    recovery: RecoveryPolicy,
    /// The latest checkpoint: the cycle it was taken after and the
    /// encoded controller snapshot.
    checkpoint: Option<(u64, String)>,
}

/// Number of scaling intervals a spec's measurement loop processes.
pub(crate) fn interval_count(spec: &ExperimentSpec) -> usize {
    (spec.trace.duration() / spec.scaling_interval).ceil() as usize
}

/// The latest interval index `k` whose boundary `k·Δ` lies strictly
/// before the fault windows' opening time `0.25·D` — the checkpoint from
/// which a faulted run can be forked bit-identically.
pub(crate) fn checkpoint_interval(spec: &ExperimentSpec) -> usize {
    let start = 0.25 * spec.trace.duration();
    let delta = spec.scaling_interval;
    if !(delta > 0.0) || !(start > 0.0) {
        return 0;
    }
    let mut k = (start / delta).floor() as usize;
    while k > 0 && k as f64 * delta >= start {
        k -= 1;
    }
    if k as f64 * delta >= start {
        0
    } else {
        k
    }
}

/// Builds the simulation, initial placement, driver and warmup history —
/// everything up to the first scaling interval.
pub(crate) fn init_run(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
) -> RunState {
    init_run_observed(spec, kind, fault_plan, &Obs::disabled())
}

/// [`init_run`] with a trace/metrics sink handed to the driver and kept
/// on the run state for the harness's own actuation/fault events.
pub(crate) fn init_run_observed(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
    obs: &Obs,
) -> RunState {
    init_run_observed_on(spec, kind, fault_plan, obs, CoreKind::FixedStep)
}

/// [`init_run_observed`] on an explicitly chosen simulation core.
pub(crate) fn init_run_observed_on(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    fault_plan: Option<FaultPlan>,
    obs: &Obs,
    core: CoreKind,
) -> RunState {
    let nominal: Vec<f64> = spec
        .model
        .services()
        .iter()
        .map(|s| s.nominal_demand())
        .collect();

    let mut config = SimulationConfig::new(spec.profile.clone(), spec.slo, spec.seed)
        .with_monitoring_interval(spec.scaling_interval);
    if let Some(plan) = fault_plan {
        config = config.with_fault_plan(plan);
    }
    let mut sim = SimCore::new(core, &spec.model, &spec.trace, config);

    // Fair initial placement: size every tier for the trace's initial rate
    // at a moderate utilization (every competitor starts identically).
    let rate0 = spec.trace.rate_at(0.0);
    let visit_ratios0 = spec.model.visit_ratios();
    for (s, (&demand, &visits)) in nominal.iter().zip(&visit_ratios0).enumerate() {
        let n0 = min_instances_for_utilization(rate0 * visits, demand, 0.6);
        let _ = sim.set_supply(s, n0); // s < service_count by construction
    }

    let mut driver = Driver::new_observed(kind, &spec.model, spec.hist_bucket, obs.clone());

    // Warmup history for the proactive cycle: the same compressed day
    // repeated, at scaling-interval resolution.
    if spec.warmup_days > 0 {
        if let Ok(day) = spec.trace.resample(spec.scaling_interval) {
            let mut rates = Vec::with_capacity(day.len() * spec.warmup_days);
            for _ in 0..spec.warmup_days {
                rates.extend_from_slice(day.rates());
            }
            driver.preload_history(spec.scaling_interval, &rates);
        }
    }

    RunState {
        sim,
        driver,
        kind,
        harness_log: DegradationLog::new(),
        obs: obs.clone(),
        next_k: 1,
        recovery: RecoveryPolicy::ColdRestart,
        checkpoint: None,
    }
}

/// Forks a checkpointed clean run into a faulted continuation: the
/// simulation is forked under the plan (bit-identical to a from-scratch
/// faulted run, see [`Simulation::fork_with_fault_plan`]) and the driver
/// and harness log are cloned. `None` when the fork preconditions do not
/// hold (checkpoint at or past the window opening) — callers fall back to
/// a from-scratch run.
pub(crate) fn fork_run(state: &RunState, plan: FaultPlan) -> Option<RunState> {
    let sim = state.sim.fork_with_fault_plan(plan).ok()?;
    Some(RunState {
        sim,
        driver: state.driver.clone(),
        kind: state.kind,
        harness_log: state.harness_log.clone(),
        obs: state.obs.clone(),
        next_k: state.next_k,
        recovery: state.recovery,
        checkpoint: state.checkpoint.clone(),
    })
}

/// Advances the measurement loop up to and including interval
/// `through_k` (clamped to the spec's interval count). Processing is
/// identical to the original single-pass loop; a degraded break (clock
/// error or trace ending mid-interval) marks the run done.
pub(crate) fn advance_run(
    state: &mut RunState,
    spec: &ExperimentSpec,
    retry: &RetryPolicy,
    through_k: usize,
) {
    let service_count = spec.model.service_count();
    let entry = spec.model.entry();
    let last = through_k.min(interval_count(spec));
    while state.next_k <= last {
        let k = state.next_k;
        let t = (k as f64 * spec.scaling_interval).min(spec.trace.duration());
        if state.sim.run_until(t).is_err() {
            state.next_k = usize::MAX; // unreachable with a monotone schedule; degrade, don't panic
            return;
        }
        let Some(observed) = state.sim.observe_interval(k - 1) else {
            state.next_k = usize::MAX; // trace ended mid-interval
            return;
        };
        // An injected controller crash lands at the start of this cycle:
        // the scaler process dies and its replacement takes over the
        // decision — restored from the latest checkpoint when one exists,
        // cold otherwise. The deployment itself keeps running.
        if state.sim.controller_crash_at(k, t) {
            let (driver, warm) = Driver::restart(
                state.kind,
                &spec.model,
                spec.hist_bucket,
                state.obs.clone(),
                state.checkpoint.as_ref().map(|(_, text)| text.as_str()),
            );
            state.driver = driver;
            let checkpoint_cycle = if warm {
                state.checkpoint.as_ref().map(|&(cycle, _)| cycle)
            } else {
                state.checkpoint = None; // unusable (or absent) checkpoint
                None
            };
            state.obs.metrics().increment("controller.crashes");
            state.obs.metrics().increment(if warm {
                "controller.restores.warm"
            } else {
                "controller.restores.cold"
            });
            state.obs.record_with(|| {
                Event::cycle(
                    t,
                    EventKind::Restore {
                        cycle: u64::try_from(k).unwrap_or(u64::MAX),
                        cold: !warm,
                        checkpoint_cycle,
                    },
                )
            });
        }
        let provisioned: Vec<u32> = (0..service_count)
            .map(|s| state.sim.provisioned(s))
            .collect();
        let targets =
            state
                .driver
                .decide_observed(t, spec.scaling_interval, &observed, &provisioned, entry);
        // Retries may not cross into the next scaling interval.
        let deadline = ((k + 1) as f64 * spec.scaling_interval - 1e-6)
            .min(spec.trace.duration())
            .max(t);
        let mut clock = t;
        for (s, &target) in targets.iter().enumerate() {
            let mut attempt = 0u32;
            loop {
                state.obs.metrics().increment("actuation.attempts");
                match state.sim.scale_to(s, target) {
                    Ok(()) => {
                        state.obs.record_with(|| {
                            Event::service(
                                clock,
                                s,
                                EventKind::Actuation {
                                    target,
                                    outcome: ActuationOutcome::Applied,
                                    attempt,
                                },
                            )
                        });
                        break;
                    }
                    Err(_) if attempt + 1 < retry.max_attempts && clock < deadline => {
                        state.obs.metrics().increment("actuation.retries");
                        state.obs.metrics().increment("degradation.events");
                        state.obs.record_with(|| {
                            Event::service(
                                clock,
                                s,
                                EventKind::Actuation {
                                    target,
                                    outcome: ActuationOutcome::Retried,
                                    attempt,
                                },
                            )
                        });
                        let reason = DegradationReason::ActuationRetried {
                            service: s,
                            attempt,
                        };
                        state.obs.record_with(|| {
                            Event::service(
                                clock,
                                s,
                                EventKind::Degradation {
                                    code: reason.as_code().to_owned(),
                                    attempt: reason.attempt(),
                                },
                            )
                        });
                        state.harness_log.record(clock, reason);
                        clock = (clock + retry.backoff(attempt).max(0.0)).min(deadline);
                        if state.sim.run_until(clock).is_err() {
                            break;
                        }
                        attempt += 1;
                    }
                    Err(_) => {
                        state.obs.metrics().increment("actuation.abandoned");
                        state.obs.metrics().increment("degradation.events");
                        state.obs.record_with(|| {
                            Event::service(
                                clock,
                                s,
                                EventKind::Actuation {
                                    target,
                                    outcome: ActuationOutcome::Abandoned,
                                    attempt,
                                },
                            )
                        });
                        let reason = DegradationReason::ActuationAbandoned { service: s };
                        state.obs.record_with(|| {
                            Event::service(
                                clock,
                                s,
                                EventKind::Degradation {
                                    code: reason.as_code().to_owned(),
                                    attempt: reason.attempt(),
                                },
                            )
                        });
                        state.harness_log.record(clock, reason);
                        break;
                    }
                }
            }
        }
        // Checkpoint cadence: after every `cadence`-th cycle the driver's
        // controller state is snapshotted (a pure read — pinned by the
        // core snapshot tests), so the next crash restores from here.
        let every = state.recovery.checkpoint_every();
        if every > 0 && k.is_multiple_of(every) {
            if let Some(text) = state.driver.snapshot_encoded() {
                let bytes = u64::try_from(text.len()).unwrap_or(u64::MAX);
                let cycle = u64::try_from(k).unwrap_or(u64::MAX);
                state.obs.metrics().increment("controller.checkpoints");
                state
                    .obs
                    .record_with(|| Event::cycle(t, EventKind::Checkpoint { cycle, bytes }));
                state.checkpoint = Some((cycle, text));
            }
        }
        state.next_k = k + 1;
    }
}

/// Runs any remaining intervals, drains the simulation to the end of the
/// trace and scores the outcome. Demand curves are derived through
/// `cache`, so repeated scoring of the same spec reuses the capacity
/// solves.
pub(crate) fn finalize_run(
    mut state: RunState,
    spec: &ExperimentSpec,
    retry: &RetryPolicy,
    cache: &CapacityCache,
) -> FaultedOutcome {
    advance_run(&mut state, spec, retry, usize::MAX - 1);
    let RunState {
        mut sim,
        mut driver,
        kind,
        harness_log,
        obs,
        ..
    } = state;
    let _ = sim.run_until(spec.trace.duration()); // monotone: t_final >= every loop t
    let billed = driver.billed_instance_seconds(spec.trace.duration());
    let mut degradation = driver.take_degradation();
    degradation.merge(harness_log);
    let result = sim.finish();
    if obs.tracing() {
        for record in &result.fault_log {
            obs.record_with(|| {
                Event::service(
                    record.time,
                    record.service,
                    EventKind::Fault {
                        code: record.kind.as_code().to_owned(),
                    },
                )
            });
        }
    }
    obs.metrics().count(
        "faults.injected",
        u64::try_from(result.fault_log.len()).unwrap_or(u64::MAX),
    );

    // Scoring.
    let service_count = spec.model.service_count();
    let nominal: Vec<f64> = spec
        .model
        .services()
        .iter()
        .map(|s| s.nominal_demand())
        .collect();
    let visit_ratios = spec.model.visit_ratios();
    let max_instances = spec
        .model
        .services()
        .iter()
        .map(|s| s.max_instances())
        .max()
        .unwrap_or(200);
    let demand = demand_curves_with_cache(
        cache,
        &spec.trace,
        &nominal,
        &visit_ratios,
        spec.slo.response_time_target,
        max_instances,
    );
    let supplies: Vec<StepFn> = (0..service_count)
        .map(|s| supply_step_fn(&result.supply[s]))
        .collect();
    let per_service = supplies
        .iter()
        .enumerate()
        .map(|(s, supply)| elasticity_metrics(&demand[s], supply, spec.trace.duration()))
        .collect();
    let horizon = spec.trace.duration();
    let instance_hours: f64 = supplies
        .iter()
        .map(|s| instance_seconds(s, horizon))
        .sum::<f64>()
        / 3600.0;
    let adaptations_per_hour: f64 = supplies
        .iter()
        .map(|s| adaptation_rate_per_hour(s, horizon))
        .sum();
    let report = ScalerReport {
        scaler: kind.name().to_owned(),
        per_service,
        slo_violations: result.slo_violation_percent(),
        apdex: result.apdex_percent(),
        instance_hours,
        adaptations_per_hour,
    };
    FaultedOutcome {
        outcome: ExperimentOutcome {
            result,
            report,
            demand,
            billed_instance_seconds: billed,
        },
        degradation,
    }
}

/// Converts a simulator supply timeline into a metrics step function.
pub fn supply_step_fn(timeline: &[SupplyChange]) -> StepFn {
    StepFn::new(timeline.iter().map(|c| (c.time, c.running)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setups::smoke_test;

    #[test]
    fn event_driven_core_reproduces_the_fixed_step_experiment_bit_exactly() {
        // The whole measurement loop — scaler decisions included — run on
        // the event-driven core must produce the identical
        // SimulationResult: same observations in, same commands out, same
        // request accounting.
        let spec = smoke_test();
        let fixed = run_experiment(&spec, ScalerKind::Chamulteon);
        let des = run_experiment_on(&spec, ScalerKind::Chamulteon, CoreKind::EventDriven);
        assert_eq!(fixed.result, des.result);
        assert_eq!(fixed.billed_instance_seconds, des.billed_instance_seconds);
    }

    #[test]
    fn hybrid_core_runs_the_experiment_loop() {
        // With the switch armed the loop still completes and conserves
        // requests; at smoke-test loads the thresholds may or may not
        // engage — the contract here is the unmodified driver surface.
        let spec = smoke_test();
        let outcome = run_experiment_on(
            &spec,
            ScalerKind::Chamulteon,
            CoreKind::Hybrid(HybridConfig::default()),
        );
        let sent: u64 = outcome.result.sent_per_second.iter().sum();
        assert_eq!(
            sent,
            outcome.result.completed + outcome.result.in_flight_at_end
        );
        assert!(outcome.result.completed > 0);
    }

    #[test]
    fn checkpoint_interval_is_strictly_before_fault_windows() {
        let spec = smoke_test();
        let k = checkpoint_interval(&spec);
        let start = 0.25 * spec.trace.duration();
        assert!((k as f64) * spec.scaling_interval < start, "k = {k}");
        assert!(((k + 1) as f64) * spec.scaling_interval >= start, "k = {k}");
    }

    #[test]
    fn split_run_matches_single_pass() {
        // Advancing in two arbitrary chunks and finalizing is identical to
        // the one-shot runner.
        let spec = smoke_test();
        let retry = chamulteon::RetryPolicy::default();
        let cache = CapacityCache::new();
        let mut state = init_run(&spec, ScalerKind::Adapt, None);
        advance_run(&mut state, &spec, &retry, 3);
        advance_run(&mut state, &spec, &retry, 11);
        let split = finalize_run(state, &spec, &retry, &cache);
        let single = run_experiment_with_faults(&spec, ScalerKind::Adapt, None, &retry);
        assert_eq!(split.outcome.result, single.outcome.result);
        assert_eq!(split.outcome.report, single.outcome.report);
        assert_eq!(split.degradation, single.degradation);
    }

    #[test]
    fn smoke_experiment_runs_all_scalers() {
        let spec = smoke_test();
        for kind in ScalerKind::paper_lineup() {
            let outcome = run_experiment(&spec, kind);
            assert!(outcome.result.total_requests() > 0, "{kind:?}");
            assert_eq!(outcome.report.per_service.len(), 3, "{kind:?}");
            assert!(outcome.report.apdex >= 0.0 && outcome.report.apdex <= 100.0);
            assert!(outcome.report.slo_violations >= 0.0);
            assert_eq!(outcome.demand.len(), 3);
        }
    }

    #[test]
    fn experiments_are_deterministic() {
        let spec = smoke_test();
        let a = run_experiment(&spec, ScalerKind::Chamulteon);
        let b = run_experiment(&spec, ScalerKind::Chamulteon);
        assert_eq!(a.result, b.result);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn chamulteon_beats_static_underprovisioning() {
        // Sanity: on the smoke test, chamulteon keeps SLO violations modest.
        let outcome = run_experiment(&smoke_test(), ScalerKind::Chamulteon);
        assert!(
            outcome.report.slo_violations < 35.0,
            "violations {}%",
            outcome.report.slo_violations
        );
    }

    #[test]
    fn recovered_run_without_crashes_matches_the_plain_runner() {
        // Checkpointing is a pure read: with no controller-crash windows
        // the recovered runner is bit-identical to the plain one.
        let spec = smoke_test();
        let retry = chamulteon::RetryPolicy::default();
        let recovered = run_experiment_recovered(
            &spec,
            ScalerKind::Chamulteon,
            None,
            &retry,
            chamulteon_sim::RecoveryPolicy::Checkpoint { cadence: 2 },
        );
        let plain = run_experiment_with_faults(&spec, ScalerKind::Chamulteon, None, &retry);
        assert_eq!(recovered.outcome.result, plain.outcome.result);
        assert_eq!(recovered.outcome.report, plain.outcome.report);
        assert_eq!(recovered.degradation, plain.degradation);
    }

    #[test]
    fn controller_crashes_are_injected_and_recovered() {
        let spec = smoke_test();
        let retry = chamulteon::RetryPolicy::default();
        let plan = crate::robustness::FaultClass::ControllerCrashes.plan(
            spec.seed,
            spec.trace.duration(),
            spec.scaling_interval,
        );
        for recovery in [
            RecoveryPolicy::ColdRestart,
            RecoveryPolicy::Checkpoint { cadence: 1 },
        ] {
            let faulted = run_experiment_recovered(
                &spec,
                ScalerKind::Chamulteon,
                Some(plan.clone()),
                &retry,
                recovery,
            );
            let crashes = faulted
                .outcome
                .result
                .fault_log
                .iter()
                .filter(|r| r.kind.as_code() == "controller_crash")
                .count();
            assert_eq!(crashes, 2, "{recovery:?}");
            // Deterministic in the seed.
            let again = run_experiment_recovered(
                &spec,
                ScalerKind::Chamulteon,
                Some(plan.clone()),
                &retry,
                recovery,
            );
            assert_eq!(faulted.outcome.result, again.outcome.result);
        }
    }

    #[test]
    fn fox_variant_reports_cost() {
        let outcome = run_experiment(&smoke_test(), ScalerKind::ChamulteonFoxGcp);
        assert!(outcome.billed_instance_seconds.unwrap_or(0.0) > 0.0);
        let plain = run_experiment(&smoke_test(), ScalerKind::Chamulteon);
        assert!(plain.billed_instance_seconds.is_none());
    }
}
