//! Multi-tenant cluster benchmark: K Chamulteon controllers sharing one
//! instance budget through the [`ClusterArbiter`] and its cross-tenant
//! warm pool.
//!
//! Each tenant runs the full single-tenant measurement stack — its own
//! [`SimCore`] over a phase-offset diurnal trace and its own scaler
//! [`Driver`] — but instead of applying its per-service targets directly,
//! every scaling interval it aggregates them into one
//! [`TenantProposal`] and submits it to the shared arbiter. The arbiter
//! settles contention under the configured [`ArbitrationPolicy`], moves
//! still-paid releases into the warm pool, and hands back a granted total
//! the tenant must fit its services into (largest targets are trimmed
//! first, deterministically).
//!
//! The phase offsets are the point of the exercise: tenant `i`'s source
//! day is rotated by `i/K` of a day before compression, so one tenant's
//! peak decays exactly as the next one's builds — the traffic pattern
//! under which FOX-style warm transfers pay off, because the instances
//! tenant A releases are still paid when tenant B wants them.
//!
//! The arbiter models the *cluster ledger* (lease lifetimes, billing
//! attribution, the budget invariant); each tenant's simulator models its
//! *serving capacity* under the deployment's provisioning delays. Warm
//! draws therefore change who pays, not how fast capacity arrives —
//! folding the warm pool into provisioning latency is future work.

use crate::drivers::{Driver, ScalerKind};
use crate::experiment::SimCore;
use chamulteon::{ArbitrationPolicy, ChargingModel, ClusterArbiter, ClusterEvent, TenantProposal};
use chamulteon_obs::{Event, EventKind, Obs, WarmAction};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::min_instances_for_utilization;
use chamulteon_sim::RecoveryPolicy;
use chamulteon_sim::{DeploymentProfile, SimulationConfig, SloPolicy};
use chamulteon_workload::generators::{
    bibsonomy_like, peak_rate_for_total_instances, wikipedia_like,
};
use chamulteon_workload::LoadTrace;

/// Seconds in the synthetic source day before compression (mirrors
/// `setups`).
const SOURCE_DAY: f64 = 86_400.0;
/// Source sampling step of the generators (mirrors `setups`).
const SOURCE_STEP: f64 = 60.0;
/// The paper's per-service demands (mirrors `setups`).
const DEMANDS: [f64; 3] = [0.059, 0.1, 0.04];
/// Target utilization translating "peak instances" into a peak rate
/// (mirrors `setups`).
const SIZING_RHO: f64 = 0.8;

/// One multi-tenant cluster scenario: K tenants, one budget, one policy.
#[derive(Debug, Clone)]
pub struct MultiTenantSpec {
    /// Scenario name for reports.
    pub name: String,
    /// Number of tenants sharing the cluster.
    pub tenants: usize,
    /// How the arbiter resolves scale-up contention.
    pub policy: ArbitrationPolicy,
    /// The cluster's charging model (drives warm-pool economics).
    pub charging: ChargingModel,
    /// Global instance budget across all tenants (running + warm).
    pub budget: u32,
    /// Experiment duration in seconds (one compressed source day).
    pub duration: f64,
    /// Scaling (and monitoring) interval in seconds.
    pub scaling_interval: f64,
    /// Per-tenant peak sizing: each tenant's trace is scaled so its own
    /// peak needs about this many instances.
    pub peak_instances: u32,
    /// Base seed; tenant `i` derives its trace from `seed + i`.
    pub seed: u64,
    /// Warmup "days" of history preloaded into each proactive scaler.
    pub warmup_days: usize,
    /// Hist's schedule bucket length in seconds.
    pub hist_bucket: f64,
}

impl MultiTenantSpec {
    /// A fast, contended scenario for tests and the CI smoke job: three
    /// tenants with offset peaks squeezed into 10 simulated minutes,
    /// sharing a budget of roughly 60% of their combined peak.
    pub fn smoke(policy: ArbitrationPolicy) -> MultiTenantSpec {
        MultiTenantSpec {
            name: "Multi-tenant smoke".into(),
            tenants: 3,
            policy,
            charging: ChargingModel::gcp_per_minute(),
            budget: 54, // ≈60% of 3 tenants × 30-instance peaks
            duration: 600.0,
            scaling_interval: 30.0,
            peak_instances: 30,
            seed: 11,
            warmup_days: 2,
            hist_bucket: 120.0,
        }
    }

    /// The full-size scenario: four tenants over one compressed hour at
    /// Table II scale, budget ≈70% of the combined peak.
    pub fn standard(policy: ArbitrationPolicy) -> MultiTenantSpec {
        MultiTenantSpec {
            name: "Multi-tenant cluster".into(),
            tenants: 4,
            policy,
            charging: ChargingModel::gcp_per_minute(),
            budget: 336, // ≈70% of 4 tenants × 120-instance peaks
            duration: 3_600.0,
            scaling_interval: 60.0,
            peak_instances: 120,
            seed: 12,
            warmup_days: 2,
            hist_bucket: 300.0,
        }
    }
}

/// One tenant's scored outcome of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant index.
    pub tenant: usize,
    /// The arbitration weight the tenant submitted every cycle.
    pub weight: f64,
    /// Sum of desired totals over all arbitration cycles.
    pub requested: u64,
    /// Sum of granted totals over all arbitration cycles.
    pub granted: u64,
    /// Instances satisfied from the warm pool.
    pub drawn_warm: u64,
    /// Fresh (cold) leases opened.
    pub opened_cold: u64,
    /// Still-paid releases parked into the warm pool.
    pub deposited: u64,
    /// Releases closed outright inside the release window.
    pub closed: u64,
    /// Billed instance-seconds attributed to this tenant (lease-origin
    /// attribution: transferred leases keep billing their opener).
    pub billed_instance_seconds: f64,
    /// SLO violation percentage of the tenant's own workload.
    pub slo_violations: f64,
    /// Apdex percentage of the tenant's own workload.
    pub apdex: f64,
}

/// The cluster-level outcome of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantOutcome {
    /// Scenario name.
    pub name: String,
    /// The arbitration policy that ran.
    pub policy: ArbitrationPolicy,
    /// Charging-model name.
    pub charging: String,
    /// The global instance budget.
    pub budget: u32,
    /// Largest `running + warm` the cluster ever held (≤ budget).
    pub peak_in_use: u32,
    /// Warm-pool draws across all tenants.
    pub warm_draws: u64,
    /// Warm-pool deposits across all tenants.
    pub warm_deposits: u64,
    /// Warm leases that expired undrawn.
    pub warm_expiries: u64,
    /// Per-tenant reports, indexed by tenant.
    pub tenants: Vec<TenantReport>,
}

impl MultiTenantOutcome {
    /// Total billed instance-seconds across all tenants.
    pub fn billed_total(&self) -> f64 {
        self.tenants.iter().map(|t| t.billed_instance_seconds).sum()
    }

    /// Renders the per-tenant table plus the cluster summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} — policy {}, charging {}, budget {}\n\
             {:>6} {:>7} {:>9} {:>9} {:>6} {:>6} {:>8} {:>7} {:>12} {:>7} {:>7}\n",
            self.name,
            self.policy.name(),
            self.charging,
            self.budget,
            "tenant",
            "weight",
            "requested",
            "granted",
            "warm",
            "cold",
            "deposit",
            "close",
            "billed_i_s",
            "slo%",
            "apdex",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "{:>6} {:>7.1} {:>9} {:>9} {:>6} {:>6} {:>8} {:>7} {:>12.0} {:>7.2} {:>7.1}\n",
                t.tenant,
                t.weight,
                t.requested,
                t.granted,
                t.drawn_warm,
                t.opened_cold,
                t.deposited,
                t.closed,
                t.billed_instance_seconds,
                t.slo_violations,
                t.apdex,
            ));
        }
        out.push_str(&format!(
            "cluster: peak in-use {}/{} — {} warm draws, {} deposits, {} expiries, \
             {:.0} billed instance-seconds total\n",
            self.peak_in_use,
            self.budget,
            self.warm_draws,
            self.warm_deposits,
            self.warm_expiries,
            self.billed_total(),
        ));
        out
    }

    /// Serializes the outcome as a JSON object (hand-rolled, like the
    /// conformance report — the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\":{},\"weight\":{},\"requested\":{},\"granted\":{},\
                     \"drawn_warm\":{},\"opened_cold\":{},\"deposited\":{},\"closed\":{},\
                     \"billed_instance_seconds\":{},\"slo_violations\":{},\"apdex\":{}}}",
                    t.tenant,
                    json_f64(t.weight),
                    t.requested,
                    t.granted,
                    t.drawn_warm,
                    t.opened_cold,
                    t.deposited,
                    t.closed,
                    json_f64(t.billed_instance_seconds),
                    json_f64(t.slo_violations),
                    json_f64(t.apdex),
                )
            })
            .collect();
        format!(
            "{{\"name\":{:?},\"policy\":{:?},\"charging\":{:?},\"budget\":{},\
             \"peak_in_use\":{},\"warm_draws\":{},\"warm_deposits\":{},\"warm_expiries\":{},\
             \"billed_total\":{},\"tenants\":[{}]}}",
            self.name,
            self.policy.name(),
            self.charging,
            self.budget,
            self.peak_in_use,
            self.warm_draws,
            self.warm_deposits,
            self.warm_expiries,
            json_f64(self.billed_total()),
            tenants.join(",")
        )
    }
}

/// Finite floats print as themselves; non-finite become `null` (JSON has
/// no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// One tenant's live state inside the measurement loop.
struct TenantRun {
    sim: SimCore,
    driver: Driver,
    weight: f64,
    /// Set when the tenant's trace ended mid-interval; it then stops
    /// proposing (the arbiter treats a silent tenant as holding).
    done: bool,
    requested: u64,
    granted: u64,
    drawn_warm: u64,
    opened_cold: u64,
    deposited: u64,
    closed: u64,
}

/// Builds tenant `index`'s trace: the shared source day rotated by
/// `index/K` of a day (so peaks are evenly staggered), compressed into
/// the experiment duration and scaled to the tenant's peak sizing.
/// Tenants alternate between the Wikipedia-like and BibSonomy-like
/// generators so the cluster mixes smooth and bursty shapes.
fn tenant_trace(spec: &MultiTenantSpec, index: usize) -> LoadTrace {
    let generator = if index.is_multiple_of(2) {
        wikipedia_like
    } else {
        bibsonomy_like
    };
    let day = generator(
        spec.seed.wrapping_add(index as u64),
        SOURCE_STEP,
        SOURCE_DAY,
    );
    let rotated = rotate_trace(&day, index, spec.tenants.max(1));
    let compressed = rotated.compress_to(spec.duration);
    let peak_rate = peak_rate_for_total_instances(spec.peak_instances, &DEMANDS, SIZING_RHO);
    compressed.scale_to_peak(peak_rate)
}

/// Rotates a trace left by `index/count` of its length, preserving step
/// and duration. Identity on a rotation of zero samples or a degenerate
/// trace.
fn rotate_trace(trace: &LoadTrace, index: usize, count: usize) -> LoadTrace {
    let len = trace.len();
    if len == 0 || count == 0 {
        return trace.clone();
    }
    let shift = (index * len / count) % len;
    if shift == 0 {
        return trace.clone();
    }
    let mut rates = Vec::with_capacity(len);
    rates.extend_from_slice(&trace.rates()[shift..]);
    rates.extend_from_slice(&trace.rates()[..shift]);
    // Same step and sample count as the input, so reconstruction cannot
    // fail; fall back to the unrotated trace rather than panic.
    LoadTrace::new(trace.step(), rates).unwrap_or_else(|_| trace.clone())
}

/// Builds one tenant's simulator and scaler, mirroring the single-tenant
/// harness init: fair initial placement at 60% utilization, then warmup
/// history for the proactive cycle.
fn init_tenant(
    spec: &MultiTenantSpec,
    model: &ApplicationModel,
    trace: &LoadTrace,
    index: usize,
    obs: &Obs,
) -> TenantRun {
    let config = SimulationConfig::new(
        DeploymentProfile::docker(),
        SloPolicy::default(),
        spec.seed.wrapping_add(100 + index as u64),
    )
    .with_monitoring_interval(spec.scaling_interval);
    let mut sim = SimCore::new(crate::experiment::CoreKind::FixedStep, model, trace, config);

    let rate0 = trace.rate_at(0.0);
    let visit_ratios = model.visit_ratios();
    for (s, (service, &visits)) in model.services().iter().zip(&visit_ratios).enumerate() {
        let n0 = min_instances_for_utilization(rate0 * visits, service.nominal_demand(), 0.6);
        let _ = sim.set_supply(s, n0); // s < service_count by construction
    }

    let mut driver =
        Driver::new_observed(ScalerKind::Chamulteon, model, spec.hist_bucket, obs.clone());
    if spec.warmup_days > 0 {
        if let Ok(day) = trace.resample(spec.scaling_interval) {
            let mut rates = Vec::with_capacity(day.len() * spec.warmup_days);
            for _ in 0..spec.warmup_days {
                rates.extend_from_slice(day.rates());
            }
            driver.preload_history(spec.scaling_interval, &rates);
        }
    }

    TenantRun {
        sim,
        driver,
        // Descending weights: tenant 0 is the highest-priority workload.
        weight: (spec.tenants.saturating_sub(index)) as f64,
        done: false,
        requested: 0,
        granted: 0,
        drawn_warm: 0,
        opened_cold: 0,
        deposited: 0,
        closed: 0,
    }
}

/// Trims per-service targets down to a granted total: while the sum
/// exceeds the grant, the largest target loses one instance (ties to the
/// lowest service index), so the cut lands where relative overshoot is
/// biggest and the result is deterministic.
fn fit_targets(targets: &mut [u32], granted: u32) {
    let mut total: u64 = targets.iter().map(|&t| u64::from(t)).sum();
    while total > u64::from(granted) {
        let mut best: Option<usize> = None;
        for (s, &t) in targets.iter().enumerate() {
            if t > 0 && best.is_none_or(|b| t > targets[b]) {
                best = Some(s);
            }
        }
        let Some(s) = best else {
            return; // all zero: nothing left to trim
        };
        targets[s] -= 1;
        total -= 1;
    }
}

/// Emits the arbiter's drained event log as `warm_transfer` observability
/// events and tallies the cluster-level warm-pool counters.
fn emit_cluster_events(
    events: &[ClusterEvent],
    obs: &Obs,
    draws: &mut u64,
    deposits: &mut u64,
    expiries: &mut u64,
) {
    for event in events {
        let mapped = match *event {
            ClusterEvent::Deposit {
                time,
                tenant,
                start,
                origin,
            } => {
                *deposits += 1;
                Some((time, WarmAction::Deposit, Some(tenant), origin, start, None))
            }
            ClusterEvent::Draw {
                time,
                tenant,
                start,
                origin,
            } => {
                *draws += 1;
                Some((time, WarmAction::Draw, Some(tenant), origin, start, None))
            }
            ClusterEvent::Expire {
                time,
                start,
                paid_until,
                origin,
            } => {
                *expiries += 1;
                Some((
                    time,
                    WarmAction::Expire,
                    None,
                    origin,
                    start,
                    Some(paid_until),
                ))
            }
            // Open/Close are ordinary lease lifecycle, already visible
            // through the arbitration verdict counts.
            ClusterEvent::Open { .. } | ClusterEvent::Close { .. } => None,
        };
        if let Some((time, action, tenant, origin, start, paid_until)) = mapped {
            obs.record_with(|| {
                Event::cycle(
                    time,
                    EventKind::WarmTransfer {
                        action,
                        tenant: tenant.and_then(|t| u32::try_from(t).ok()),
                        origin: u32::try_from(origin).unwrap_or(u32::MAX),
                        start,
                        paid_until,
                    },
                )
            });
        }
    }
}

/// One injected tenant-controller crash: at the start of arbitration
/// cycle `cycle` (1-based), tenant `tenant`'s controller process dies and
/// its replacement takes over the decision.
#[derive(Debug, Clone, Copy)]
pub struct TenantCrash {
    /// 1-based arbitration cycle the crash lands on.
    pub cycle: usize,
    /// The tenant whose controller crashes.
    pub tenant: usize,
}

/// Runs the multi-tenant measurement loop: every scaling interval each
/// live tenant decides its per-service targets, the aggregated desires go
/// through one arbitration cycle, and each tenant applies its targets
/// trimmed to the granted total. Deterministic in the spec.
pub fn run_multi_tenant(spec: &MultiTenantSpec, obs: &Obs) -> MultiTenantOutcome {
    run_multi_tenant_recovered(spec, obs, RecoveryPolicy::ColdRestart, None)
}

/// [`run_multi_tenant`] with crash recovery: under
/// [`RecoveryPolicy::Checkpoint`] the harness snapshots the crashed
/// tenant's controller *and* the cluster arbiter (lease books, warm pool,
/// billed ledger) every `cadence` cycles; an injected [`TenantCrash`]
/// then restores both from the latest checkpoint. Because the arbiter
/// snapshot carries the warm pool with original start times, a transfer
/// in flight at the crash is neither orphaned (its lease survives in the
/// restored pool) nor double-billed (the restored ledger is the one the
/// bill was already posted to). With no crash the outcome is
/// bit-identical to the plain run: snapshots are pure reads.
pub fn run_multi_tenant_recovered(
    spec: &MultiTenantSpec,
    obs: &Obs,
    recovery: RecoveryPolicy,
    crash: Option<TenantCrash>,
) -> MultiTenantOutcome {
    let model = ApplicationModel::paper_benchmark();
    let entry = model.entry();
    let service_count = model.service_count();

    let traces: Vec<LoadTrace> = (0..spec.tenants).map(|i| tenant_trace(spec, i)).collect();
    let mut runs: Vec<TenantRun> = traces
        .iter()
        .enumerate()
        .map(|(i, trace)| init_tenant(spec, &model, trace, i, obs))
        .collect();

    let mut arbiter = ClusterArbiter::new(
        spec.charging.clone(),
        spec.policy,
        spec.budget,
        spec.tenants,
    );
    let mut peak_in_use = 0u32;
    let mut warm_draws = 0u64;
    let mut warm_deposits = 0u64;
    let mut warm_expiries = 0u64;
    // Latest coordinator checkpoint under `RecoveryPolicy::Checkpoint`:
    // the cycle it was taken after, the arbiter snapshot (lease books,
    // warm pool, billed ledger) and every tenant's encoded controller.
    let mut checkpoint: Option<(u64, String, Vec<Option<String>>)> = None;

    let intervals = (spec.duration / spec.scaling_interval).ceil() as usize;
    for k in 1..=intervals {
        let t = (k as f64 * spec.scaling_interval).min(spec.duration);

        // An injected coordinator crash lands at the start of this cycle:
        // the tenant's controller dies with the arbiter's in-memory state.
        // With a checkpoint both are restored from it — the warm pool
        // comes back with its original start times, so in-flight
        // transfers stay attributed; without one the controller restarts
        // cold (the deployment itself keeps running either way).
        if let Some(plan) = crash {
            if plan.cycle == k && plan.tenant < runs.len() {
                let snapshot = checkpoint
                    .as_ref()
                    .and_then(|(_, _, drivers)| drivers.get(plan.tenant))
                    .cloned()
                    .flatten();
                let (driver, mut warm) = Driver::restart(
                    ScalerKind::Chamulteon,
                    &model,
                    spec.hist_bucket,
                    obs.clone(),
                    snapshot.as_deref(),
                );
                if let Some(run) = runs.get_mut(plan.tenant) {
                    run.driver = driver;
                }
                if let Some((_, arbiter_snapshot, _)) = checkpoint.as_ref() {
                    match ClusterArbiter::restore(arbiter_snapshot) {
                        Ok(restored) => arbiter = restored,
                        Err(_) => warm = false, // unusable checkpoint
                    }
                }
                let checkpoint_cycle = if warm {
                    checkpoint.as_ref().map(|&(cycle, ..)| cycle)
                } else {
                    None
                };
                obs.record_with(|| {
                    Event::cycle(
                        t,
                        EventKind::Restore {
                            cycle: u64::try_from(k).unwrap_or(u64::MAX),
                            cold: !warm,
                            checkpoint_cycle,
                        },
                    )
                });
            }
        }

        // Phase 1: every live tenant decides what it wants.
        let mut proposals: Vec<TenantProposal> = Vec::with_capacity(spec.tenants);
        let mut desires: Vec<(usize, Vec<u32>)> = Vec::with_capacity(spec.tenants);
        for (i, run) in runs.iter_mut().enumerate() {
            if run.done {
                continue;
            }
            if run.sim.run_until(t).is_err() {
                run.done = true; // unreachable with a monotone schedule
                continue;
            }
            let Some(observed) = run.sim.observe_interval(k - 1) else {
                run.done = true; // trace ended mid-interval
                continue;
            };
            let provisioned: Vec<u32> =
                (0..service_count).map(|s| run.sim.provisioned(s)).collect();
            let targets = run.driver.decide_observed(
                t,
                spec.scaling_interval,
                &observed,
                &provisioned,
                entry,
            );
            let desired = targets
                .iter()
                .fold(0u32, |total, &target| total.saturating_add(target));
            let held: u32 = provisioned
                .iter()
                .fold(0u32, |total, &n| total.saturating_add(n));
            // Marginal-gain proxy for the cost-greedy policy: how
            // under-provisioned the tenant is, weighted by its priority —
            // the deficit an extra instance would eat into.
            let slo_gain = f64::from(desired.saturating_sub(held)) * run.weight;
            proposals.push(TenantProposal {
                tenant: i,
                desired,
                weight: run.weight,
                slo_gain,
            });
            desires.push((i, targets));
        }

        // Phase 2: one arbitration cycle over the shared budget.
        let verdicts = arbiter.arbitrate(t, &proposals);
        peak_in_use = peak_in_use.max(arbiter.in_use());
        emit_cluster_events(
            &arbiter.take_events(),
            obs,
            &mut warm_draws,
            &mut warm_deposits,
            &mut warm_expiries,
        );

        // Phase 3: each tenant applies its targets under the grant.
        for (verdict, (tenant, targets)) in verdicts.iter().zip(desires.iter_mut()) {
            obs.record_with(|| {
                Event::cycle(
                    t,
                    EventKind::Arbitration {
                        tenant: u32::try_from(verdict.tenant).unwrap_or(u32::MAX),
                        policy: spec.policy.name().to_owned(),
                        requested: verdict.requested,
                        granted: verdict.granted,
                        drawn_warm: verdict.drawn_warm,
                        opened_cold: verdict.opened_cold,
                        deposited: verdict.deposited,
                        closed: verdict.closed,
                        in_use: arbiter.in_use(),
                        budget: spec.budget,
                    },
                )
            });
            let Some(run) = runs.get_mut(*tenant) else {
                continue;
            };
            run.requested += u64::from(verdict.requested);
            run.granted += u64::from(verdict.granted);
            run.drawn_warm += u64::from(verdict.drawn_warm);
            run.opened_cold += u64::from(verdict.opened_cold);
            run.deposited += u64::from(verdict.deposited);
            run.closed += u64::from(verdict.closed);
            fit_targets(targets, verdict.granted);
            for (s, &target) in targets.iter().enumerate() {
                // Actuation cannot fail without a fault plan; a failure
                // would simply leave the previous supply standing.
                let _ = run.sim.scale_to(s, target);
            }
        }

        // Checkpoint cadence: after every `cadence`-th cycle the
        // coordinator state — the arbiter and every controller — is
        // snapshotted (pure reads), so the next crash restores from here.
        let every = recovery.checkpoint_every();
        if every > 0 && k.is_multiple_of(every) {
            let drivers: Vec<Option<String>> = runs
                .iter()
                .map(|run| run.driver.snapshot_encoded())
                .collect();
            checkpoint = Some((
                u64::try_from(k).unwrap_or(u64::MAX),
                arbiter.snapshot(),
                drivers,
            ));
        }
    }

    // Finalization: drain each tenant's simulation and score it; billing
    // comes from the arbiter's origin-attributed ledger.
    let tenants: Vec<TenantReport> = runs
        .into_iter()
        .enumerate()
        .map(|(i, mut run)| {
            let _ = run.sim.run_until(spec.duration);
            let result = run.sim.finish();
            TenantReport {
                tenant: i,
                weight: run.weight,
                requested: run.requested,
                granted: run.granted,
                drawn_warm: run.drawn_warm,
                opened_cold: run.opened_cold,
                deposited: run.deposited,
                closed: run.closed,
                billed_instance_seconds: arbiter.billed_instance_seconds(i, spec.duration),
                slo_violations: result.slo_violation_percent(),
                apdex: result.apdex_percent(),
            }
        })
        .collect();

    MultiTenantOutcome {
        name: spec.name.clone(),
        policy: spec.policy,
        charging: spec.charging.name.clone(),
        budget: spec.budget,
        peak_in_use,
        warm_draws,
        warm_deposits,
        warm_expiries,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(policy: ArbitrationPolicy) -> MultiTenantOutcome {
        run_multi_tenant(&MultiTenantSpec::smoke(policy), &Obs::disabled())
    }

    #[test]
    fn smoke_run_respects_the_budget_and_bills_every_tenant() {
        let outcome = smoke(ArbitrationPolicy::WeightedFairShare);
        assert_eq!(outcome.tenants.len(), 3);
        assert!(outcome.peak_in_use <= outcome.budget);
        assert!(outcome.peak_in_use > 0, "cluster never held an instance");
        for t in &outcome.tenants {
            assert!(
                t.billed_instance_seconds > 0.0,
                "tenant {} was never billed",
                t.tenant
            );
            assert!(t.requested > 0, "tenant {} never proposed", t.tenant);
        }
    }

    #[test]
    fn contention_trims_grants_and_the_warm_pool_moves_leases() {
        let outcome = smoke(ArbitrationPolicy::StrictPriority);
        let requested: u64 = outcome.tenants.iter().map(|t| t.requested).sum();
        let granted: u64 = outcome.tenants.iter().map(|t| t.granted).sum();
        assert!(
            granted < requested,
            "budget {} never bound ({granted} of {requested} granted)",
            outcome.budget
        );
        // Offset peaks with a per-minute charging model: scale-downs park
        // still-paid leases, and later scale-ups must draw them.
        assert!(outcome.warm_deposits > 0, "no lease was ever parked warm");
        assert!(outcome.warm_draws > 0, "no warm lease was ever drawn");
    }

    #[test]
    fn runs_are_deterministic_in_the_spec() {
        let a = smoke(ArbitrationPolicy::CostGreedy);
        let b = smoke(ArbitrationPolicy::CostGreedy);
        assert_eq!(a.peak_in_use, b.peak_in_use);
        assert_eq!(a.warm_draws, b.warm_draws);
        assert_eq!(a.billed_total().to_bits(), b.billed_total().to_bits());
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(
                x.billed_instance_seconds.to_bits(),
                y.billed_instance_seconds.to_bits()
            );
            assert_eq!(x.granted, y.granted);
        }
    }

    #[test]
    fn policies_disagree_under_contention() {
        // Same workloads, same budget — the three policies must not all
        // produce the same grant split, or arbitration is vacuous.
        let grants: Vec<Vec<u64>> = ArbitrationPolicy::all()
            .iter()
            .map(|&p| smoke(p).tenants.iter().map(|t| t.granted).collect())
            .collect();
        assert!(
            grants[0] != grants[1] || grants[1] != grants[2],
            "all policies granted identically: {grants:?}"
        );
    }

    #[test]
    fn fit_targets_trims_largest_first_and_is_deterministic() {
        let mut targets = [5u32, 9, 7];
        fit_targets(&mut targets, 15);
        // Largest-first with ties to the lowest index levels the targets.
        assert_eq!(targets, [5, 5, 5]);
        assert_eq!(targets.iter().sum::<u32>(), 15);
        let mut zeroes = [0u32, 0];
        fit_targets(&mut zeroes, 0);
        assert_eq!(zeroes, [0, 0]);
        // Granted above the sum is a no-op.
        let mut under = [2u32, 3];
        fit_targets(&mut under, 99);
        assert_eq!(under, [2, 3]);
    }

    #[test]
    fn rotated_traces_keep_mass_and_shift_the_peak() {
        let day = wikipedia_like(7, SOURCE_STEP, SOURCE_DAY);
        let rotated = rotate_trace(&day, 1, 3);
        assert_eq!(rotated.len(), day.len());
        assert!((rotated.mean_rate() - day.mean_rate()).abs() < 1e-9 * day.mean_rate().abs());
        assert!((rotated.peak_rate() - day.peak_rate()).abs() < f64::EPSILON * day.peak_rate());
        // The rotation actually moved something.
        assert!(rotated.rates() != day.rates());
    }
}
