//! A std-only deterministic worker pool for independent benchmark cells.
//!
//! The lineup and robustness runners fan out over independent
//! (scaler × trace × fault-class) cells. Each cell is a pure function of
//! its inputs — the simulator draws every random number from per-run
//! seeds — so running cells on worker threads changes *when* a cell is
//! computed but never *what* it computes. [`parallel_map`] preserves that
//! guarantee structurally:
//!
//! * results are written into per-index slots and read back in input
//!   order, so the output order is independent of thread scheduling, and
//! * the closure receives the item by shared reference and must not
//!   mutate shared state, which the `Fn` bound enforces.
//!
//! No work-stealing library is used (the workspace is offline and
//! dependency-free by policy); a shared atomic cursor hands out the next
//! index, which is all the scheduling these long, coarse cells need.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible worker count for CPU-bound cells: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads and returns
/// the results **in input order**, regardless of which thread finished
/// which item when.
///
/// `f` is called exactly once per item in the common case; should a
/// result slot be unreadable (a poisoned lock after a worker panic), the
/// item is recomputed on the calling thread rather than panicking — `f`
/// must therefore be idempotent, which pure benchmark cells are.
///
/// With `threads <= 1` (or fewer than two items) everything runs on the
/// calling thread with no synchronization at all.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let result = f(i, item);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .ok()
                .flatten()
                // Poisoned or empty slot: recompute sequentially instead
                // of panicking (f is pure, so the value is identical).
                .unwrap_or_else(|| f(i, &items[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Uneven work so completion order differs from input order.
        let out = parallel_map(&items, 8, |i, &x| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let seq = parallel_map(&items, 1, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        let par = parallel_map(&items, 6, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        assert_eq!(seq, par);
    }

    #[test]
    fn each_item_computed_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..50).collect();
        let out = parallel_map(&items, 4, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
        assert_eq!(parallel_map(&[1u32, 2], 0, |_, &x| x), vec![1, 2]);
    }
}
