//! des-scale runners: the event-driven core on Wikipedia-day diurnal
//! traces at 10k / 100k / 1M req/s, pure-DES vs hybrid.
//!
//! ROADMAP's scale thread asks what the measurement substrate itself
//! costs at production load. This module prepares the cases the
//! `des-scale` bench subcommand times:
//!
//! * **comparison rows** — the same diurnal day, compressed to a bounded
//!   duration so the pure-DES run stays tractable, executed twice: once
//!   with every request an entity (pure DES) and once with the hybrid
//!   fluid switch armed (at these loads every station crosses the
//!   threshold immediately, so the run collapses to analytic drift plus
//!   monitoring events);
//! * **the headline row** — the *full* 86 400 s day at 1M req/s peak in
//!   hybrid mode, the configuration a pure request-level simulation
//!   cannot touch (≈10¹¹ request events).
//!
//! Both modes use the paper's 3-tier chain (demands 0.059 / 0.1 /
//! 0.04 s) provisioned statically for the peak at ρ = 0.7, and both
//! report the integer conservation identity `sent = completed +
//! in-flight` — the hybrid run is only comparable because it conserves
//! requests exactly.
//!
//! This module is decision-path code (xtask `DECISION_PATH_MODULES`): it
//! is panic-free and clock-free — all timing lives in the
//! `chamulteon-exp` binary, the only module allowed to read `Instant`.

use chamulteon_perfmodel::{ApplicationModel, ApplicationModelBuilder};
use chamulteon_queueing::capacity::min_instances_for_utilization;
use chamulteon_sim::{DeploymentProfile, DesSimulation, HybridConfig, SimulationConfig, SloPolicy};
use chamulteon_workload::{generators, LoadTrace};

/// Instance ceiling for the scale models — far above what 1M req/s
/// needs (~143k instances on the 0.1 s tier at ρ = 0.7).
const MAX_INSTANCES: u32 = 10_000_000;

/// Target utilization of the static peak provisioning.
const PROVISION_RHO: f64 = 0.7;

/// One des-scale configuration: a diurnal trace at `peak` req/s,
/// executed on the event-driven core, optionally with the hybrid switch.
#[derive(Debug, Clone)]
pub struct DesScaleCase {
    /// Row label (`"10k"`, `"100k"`, `"1M"`, `"1M-day"`).
    pub label: String,
    /// Peak arrival rate of the scaled Wikipedia-like day, req/s.
    pub peak: f64,
    /// Duration the day is compressed to, seconds (86 400 = uncompressed).
    pub duration: f64,
    /// Hybrid switch configuration; `None` runs pure DES.
    pub hybrid: Option<HybridConfig>,
    /// Simulation/trace seed.
    pub seed: u64,
}

/// What one des-scale run measured (wall-clock is the binary's job).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesScaleMeasures {
    /// Requests admitted (sum of the per-second sent accounting).
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests still in flight at the end of the run.
    pub in_flight: u64,
    /// Events the core processed (heap pops, including monitoring).
    pub events: u64,
    /// Station regime switches (0 in pure-DES mode).
    pub regime_switches: u64,
    /// Mean end-to-end response time of completed requests, seconds.
    pub mean_response: f64,
    /// SLO violation percentage over completed requests.
    pub slo_violation_percent: f64,
    /// Whether `sent = completed + in-flight` held exactly.
    pub conserved: bool,
}

/// The paper's 3-tier chain with bounds wide enough for 1M req/s.
fn scale_model() -> Option<ApplicationModel> {
    ApplicationModelBuilder::new()
        .service("ui", 0.059, 1, MAX_INSTANCES, 1)
        .service("validation", 0.1, 1, MAX_INSTANCES, 1)
        .service("data", 0.04, 1, MAX_INSTANCES, 1)
        .call("ui", "validation", 1.0)
        .call("validation", "data", 1.0)
        .entry("ui")
        .build()
        .ok()
}

/// The synthetic Wikipedia day scaled to `peak` req/s and compressed to
/// `duration` seconds (86 400 leaves it uncompressed).
fn day_trace(seed: u64, peak: f64, duration: f64) -> LoadTrace {
    let day = generators::wikipedia_like(seed, 60.0, 86_400.0).scale_to_peak(peak);
    if duration < 86_400.0 {
        day.compress_to(duration)
    } else {
        day
    }
}

/// The hybrid switch configuration the scale rows use: the default
/// threshold (32 Erlangs) — at 10k req/s and above every station's
/// offered load is hundreds of Erlangs, so the switch engages on the
/// first monitoring tick's evaluation and the run stays aggregate.
pub fn scale_hybrid() -> HybridConfig {
    HybridConfig::default()
}

/// The pure-vs-hybrid comparison rows: one compressed day per peak load.
/// `compare_duration` bounds the pure-DES work (the hybrid runs are
/// essentially free at any duration).
pub fn comparison_cases(seed: u64, compare_duration: f64) -> Vec<(DesScaleCase, DesScaleCase)> {
    [(10_000.0, "10k"), (100_000.0, "100k"), (1_000_000.0, "1M")]
        .iter()
        .map(|&(peak, label)| {
            let pure = DesScaleCase {
                label: label.to_owned(),
                peak,
                duration: compare_duration,
                hybrid: None,
                seed,
            };
            let hybrid = DesScaleCase {
                hybrid: Some(scale_hybrid()),
                ..pure.clone()
            };
            (pure, hybrid)
        })
        .collect()
}

/// The headline row: the full 86 400 s day at 1M req/s peak, hybrid.
pub fn headline_case(seed: u64) -> DesScaleCase {
    DesScaleCase {
        label: "1M-day".to_owned(),
        peak: 1_000_000.0,
        duration: 86_400.0,
        hybrid: Some(scale_hybrid()),
        seed,
    }
}

/// Runs one des-scale case on the event-driven core and returns what it
/// measured; `None` when the model cannot be built (statically
/// impossible with the constants above — kept fallible so this module
/// stays panic-free).
pub fn run_des_scale_case(case: &DesScaleCase) -> Option<DesScaleMeasures> {
    let model = scale_model()?;
    let trace = day_trace(case.seed, case.peak, case.duration);
    let mut config =
        SimulationConfig::new(DeploymentProfile::docker(), SloPolicy::default(), case.seed);
    if let Some(hybrid) = case.hybrid {
        config = config.with_hybrid(hybrid);
    }
    let mut sim = DesSimulation::new(&model, &trace, config);

    // Static peak provisioning at ρ = 0.7 — the bench measures the core,
    // not a scaler, so capacity never binds.
    let visits = model.visit_ratios();
    for (s, spec) in model.services().iter().enumerate() {
        let rate = case.peak * visits.get(s).copied().unwrap_or(1.0);
        let n = min_instances_for_utilization(rate, spec.nominal_demand(), PROVISION_RHO);
        sim.set_supply(s, n).ok()?;
    }

    sim.run_until(trace.duration()).ok()?;
    let events = sim.events_processed();
    let regime_switches = sim.regime_switches();
    let result = sim.finish();

    let sent: u64 = result.sent_per_second.iter().sum();
    Some(DesScaleMeasures {
        sent,
        completed: result.completed,
        in_flight: result.in_flight_at_end,
        events,
        regime_switches,
        mean_response: result.mean_response_time(),
        slo_violation_percent: result.slo_violation_percent(),
        conserved: sent == result.completed + result.in_flight_at_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_cases_pair_pure_with_hybrid() {
        let cases = comparison_cases(7, 120.0);
        assert_eq!(cases.len(), 3);
        for (pure, hybrid) in &cases {
            assert!(pure.hybrid.is_none());
            assert!(hybrid.hybrid.is_some());
            assert_eq!(pure.peak, hybrid.peak);
            assert_eq!(pure.seed, hybrid.seed);
        }
        assert_eq!(headline_case(7).duration, 86_400.0);
    }

    #[test]
    fn small_scale_case_conserves_and_counts_events() {
        // A miniature variant of the 10k row, cheap enough for debug CI.
        let case = DesScaleCase {
            label: "mini".to_owned(),
            peak: 500.0,
            duration: 60.0,
            hybrid: None,
            seed: 3,
        };
        let m = run_des_scale_case(&case).expect("measures");
        assert!(m.conserved, "{m:?}");
        assert!(m.sent > 0);
        assert!(m.events > m.sent, "each request needs several events");
        assert_eq!(m.regime_switches, 0);

        // A 60 s compressed day starts at the diurnal trough, below the
        // default 32-Erlang threshold — arm a 1-Erlang threshold so the
        // switch engages at t = 0 regardless of diurnal phase (the real
        // rows run long enough to cross the default threshold).
        let hybrid = DesScaleCase {
            hybrid: Some(HybridConfig::new(1.0, 0.5, 64)),
            ..case
        };
        let h = run_des_scale_case(&hybrid).expect("measures");
        assert!(h.conserved, "{h:?}");
        assert!(h.regime_switches > 0);
        assert!(
            h.events < m.events / 10,
            "hybrid {} vs pure {}",
            h.events,
            m.events
        );
    }
}
