//! The paper's four experiment setups (§IV-A/B, §V-B/C), ready to run.
//!
//! All sizes follow the paper:
//!
//! * **Wikipedia / Docker** — one compressed day lasting 1 h, 60 s scaling
//!   interval, peak demand sized to ≈120 containers in total;
//! * **Wikipedia / VM** — the same day stretched over 6 h, 120 s interval,
//!   VM provisioning delays, peak ≈20 VMs;
//! * **BibSonomy small / large** — the burstier trace at peaks of ≈60 and
//!   ≈120 containers.

use crate::experiment::ExperimentSpec;
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_sim::{DeploymentProfile, SloPolicy};
use chamulteon_workload::generators::{
    bibsonomy_like, peak_rate_for_total_instances, wikipedia_like,
};
use chamulteon_workload::LoadTrace;

/// Seconds in the synthetic source day before compression.
const SOURCE_DAY: f64 = 86_400.0;
/// Source sampling step of the generators.
const SOURCE_STEP: f64 = 60.0;
/// The paper's per-service demands (UI, validation, data).
const DEMANDS: [f64; 3] = [0.059, 0.1, 0.04];
/// Target utilization used to translate "peak instances" into a peak rate.
const SIZING_RHO: f64 = 0.8;

fn paper_model() -> ApplicationModel {
    ApplicationModel::paper_benchmark()
}

/// Builds a compressed, rescaled trace: one synthetic day squeezed into
/// `experiment_duration` seconds, peak-sized so the whole application needs
/// about `peak_instances` instances at the top.
fn build_trace(
    generator: fn(u64, f64, f64) -> LoadTrace,
    seed: u64,
    experiment_duration: f64,
    peak_instances: u32,
) -> LoadTrace {
    let day = generator(seed, SOURCE_STEP, SOURCE_DAY);
    let compressed = day.compress_to(experiment_duration);
    let peak_rate = peak_rate_for_total_instances(peak_instances, &DEMANDS, SIZING_RHO);
    compressed.scale_to_peak(peak_rate)
}

/// Table II scenario: Wikipedia-like trace, Docker deployment, 1 h, 60 s
/// interval, peak ≈120 containers.
pub fn wikipedia_docker() -> ExperimentSpec {
    ExperimentSpec {
        name: "Wikipedia trace (Docker)".into(),
        trace: build_trace(wikipedia_like, 20131201, 3_600.0, 120),
        model: paper_model(),
        profile: DeploymentProfile::docker(),
        slo: SloPolicy::default(),
        scaling_interval: 60.0,
        seed: 1,
        warmup_days: 2,
        hist_bucket: 300.0, // "hour of day" scaled into the compressed hour
    }
}

/// Table III scenario: Wikipedia-like trace, VM deployment, 6 h, 120 s
/// interval, peak ≈20 VMs.
pub fn wikipedia_vm() -> ExperimentSpec {
    ExperimentSpec {
        name: "Wikipedia trace (VM)".into(),
        trace: build_trace(wikipedia_like, 20131201, 6.0 * 3_600.0, 20),
        model: paper_model(),
        profile: DeploymentProfile::vm(),
        slo: SloPolicy::default(),
        scaling_interval: 120.0,
        seed: 2,
        warmup_days: 2,
        hist_bucket: 1_800.0,
    }
}

/// Table IV scenario: BibSonomy-like trace, Docker, small setup
/// (peak ≈60 containers).
pub fn bibsonomy_small() -> ExperimentSpec {
    ExperimentSpec {
        name: "BibSonomy trace (small setup)".into(),
        trace: build_trace(bibsonomy_like, 20170401, 3_600.0, 60),
        model: paper_model(),
        profile: DeploymentProfile::docker(),
        slo: SloPolicy::default(),
        scaling_interval: 60.0,
        seed: 3,
        warmup_days: 2,
        hist_bucket: 300.0,
    }
}

/// Table V scenario: BibSonomy-like trace, Docker, large setup
/// (peak ≈120 containers).
pub fn bibsonomy_large() -> ExperimentSpec {
    ExperimentSpec {
        name: "BibSonomy trace (large setup)".into(),
        trace: build_trace(bibsonomy_like, 20170401, 3_600.0, 120),
        model: paper_model(),
        profile: DeploymentProfile::docker(),
        slo: SloPolicy::default(),
        scaling_interval: 60.0,
        seed: 4,
        warmup_days: 2,
        hist_bucket: 300.0,
    }
}

/// A fast, small scenario for tests and examples: 10 simulated minutes of
/// a Wikipedia-like morning at modest scale.
pub fn smoke_test() -> ExperimentSpec {
    ExperimentSpec {
        name: "Smoke test".into(),
        trace: build_trace(wikipedia_like, 7, 600.0, 30),
        model: paper_model(),
        profile: DeploymentProfile::docker(),
        slo: SloPolicy::default(),
        scaling_interval: 30.0,
        seed: 5,
        warmup_days: 2,
        hist_bucket: 120.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_expected_durations() {
        assert!((wikipedia_docker().trace.duration() - 3_600.0).abs() < 1.0);
        assert!((wikipedia_vm().trace.duration() - 21_600.0).abs() < 1.0);
        assert!((bibsonomy_small().trace.duration() - 3_600.0).abs() < 1.0);
        assert!((smoke_test().trace.duration() - 600.0).abs() < 1.0);
    }

    #[test]
    fn peaks_sized_for_instance_budgets() {
        // Peak rate should translate back to the instance budget at ρ=0.8.
        let spec = wikipedia_docker();
        let peak = spec.trace.peak_rate();
        let total: f64 = DEMANDS.iter().map(|d| (peak * d / SIZING_RHO).ceil()).sum();
        assert!(
            (total - 120.0).abs() <= 3.0,
            "peak translates to {total} instances"
        );
        let small = bibsonomy_small();
        let peak = small.trace.peak_rate();
        let total: f64 = DEMANDS.iter().map(|d| (peak * d / SIZING_RHO).ceil()).sum();
        assert!((total - 60.0).abs() <= 3.0);
    }

    #[test]
    fn scenarios_differ_where_the_paper_differs() {
        let docker = wikipedia_docker();
        let vm = wikipedia_vm();
        assert!(vm.profile.provisioning_delay > docker.profile.provisioning_delay);
        assert!(vm.scaling_interval > docker.scaling_interval);
        assert!(vm.trace.duration() > docker.trace.duration());
        // Same underlying day shape: identical number of samples.
        assert_eq!(docker.trace.len(), vm.trace.len());
    }

    #[test]
    fn bibsonomy_setups_share_shape() {
        let small = bibsonomy_small();
        let large = bibsonomy_large();
        assert_eq!(small.trace.len(), large.trace.len());
        // Large is the same trace scaled up ≈2×.
        let ratio = large.trace.peak_rate() / small.trace.peak_rate();
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }
}
