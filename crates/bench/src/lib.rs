//! Experiment harness regenerating every table and figure of the
//! Chamulteon paper's evaluation (§IV–§V).
//!
//! The harness wires together the workload generators, the discrete-event
//! simulator, the five auto-scalers and the metrics suite:
//!
//! * [`ExperimentSpec`] — one measurement scenario (trace, deployment
//!   profile, scaling interval, peak sizing),
//! * [`ScalerKind`] — which auto-scaler to drive (Chamulteon, the four
//!   baselines, and the ablation variants),
//! * [`run_experiment`] — the measurement loop: simulate interval by
//!   interval, hand each scaler the paper's input tuple, apply its
//!   decisions with the deployment's provisioning delays, then score the
//!   outcome with the elasticity and user metrics,
//! * [`setups`] — the four paper experiments (Tables II–V) ready to run,
//! * [`robustness`] — fault-class presets and the clean-vs-faulted
//!   comparison runner ([`run_experiment_with_faults`]) for the chaos
//!   experiments.
//!
//! Every bench target under `benches/` regenerates one table or figure;
//! see DESIGN.md for the index.
//!
//! # Example
//!
//! ```
//! use chamulteon_bench::{run_experiment, ScalerKind};
//! use chamulteon_bench::setups::smoke_test;
//!
//! let outcome = run_experiment(&smoke_test(), ScalerKind::Chamulteon);
//! assert_eq!(outcome.report.scaler, "chamulteon");
//! ```

// The bench crate is the experiment harness (layer 5). Casts size small
// loop/display counts from bounded trace durations; `expect` is allowed
// only in the table/setup plumbing — the measurement loop itself
// (`drivers`, `experiment`, `robustness`, `graph_scale`) is decision-path
// code and kept panic-free, enforced by `xtask audit` rule R1.
#![allow(
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod des_scale;
pub mod drivers;
pub mod experiment;
pub mod graph_scale;
pub mod multi_tenant;
pub mod paper;
pub mod pool;
pub mod robustness;
pub mod setups;

pub use des_scale::{run_des_scale_case, DesScaleCase, DesScaleMeasures};
pub use drivers::ScalerKind;
pub use experiment::{
    run_experiment, run_experiment_observed, run_experiment_on, run_experiment_recovered,
    run_experiment_with_faults, CoreKind, ExperimentOutcome, ExperimentSpec, FaultedOutcome,
    SimCore,
};
pub use graph_scale::{
    proactive_decisions_legacy, proactive_decisions_sharded, run_proactive_cycle_path, CyclePath,
};
pub use multi_tenant::{run_multi_tenant, MultiTenantOutcome, MultiTenantSpec, TenantReport};
pub use paper::{run_lineup, run_lineup_seq, run_lineup_with_threads};
pub use pool::{default_threads, parallel_map};
pub use robustness::{
    evaluation_grid, evaluation_grid_seq, robustness_lineup, robustness_lineup_seq,
    robustness_lineup_with_threads, robustness_report, robustness_report_recovered, EvaluationGrid,
    FaultClass,
};
