//! `chamulteon-exp` — command-line experiment runner.
//!
//! Runs one auto-scaler (or the full paper lineup) through a named setup or
//! a user-supplied CSV trace and prints the paper's metric table.
//!
//! ```text
//! USAGE:
//!   chamulteon-exp [--setup NAME | --trace FILE.csv] [--scaler NAME | --all]
//!                  [--profile docker|vm] [--interval SECONDS] [--seed N]
//!                  [--slo SECONDS] [--series]
//!   chamulteon-exp bench [--setup NAME] [--iters N] [--threads N]
//!                  [--out FILE.json] [--quick]
//!   chamulteon-exp graph-scale [--sizes N,N,..] [--iters N] [--threads N]
//!                  [--horizon N] [--seed N] [--out FILE.json] [--quick]
//!   chamulteon-exp des-scale [--duration SECONDS] [--seed N]
//!                  [--out FILE.json] [--quick]
//!   chamulteon-exp trace [--setup NAME] [--scaler NAME] [--faults CLASS]
//!                  [--out FILE.jsonl] [--tail N]
//!   chamulteon-exp conformance [--seed N] [--cases N] [--replays N]
//!                  [--arrivals N] [--crash-points N] [--quick] [--out FILE.json]
//!   chamulteon-exp multi-tenant [--tenants N] [--policy NAME] [--budget N]
//!                  [--charging ec2|gcp] [--seed N] [--quick] [--out FILE.json]
//!
//! SETUPS:   wikipedia-docker  wikipedia-vm  bibsonomy-small  bibsonomy-large  smoke
//! SCALERS:  chamulteon  cham-reactive  cham-proactive  cham-fox-ec2
//!           cham-fox-gcp  react  adapt  hist  reg
//! ```
//!
//! Example: replay your own trace under Chamulteon and React:
//!
//! ```text
//! cargo run --release --bin chamulteon-exp -- --trace mytrace.csv --all
//! ```

// The bench crate is the experiment harness (layer 5, outside the
// decision path): panics surface misconfiguration directly and casts
// size small loop/display counts from bounded trace durations.
#![allow(
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN

use chamulteon::{ArbitrationPolicy, ChamulteonConfig, ChargingModel, RetryPolicy};
use chamulteon_bench::graph_scale::{
    cycle_rates, decisions_agree, run_proactive_cycle_path, CyclePath,
};
use chamulteon_bench::setups;
use chamulteon_bench::{
    default_threads, des_scale, evaluation_grid, evaluation_grid_seq, run_des_scale_case,
    run_experiment, run_experiment_observed, run_multi_tenant, DesScaleMeasures, ExperimentSpec,
    FaultClass, MultiTenantSpec, ScalerKind,
};
use chamulteon_conformance::{self as conformance, ConformanceConfig};
use chamulteon_metrics::{render_table, DEMAND_QUANTILE};
use chamulteon_obs::{jsonl, EventKind, MetricsRegistry, Obs, Winner, EVENT_KIND_CODES};
use chamulteon_perfmodel::{topology, ApplicationModel, TopologyFamily};
use chamulteon_queueing::{capacity, CapacityCache};
use chamulteon_sim::{DeploymentProfile, SloPolicy};
use chamulteon_workload::LoadTrace;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    setup: Option<String>,
    trace: Option<String>,
    scaler: Option<String>,
    all: bool,
    profile: Option<String>,
    interval: Option<f64>,
    seed: Option<u64>,
    slo: Option<f64>,
    series: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        setup: None,
        trace: None,
        scaler: None,
        all: false,
        profile: None,
        interval: None,
        seed: None,
        slo: None,
        series: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--setup" => args.setup = Some(value("--setup")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--scaler" => args.scaler = Some(value("--scaler")?),
            "--all" => args.all = true,
            "--profile" => args.profile = Some(value("--profile")?),
            "--interval" => {
                args.interval = Some(
                    value("--interval")?
                        .parse()
                        .map_err(|e| format!("bad --interval: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )
            }
            "--slo" => {
                args.slo = Some(
                    value("--slo")?
                        .parse()
                        .map_err(|e| format!("bad --slo: {e}"))?,
                )
            }
            "--series" => args.series = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn scaler_by_name(name: &str) -> Option<ScalerKind> {
    Some(match name {
        "chamulteon" => ScalerKind::Chamulteon,
        "cham-reactive" => ScalerKind::ChamulteonReactiveOnly,
        "cham-proactive" => ScalerKind::ChamulteonProactiveOnly,
        "cham-fox-ec2" => ScalerKind::ChamulteonFoxEc2,
        "cham-fox-gcp" => ScalerKind::ChamulteonFoxGcp,
        "react" => ScalerKind::React,
        "adapt" => ScalerKind::Adapt,
        "hist" => ScalerKind::Hist,
        "reg" => ScalerKind::Reg,
        _ => return None,
    })
}

fn setup_by_name(name: &str) -> Option<ExperimentSpec> {
    Some(match name {
        "wikipedia-docker" => setups::wikipedia_docker(),
        "wikipedia-vm" => setups::wikipedia_vm(),
        "bibsonomy-small" => setups::bibsonomy_small(),
        "bibsonomy-large" => setups::bibsonomy_large(),
        "smoke" => setups::smoke_test(),
        _ => return None,
    })
}

fn usage() -> &'static str {
    "chamulteon-exp — run a Chamulteon auto-scaling experiment\n\
     \n\
     usage: chamulteon-exp [--setup NAME | --trace FILE.csv] [--scaler NAME | --all]\n\
            [--profile docker|vm] [--interval SECONDS] [--seed N] [--slo SECONDS] [--series]\n\
            chamulteon-exp bench [--setup NAME] [--iters N] [--threads N] [--out FILE.json] [--quick]\n\
     \n\
     setups:  wikipedia-docker wikipedia-vm bibsonomy-small bibsonomy-large smoke\n\
     scalers: chamulteon cham-reactive cham-proactive cham-fox-ec2 cham-fox-gcp\n\
              react adapt hist reg\n\
     \n\
     --trace expects `time,rate` CSV (header optional); --series prints the\n\
     per-interval demand/supply series after the table.\n\
     \n\
     See also: chamulteon-exp trace --help (decision-provenance JSONL traces),\n\
     chamulteon-exp bench --help (solver/grid timings),\n\
     chamulteon-exp graph-scale --help (thousand-service cycle timings),\n\
     chamulteon-exp des-scale --help (event-core pure-DES vs hybrid timings),\n\
     chamulteon-exp conformance --help (differential-oracle verdict) and\n\
     chamulteon-exp multi-tenant --help (shared-budget cluster arbitration)."
}

// --- `bench` subcommand -------------------------------------------------

struct BenchArgs {
    setup: String,
    iters: usize,
    threads: usize,
    out: String,
    quick: bool,
}

fn parse_bench_args(argv: &[String]) -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        setup: "wikipedia-docker".to_owned(),
        iters: 3,
        threads: default_threads(),
        out: "BENCH_3.json".to_owned(),
        quick: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--setup" => args.setup = value("--setup")?,
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--quick" => args.quick = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown bench flag `{other}`")),
        }
    }
    if args.quick {
        args.setup = "smoke".to_owned();
        args.iters = args.iters.min(1);
    }
    args.iters = args.iters.max(1);
    Ok(args)
}

fn bench_usage() -> &'static str {
    "chamulteon-exp bench — time the capacity solvers and the lineup grid\n\
     \n\
     usage: chamulteon-exp bench [--setup NAME] [--iters N] [--threads N]\n\
            [--out FILE.json] [--quick]\n\
     \n\
     Times (a) the naive vs. incremental vs. memoized capacity solvers over\n\
     the setup's demand-curve workload and (b) the full lineup+robustness\n\
     evaluation grid, sequential baseline vs. checkpoint-forked parallel\n\
     runner, asserting both produce bit-identical reports. Writes the\n\
     measurements as JSON (default BENCH_3.json). --quick switches to the\n\
     smoke setup with a single iteration for CI."
}

/// Median/min/max of a sample in milliseconds.
struct Stat {
    median: f64,
    min: f64,
    max: f64,
}

fn stat(samples: &[f64]) -> Stat {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    Stat {
        median,
        min: sorted.first().copied().unwrap_or(0.0),
        max: sorted.last().copied().unwrap_or(0.0),
    }
}

fn time_iters(iters: usize, mut work: impl FnMut()) -> Vec<f64> {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn json_stat(s: &Stat) -> String {
    format!(
        "{{\"median\": {:.3}, \"min\": {:.3}, \"max\": {:.3}}}",
        s.median, s.min, s.max
    )
}

/// The per-(service, segment) capacity cells of the setup's demand-curve
/// workload: `(local arrival rate, service demand, per-visit SLO share)`,
/// with the same proportional SLO split `demand_curves` applies.
fn solver_cells(spec: &ExperimentSpec) -> (Vec<(f64, f64, f64)>, u32) {
    let demands: Vec<f64> = spec
        .model
        .services()
        .iter()
        .map(|s| s.nominal_demand())
        .collect();
    let visits = spec.model.visit_ratios();
    let max_instances = spec
        .model
        .services()
        .iter()
        .map(|s| s.max_instances())
        .max()
        .unwrap_or(200);
    let total: f64 = demands.iter().zip(&visits).map(|(d, v)| d * v).sum();
    let mut cells = Vec::new();
    for (&demand, &visit) in demands.iter().zip(&visits) {
        let share = if total > 0.0 {
            spec.slo.response_time_target * (demand * visit) / total
        } else {
            spec.slo.response_time_target
        };
        let per_visit = if visit > 0.0 { share / visit } else { share };
        for &rate in spec.trace.rates() {
            cells.push((rate * visit, demand, per_visit));
        }
    }
    (cells, max_instances)
}

fn bench_main(argv: &[String]) -> ExitCode {
    let args = match parse_bench_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", bench_usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", bench_usage());
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = setup_by_name(&args.setup) else {
        eprintln!("error: unknown setup `{}`\n\n{}", args.setup, bench_usage());
        return ExitCode::FAILURE;
    };

    // (a) Capacity-solver microbench over the demand-curve workload.
    let (cells, max_instances) = solver_cells(&spec);
    eprintln!(
        "solver microbench: {} cells ({} services x {} segments), {} iter(s)",
        cells.len(),
        spec.model.service_count(),
        spec.trace.len(),
        args.iters
    );
    let naive_ms = time_iters(args.iters, || {
        for &(rate, demand, target) in &cells {
            let _ = black_box(capacity::naive::min_instances_for_response_time_quantile(
                black_box(rate),
                demand,
                target,
                DEMAND_QUANTILE,
                max_instances,
            ));
        }
    });
    let incremental_ms = time_iters(args.iters, || {
        for &(rate, demand, target) in &cells {
            let _ = black_box(capacity::min_instances_for_response_time_quantile(
                black_box(rate),
                demand,
                target,
                DEMAND_QUANTILE,
                max_instances,
            ));
        }
    });
    let cache = CapacityCache::new();
    for &(rate, demand, target) in &cells {
        // Prime the memo so the timed passes measure steady state.
        let _ = cache.min_instances_for_response_time_quantile(
            rate,
            demand,
            target,
            DEMAND_QUANTILE,
            max_instances,
        );
    }
    let cached_ms = time_iters(args.iters, || {
        for &(rate, demand, target) in &cells {
            let _ = black_box(cache.min_instances_for_response_time_quantile(
                black_box(rate),
                demand,
                target,
                DEMAND_QUANTILE,
                max_instances,
            ));
        }
    });
    let cache_stats = cache.stats();

    // (b) Full evaluation grid: sequential no-sharing baseline vs. the
    // checkpoint-forked parallel runner, in the same process and run.
    let retry = RetryPolicy::default();
    let lineup = ScalerKind::paper_lineup().len();
    let classes = chamulteon_bench::FaultClass::ALL.len();
    let runs_sequential = lineup + classes * lineup * 2;
    eprintln!(
        "lineup grid: {} sequential runs vs shared-checkpoint runner, {} thread(s), {} iter(s)",
        runs_sequential, args.threads, args.iters
    );
    let mut seq_grids = Vec::with_capacity(args.iters);
    let sequential_ms = time_iters(args.iters, || {
        seq_grids.push(evaluation_grid_seq(&spec, &retry));
    });
    let mut opt_grids = Vec::with_capacity(args.iters);
    let optimized_ms = time_iters(args.iters, || {
        opt_grids.push(evaluation_grid(&spec, &retry, args.threads));
    });
    let identical = seq_grids
        .iter()
        .zip(&opt_grids)
        .all(|(seq, opt)| seq == opt);
    if !identical {
        eprintln!("error: optimized grid diverged from the sequential baseline");
        return ExitCode::FAILURE;
    }

    // Report.
    let naive = stat(&naive_ms);
    let incremental = stat(&incremental_ms);
    let cached = stat(&cached_ms);
    let sequential = stat(&sequential_ms);
    let optimized = stat(&optimized_ms);
    let guard = |x: f64| x.max(1e-9);
    let speedup_incremental = naive.median / guard(incremental.median);
    let speedup_cached = naive.median / guard(cached.median);
    let speedup_grid = sequential.median / guard(optimized.median);
    println!("solver microbench ({} cells/iter):", cells.len());
    println!("  naive        {:>10.3} ms", naive.median);
    println!(
        "  incremental  {:>10.3} ms   ({speedup_incremental:.1}x)",
        incremental.median
    );
    println!(
        "  cached warm  {:>10.3} ms   ({speedup_cached:.1}x)",
        cached.median
    );
    println!("lineup grid ({runs_sequential} runs sequential):");
    println!("  sequential   {:>10.1} ms", sequential.median);
    println!(
        "  optimized    {:>10.1} ms   ({speedup_grid:.2}x, reports bit-identical)",
        optimized.median
    );

    let json = format!(
        "{{\n  \"bench\": \"chamulteon solver + lineup-grid timings\",\n  \"setup\": \"{}\",\n  \"iters\": {},\n  \"threads\": {},\n  \"solver_microbench\": {{\n    \"cells\": {},\n    \"naive_ms\": {},\n    \"incremental_ms\": {},\n    \"cached_warm_ms\": {},\n    \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"speedup_incremental_vs_naive\": {:.2},\n    \"speedup_cached_vs_naive\": {:.2}\n  }},\n  \"lineup_grid\": {{\n    \"runs_sequential\": {},\n    \"sequential_ms\": {},\n    \"optimized_ms\": {},\n    \"speedup_optimized_vs_sequential\": {:.3},\n    \"reports_bit_identical\": {}\n  }}\n}}\n",
        args.setup,
        args.iters,
        args.threads,
        cells.len(),
        json_stat(&naive),
        json_stat(&incremental),
        json_stat(&cached),
        cache_stats.hits,
        cache_stats.misses,
        speedup_incremental,
        speedup_cached,
        runs_sequential,
        json_stat(&sequential),
        json_stat(&optimized),
        speedup_grid,
        identical,
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);
    ExitCode::SUCCESS
}

// --- `graph-scale` subcommand -------------------------------------------

struct GraphScaleArgs {
    sizes: Vec<usize>,
    iters: usize,
    threads: usize,
    horizon: usize,
    seed: u64,
    out: String,
}

fn parse_graph_scale_args(argv: &[String]) -> Result<GraphScaleArgs, String> {
    let mut args = GraphScaleArgs {
        sizes: vec![10, 100, 1000],
        iters: 5,
        threads: default_threads(),
        horizon: 12,
        seed: 7,
        out: "BENCH_4.json".to_owned(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --sizes: {e}"))?;
            }
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--horizon" => {
                args.horizon = value("--horizon")?
                    .parse()
                    .map_err(|e| format!("bad --horizon: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--quick" => {
                args.sizes = vec![10, 100];
                args.iters = args.iters.min(2);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown graph-scale flag `{other}`")),
        }
    }
    if args.sizes.is_empty() || args.sizes.contains(&0) {
        return Err("--sizes needs at least one positive size".to_owned());
    }
    args.iters = args.iters.max(1);
    args.horizon = args.horizon.max(1);
    Ok(args)
}

fn graph_scale_usage() -> &'static str {
    "chamulteon-exp graph-scale — time one full proactive cycle on large graphs\n\
     \n\
     usage: chamulteon-exp graph-scale [--sizes N,N,..] [--iters N] [--threads N]\n\
            [--horizon N] [--seed N] [--out FILE.json] [--quick]\n\
     \n\
     For each service count (default 10,100,1000) and each synthetic topology\n\
     family (chain, fan, diamond, scale-free), times one full proactive cycle\n\
     (a horizon-step Algorithm 1 loop) through three decision paths: the\n\
     legacy sequential baseline (per-call topological re-sort, per-service\n\
     locked cache lookups), the arena-batched path, and the batched path with\n\
     solve batches sharded across worker threads — cold cache and warm cache,\n\
     asserting all paths produce bit-identical targets. Writes BENCH_4.json.\n\
     --quick drops the 1000-service point and caps iterations for CI."
}

/// Per-(size, family) measurement row.
struct GraphScaleRow {
    family: &'static str,
    legacy_cold: Stat,
    batched_cold: Stat,
    sharded_cold: Stat,
    legacy_warm: Stat,
    batched_warm: Stat,
    sharded_warm: Stat,
    lookups_legacy: u64,
    lookups_batched: u64,
}

fn graph_scale_main(argv: &[String]) -> ExitCode {
    let args = match parse_graph_scale_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", graph_scale_usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", graph_scale_usage());
            return ExitCode::FAILURE;
        }
    };
    let config = ChamulteonConfig::default();
    let metrics = MetricsRegistry::new();
    let guard = |x: f64| x.max(1e-9);
    let mut size_blocks: Vec<String> = Vec::new();

    for &size in &args.sizes {
        eprintln!(
            "graph-scale: {size} services x {} families, horizon {}, {} iter(s), {} thread(s)",
            TopologyFamily::ALL.len(),
            args.horizon,
            args.iters,
            args.threads
        );
        let base_rate = 5.0 * size as f64;
        let rates = cycle_rates(base_rate, args.horizon);
        let mut rows: Vec<GraphScaleRow> = Vec::new();

        for family in TopologyFamily::ALL {
            let model = match topology::model(family, size, args.seed) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: cannot build {} model at {size}: {e}", family.name());
                    return ExitCode::FAILURE;
                }
            };

            // Runtime bit-identity assertion across all three paths.
            let run = |path: CyclePath| {
                let cache = CapacityCache::new();
                run_proactive_cycle_path(&cache, &model, &rates, &config, path)
            };
            let legacy_targets = run(CyclePath::Legacy);
            let batched_targets = run(CyclePath::Batched);
            let sharded_targets = run(CyclePath::Sharded(args.threads));
            if !decisions_agree(&legacy_targets, &batched_targets)
                || !decisions_agree(&batched_targets, &sharded_targets)
            {
                eprintln!(
                    "error: decision paths diverged on {} at {size} services",
                    family.name()
                );
                return ExitCode::FAILURE;
            }

            // Cache-lookup counts for one cold cycle: the batched path
            // answers by corner evaluation, so it issues zero memo
            // lookups for the same decisions.
            let count_lookups = |path: CyclePath| {
                let cache = CapacityCache::new();
                let _ = black_box(run_proactive_cycle_path(
                    &cache, &model, &rates, &config, path,
                ));
                let s = cache.stats();
                s.hits + s.misses
            };
            let lookups_legacy = count_lookups(CyclePath::Legacy);
            let lookups_batched = count_lookups(CyclePath::Batched);

            // Cold: a fresh cache every iteration.
            let time_cold = |path: CyclePath| {
                time_iters(args.iters, || {
                    let cache = CapacityCache::new();
                    let _ = black_box(run_proactive_cycle_path(
                        &cache, &model, &rates, &config, path,
                    ));
                })
            };
            let legacy_cold = time_cold(CyclePath::Legacy);
            let batched_cold = time_cold(CyclePath::Batched);
            let sharded_cold = time_cold(CyclePath::Sharded(args.threads));

            // Warm: one shared cache primed by a full cycle, then timed.
            let warm_cache = CapacityCache::new();
            let _ = black_box(run_proactive_cycle_path(
                &warm_cache,
                &model,
                &rates,
                &config,
                CyclePath::Batched,
            ));
            let time_warm = |path: CyclePath| {
                time_iters(args.iters, || {
                    let _ = black_box(run_proactive_cycle_path(
                        &warm_cache,
                        &model,
                        &rates,
                        &config,
                        path,
                    ));
                })
            };
            let legacy_warm = time_warm(CyclePath::Legacy);
            let batched_warm = time_warm(CyclePath::Batched);
            let sharded_warm = time_warm(CyclePath::Sharded(args.threads));

            rows.push(GraphScaleRow {
                family: family.name(),
                legacy_cold: stat(&legacy_cold),
                batched_cold: stat(&batched_cold),
                sharded_cold: stat(&sharded_cold),
                legacy_warm: stat(&legacy_warm),
                batched_warm: stat(&batched_warm),
                sharded_warm: stat(&sharded_warm),
                lookups_legacy,
                lookups_batched,
            });
        }

        // Per-size report: one table, aggregate totals over all families.
        let total_legacy: f64 = rows.iter().map(|r| r.legacy_cold.median).sum();
        let total_batched: f64 = rows.iter().map(|r| r.batched_cold.median).sum();
        let total_sharded: f64 = rows.iter().map(|r| r.sharded_cold.median).sum();
        let speedup_batched = total_legacy / guard(total_batched);
        let speedup_sharded = total_legacy / guard(total_sharded);
        println!("graph-scale, {size} services (cold-cache medians, one full cycle):");
        println!(
            "  {:<11} {:>12} {:>12} {:>12} {:>9} {:>18}",
            "family", "legacy ms", "batched ms", "sharded ms", "speedup", "memo lookups"
        );
        for row in &rows {
            println!(
                "  {:<11} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>8} -> {:<8}",
                row.family,
                row.legacy_cold.median,
                row.batched_cold.median,
                row.sharded_cold.median,
                row.legacy_cold.median / guard(row.sharded_cold.median),
                row.lookups_legacy,
                row.lookups_batched,
            );
        }
        println!(
            "  all-families total: legacy {total_legacy:.3} ms, batched {total_batched:.3} ms \
             ({speedup_batched:.2}x), sharded {total_sharded:.3} ms ({speedup_sharded:.2}x)"
        );
        metrics.set_gauge(&format!("graph_scale.{size}.legacy_cold_ms"), total_legacy);
        metrics.set_gauge(
            &format!("graph_scale.{size}.batched_cold_ms"),
            total_batched,
        );
        metrics.set_gauge(
            &format!("graph_scale.{size}.sharded_cold_ms"),
            total_sharded,
        );
        metrics.set_gauge(
            &format!("graph_scale.{size}.speedup_sharded"),
            speedup_sharded,
        );

        let family_json: Vec<String> = rows
            .iter()
            .map(|row| {
                format!(
                    "      {{\n        \"family\": \"{}\",\n        \"legacy_cold_ms\": {},\n        \"batched_cold_ms\": {},\n        \"sharded_cold_ms\": {},\n        \"legacy_warm_ms\": {},\n        \"batched_warm_ms\": {},\n        \"sharded_warm_ms\": {},\n        \"cache_lookups_legacy\": {},\n        \"cache_lookups_batched\": {},\n        \"speedup_sharded_vs_legacy_cold\": {:.3}\n      }}",
                    row.family,
                    json_stat(&row.legacy_cold),
                    json_stat(&row.batched_cold),
                    json_stat(&row.sharded_cold),
                    json_stat(&row.legacy_warm),
                    json_stat(&row.batched_warm),
                    json_stat(&row.sharded_warm),
                    row.lookups_legacy,
                    row.lookups_batched,
                    row.legacy_cold.median / guard(row.sharded_cold.median),
                )
            })
            .collect();
        size_blocks.push(format!(
            "    {{\n      \"services\": {size},\n      \"total_legacy_cold_ms\": {total_legacy:.3},\n      \"total_batched_cold_ms\": {total_batched:.3},\n      \"total_sharded_cold_ms\": {total_sharded:.3},\n      \"speedup_batched_vs_legacy\": {speedup_batched:.3},\n      \"speedup_sharded_vs_legacy\": {speedup_sharded:.3},\n      \"families\": [\n{}\n      ]\n    }}",
            family_json.join(",\n")
        ));
    }

    println!("metrics:");
    for line in metrics.snapshot().lines() {
        println!("  {line}");
    }

    let json = format!(
        "{{\n  \"bench\": \"graph-scale proactive cycle: legacy vs batched vs sharded\",\n  \"horizon\": {},\n  \"iters\": {},\n  \"threads\": {},\n  \"seed\": {},\n  \"bit_identical\": true,\n  \"sizes\": [\n{}\n  ]\n}}\n",
        args.horizon,
        args.iters,
        args.threads,
        args.seed,
        size_blocks.join(",\n")
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);
    ExitCode::SUCCESS
}

// --- `des-scale` subcommand ---------------------------------------------

struct DesScaleArgs {
    seed: u64,
    duration: f64,
    out: String,
}

fn parse_des_scale_args(argv: &[String]) -> Result<DesScaleArgs, String> {
    let mut args = DesScaleArgs {
        seed: 7,
        duration: 300.0,
        out: "BENCH_5.json".to_owned(),
    };
    // Explicit duration wins over the `--quick` preset regardless of
    // flag order.
    let mut duration = None;
    let mut quick = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--duration" => {
                duration = Some(
                    value("--duration")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad --duration: {e}"))?,
                )
            }
            "--out" => args.out = value("--out")?,
            "--quick" => quick = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown des-scale flag `{other}`")),
        }
    }
    args.duration = duration.unwrap_or(if quick { 60.0 } else { 300.0 });
    if !(args.duration > 0.0) {
        return Err("--duration needs a positive number of seconds".to_owned());
    }
    Ok(args)
}

fn des_scale_usage() -> &'static str {
    "chamulteon-exp des-scale — event-driven core at production load, pure DES vs hybrid\n\
     \n\
     usage: chamulteon-exp des-scale [--duration SECONDS] [--seed N]\n\
            [--out FILE.json] [--quick]\n\
     \n\
     Runs the synthetic Wikipedia day (scaled to 10k/100k/1M req/s peak and\n\
     compressed to --duration so the pure-request-level run stays tractable)\n\
     through the event-driven core twice per load: once with every request a\n\
     simulated entity, once with the hybrid fluid switch armed. Then runs the\n\
     headline configuration — the full uncompressed 86 400 s day at 1M req/s\n\
     peak — in hybrid mode, which a pure request-level simulation cannot\n\
     touch. Reports wall-clock, events processed, events/s, the speedup per\n\
     row, and checks the conservation identity sent = completed + in-flight\n\
     on every run. Writes BENCH_5.json.\n\
     --quick compresses the comparison day to 60 s for CI."
}

/// Times one des-scale case; returns the measures plus wall seconds.
fn time_des_case(case: &chamulteon_bench::DesScaleCase) -> Option<(DesScaleMeasures, f64)> {
    let started = Instant::now();
    let measures = run_des_scale_case(case)?;
    Some((measures, started.elapsed().as_secs_f64()))
}

fn json_des_run(m: &DesScaleMeasures, wall_s: f64, indent: &str) -> String {
    let events_per_sec = m.events as f64 / wall_s.max(1e-9);
    format!(
        "{indent}{{\n\
         {indent}  \"wall_ms\": {:.3},\n\
         {indent}  \"events\": {},\n\
         {indent}  \"events_per_sec\": {:.0},\n\
         {indent}  \"regime_switches\": {},\n\
         {indent}  \"sent\": {},\n\
         {indent}  \"completed\": {},\n\
         {indent}  \"in_flight\": {},\n\
         {indent}  \"mean_response_s\": {:.6},\n\
         {indent}  \"slo_violation_percent\": {:.3},\n\
         {indent}  \"conserved\": {}\n\
         {indent}}}",
        wall_s * 1e3,
        m.events,
        events_per_sec,
        m.regime_switches,
        m.sent,
        m.completed,
        m.in_flight,
        m.mean_response,
        m.slo_violation_percent,
        m.conserved,
    )
}

fn des_scale_main(argv: &[String]) -> ExitCode {
    let args = match parse_des_scale_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", des_scale_usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", des_scale_usage());
            return ExitCode::FAILURE;
        }
    };

    let metrics = MetricsRegistry::new();
    let mut broken = false;
    let mut row_blocks = Vec::new();
    eprintln!(
        "des-scale: Wikipedia day compressed to {:.0} s, seed {}",
        args.duration, args.seed
    );
    println!(
        "  {:<8} {:>14} {:>14} {:>15} {:>15} {:>9}",
        "peak", "pure wall ms", "hybrid wall ms", "pure events", "hybrid events", "speedup"
    );
    for (pure_case, hybrid_case) in des_scale::comparison_cases(args.seed, args.duration) {
        let label = pure_case.label.clone();
        eprintln!("  running {label} pure ...");
        let Some((pure, pure_wall)) = time_des_case(&pure_case) else {
            eprintln!("error: {label} pure run failed to build");
            return ExitCode::FAILURE;
        };
        eprintln!("  running {label} hybrid ...");
        let Some((hybrid, hybrid_wall)) = time_des_case(&hybrid_case) else {
            eprintln!("error: {label} hybrid run failed to build");
            return ExitCode::FAILURE;
        };
        broken |= !pure.conserved || !hybrid.conserved;
        let speedup = pure_wall / hybrid_wall.max(1e-9);
        println!(
            "  {:<8} {:>14.1} {:>14.1} {:>15} {:>15} {:>8.1}x",
            label,
            pure_wall * 1e3,
            hybrid_wall * 1e3,
            pure.events,
            hybrid.events,
            speedup
        );
        metrics.set_gauge(&format!("des_scale.{label}.pure_wall_ms"), pure_wall * 1e3);
        metrics.set_gauge(
            &format!("des_scale.{label}.hybrid_wall_ms"),
            hybrid_wall * 1e3,
        );
        metrics.set_gauge(&format!("des_scale.{label}.speedup"), speedup);
        row_blocks.push(format!(
            "    {{\n      \"label\": \"{}\",\n      \"peak_rps\": {},\n      \"duration_s\": {},\n      \"speedup_hybrid_vs_pure\": {:.3},\n      \"pure\":\n{},\n      \"hybrid\":\n{}\n    }}",
            label,
            pure_case.peak,
            pure_case.duration,
            speedup,
            json_des_run(&pure, pure_wall, "      "),
            json_des_run(&hybrid, hybrid_wall, "      "),
        ));
    }

    let headline_case = des_scale::headline_case(args.seed);
    eprintln!("  running 1M-day headline (full 86 400 s, hybrid) ...");
    let Some((headline, headline_wall)) = time_des_case(&headline_case) else {
        eprintln!("error: headline run failed to build");
        return ExitCode::FAILURE;
    };
    broken |= !headline.conserved;
    println!(
        "  1M req/s full day, hybrid: {:.1} ms wall, {} events, {} switches, {} requests completed",
        headline_wall * 1e3,
        headline.events,
        headline.regime_switches,
        headline.completed
    );
    metrics.set_gauge("des_scale.headline.wall_ms", headline_wall * 1e3);
    metrics.set_gauge("des_scale.headline.completed", headline.completed as f64);

    println!("metrics:");
    for line in metrics.snapshot().lines() {
        println!("  {line}");
    }
    if broken {
        eprintln!("error: a run violated the conservation identity sent = completed + in-flight");
        return ExitCode::FAILURE;
    }

    let json = format!(
        "{{\n  \"bench\": \"des-scale: event-driven core, pure DES vs hybrid fluid\",\n  \"seed\": {},\n  \"compare_duration_s\": {},\n  \"rows\": [\n{}\n  ],\n  \"headline\": {{\n    \"label\": \"{}\",\n    \"peak_rps\": {},\n    \"duration_s\": {},\n    \"run\":\n{}\n  }}\n}}\n",
        args.seed,
        args.duration,
        row_blocks.join(",\n"),
        headline_case.label,
        headline_case.peak,
        headline_case.duration,
        json_des_run(&headline, headline_wall, "    "),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);
    ExitCode::SUCCESS
}

// --- `conformance` subcommand -------------------------------------------

struct ConformanceArgs {
    config: ConformanceConfig,
    out: Option<String>,
}

fn parse_conformance_args(argv: &[String]) -> Result<ConformanceArgs, String> {
    let mut config = ConformanceConfig::default();
    let mut out = None;
    let mut quick = false;
    // Explicit grid size wins over the `--quick` preset regardless of
    // flag order, so `--quick --crash-points N` does what it says.
    let mut crash_points = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--cases" => {
                config.algorithm1_cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?
            }
            "--replays" => {
                config.ledger_replays = value("--replays")?
                    .parse()
                    .map_err(|e| format!("bad --replays: {e}"))?
            }
            "--arrivals" => {
                config.sim_arrivals = value("--arrivals")?
                    .parse()
                    .map_err(|e| format!("bad --arrivals: {e}"))?
            }
            "--crash-points" => {
                crash_points = Some(
                    value("--crash-points")?
                        .parse()
                        .map_err(|e| format!("bad --crash-points: {e}"))?,
                )
            }
            "--quick" => quick = true,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown conformance flag `{other}`")),
        }
    }
    if quick {
        let seed = config.seed;
        config = ConformanceConfig {
            seed,
            ..ConformanceConfig::quick()
        };
    }
    if let Some(points) = crash_points {
        config.recovery_crash_points = points;
    }
    Ok(ConformanceArgs { config, out })
}

fn conformance_usage() -> &'static str {
    "chamulteon-exp conformance — cross-check the analytic spine against\n\
     independent oracles\n\
     \n\
     usage: chamulteon-exp conformance [--seed N] [--cases N] [--replays N]\n\
            [--arrivals N] [--crash-points N] [--quick] [--out FILE.json]\n\
     \n\
     Runs four differential oracles: a brute-force Algorithm 1 grid\n\
     (bit-level agreement of the naive, exact and cached decision paths),\n\
     a FOX ledger replay (exact agreement on vetoes, lease books and\n\
     billed instance-seconds), a discrete-event M/M/n micro-simulator\n\
     (Erlang-C measures and capacity answers within batch-means confidence\n\
     bands), and a crash-recovery differential (a controller restored from\n\
     its encoded snapshot must continue bit-identically to the\n\
     uninterrupted run). Prints the verdict, optionally writes it as JSON,\n\
     and exits non-zero on any mismatch. --quick shrinks the grid for CI."
}

fn conformance_main(argv: &[String]) -> ExitCode {
    let args = match parse_conformance_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", conformance_usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", conformance_usage());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "conformance: {} Algorithm 1 cases, {} ledger replays, {} arrivals/station, \
         {} crash points, seed {}...",
        args.config.algorithm1_cases,
        args.config.ledger_replays,
        args.config.sim_arrivals,
        args.config.recovery_crash_points,
        args.config.seed
    );
    let started = Instant::now();
    let report = conformance::run_all(&args.config);
    let elapsed = started.elapsed().as_secs_f64();
    for oracle in &report.oracles {
        println!(
            "  {:<14} {:>5} cases  {}",
            oracle.oracle,
            oracle.cases,
            if oracle.passed() {
                "ok".to_owned()
            } else {
                format!("{} MISMATCH(ES)", oracle.mismatches.len())
            }
        );
        for mismatch in &oracle.mismatches {
            println!("    {mismatch}");
        }
    }
    println!(
        "verdict: {} ({} cases, {} mismatches, {elapsed:.1} s)",
        if report.passed() { "PASS" } else { "FAIL" },
        report.total_cases(),
        report.total_mismatches()
    );
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// --- `multi-tenant` subcommand ------------------------------------------

struct MultiTenantArgs {
    spec: MultiTenantSpec,
    out: Option<String>,
}

fn parse_multi_tenant_args(argv: &[String]) -> Result<MultiTenantArgs, String> {
    let mut quick = false;
    let mut policy = ArbitrationPolicy::WeightedFairShare;
    let mut tenants = None;
    let mut budget = None;
    let mut charging = None;
    let mut seed = None;
    let mut out = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--policy" => {
                let name = value("--policy")?;
                policy = ArbitrationPolicy::from_name(&name)
                    .ok_or_else(|| format!("unknown policy `{name}`"))?;
            }
            "--tenants" => {
                tenants = Some(
                    value("--tenants")?
                        .parse()
                        .map_err(|e| format!("bad --tenants: {e}"))?,
                )
            }
            "--budget" => {
                budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                )
            }
            "--charging" => {
                charging = Some(match value("--charging")?.as_str() {
                    "ec2" => ChargingModel::ec2_hourly(),
                    "gcp" => ChargingModel::gcp_per_minute(),
                    other => return Err(format!("unknown charging model `{other}` (ec2|gcp)")),
                })
            }
            "--seed" => {
                seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )
            }
            "--quick" => quick = true,
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown multi-tenant flag `{other}`")),
        }
    }
    let mut spec = if quick {
        MultiTenantSpec::smoke(policy)
    } else {
        MultiTenantSpec::standard(policy)
    };
    if let Some(n) = tenants {
        spec.tenants = n;
    }
    if let Some(b) = budget {
        spec.budget = b;
    }
    if let Some(model) = charging {
        spec.charging = model;
    }
    if let Some(s) = seed {
        spec.seed = s;
    }
    Ok(MultiTenantArgs { spec, out })
}

fn multi_tenant_usage() -> &'static str {
    "chamulteon-exp multi-tenant — K coordinated controllers sharing one\n\
     cluster budget through the arbiter and its warm pool\n\
     \n\
     usage: chamulteon-exp multi-tenant [--tenants N] [--policy NAME]\n\
            [--budget N] [--charging ec2|gcp] [--seed N] [--quick]\n\
            [--out FILE.json]\n\
     \n\
     Runs K Chamulteon controllers over phase-offset diurnal traces, each\n\
     submitting its aggregated scale-up/-down to a shared cluster arbiter\n\
     every interval. Prints the per-tenant table (grants, warm transfers,\n\
     origin-attributed billing, SLO) and the cluster summary; optionally\n\
     writes the outcome as JSON. --quick runs the 10-minute CI smoke\n\
     scenario instead of the one-hour standard one.\n\
     \n\
     policies: strict-priority  fair-share  cost-greedy"
}

fn multi_tenant_main(argv: &[String]) -> ExitCode {
    let args = match parse_multi_tenant_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", multi_tenant_usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", multi_tenant_usage());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "multi-tenant: {} tenants, policy {}, budget {}, {:.0} s simulated...",
        args.spec.tenants,
        args.spec.policy.name(),
        args.spec.budget,
        args.spec.duration
    );
    let started = Instant::now();
    let outcome = run_multi_tenant(&args.spec, &Obs::disabled());
    let elapsed = started.elapsed().as_secs_f64();
    print!("{}", outcome.render());
    println!("({elapsed:.1} s wall)");
    if outcome.peak_in_use > outcome.budget {
        eprintln!(
            "error: budget invariant violated: peak in-use {} > budget {}",
            outcome.peak_in_use, outcome.budget
        );
        return ExitCode::FAILURE;
    }
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, outcome.to_json()) {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

// --- `trace` subcommand -------------------------------------------------

struct TraceArgs {
    setup: String,
    scaler: String,
    faults: Option<String>,
    out: String,
    tail: usize,
}

fn parse_trace_args(argv: &[String]) -> Result<TraceArgs, String> {
    let mut args = TraceArgs {
        setup: "smoke".to_owned(),
        scaler: "chamulteon".to_owned(),
        faults: None,
        out: "trace.jsonl".to_owned(),
        tail: 6,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--setup" => args.setup = value("--setup")?,
            "--scaler" => args.scaler = value("--scaler")?,
            "--faults" => args.faults = Some(value("--faults")?),
            "--out" => args.out = value("--out")?,
            "--tail" => {
                args.tail = value("--tail")?
                    .parse()
                    .map_err(|e| format!("bad --tail: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown trace flag `{other}`")),
        }
    }
    Ok(args)
}

fn trace_usage() -> &'static str {
    "chamulteon-exp trace — capture a decision-provenance JSONL trace\n\
     \n\
     usage: chamulteon-exp trace [--setup NAME] [--scaler NAME] [--faults CLASS]\n\
            [--out FILE.jsonl] [--tail N]\n\
     \n\
     Runs one scaler through the setup with the tracing recorder attached,\n\
     writes every control-loop event (cycle starts, forecasts, conflict\n\
     resolutions, per-service decision provenance, actuation outcomes,\n\
     injected faults) as one JSON object per line, validates the file\n\
     round-trips (emit -> parse -> re-emit is identity), and prints per-kind\n\
     event counts, the metrics snapshot and the last N decisions.\n\
     \n\
     fault classes: clean (default)  drop-samples  corrupt-samples\n\
                    actuation-failures  instance-crashes"
}

/// Pretty-prints one decision-provenance event for the `--tail` report.
fn render_decision(event: &chamulteon_obs::Event) -> Option<String> {
    let EventKind::Decision(p) = &event.kind else {
        return None;
    };
    let service = event
        .service
        .map_or_else(|| "?".to_owned(), |s| s.to_string());
    let forecast = match (p.forecast_rate, p.forecast_generation, p.forecast_trusted) {
        (Some(rate), Some(generation), trusted) => format!(
            "{rate:.1} req/s (gen {generation}{})",
            match trusted {
                Some(true) => ", trusted",
                Some(false) => ", untrusted",
                None => "",
            }
        ),
        _ => "-".to_owned(),
    };
    let cache = match p.cache_hit {
        Some(true) => "hit",
        Some(false) => "miss",
        None => "-",
    };
    let fox = match p.fox_suppressed {
        Some(true) => "suppressed",
        Some(false) => "passed",
        None => "-",
    };
    Some(format!(
        "t={:>7.0}  tick={:<4} s{} {}  {} -> {}  rate={:.1}  demand={:.4}  forecast={}  cache={}  fox={}",
        event.time,
        p.tick,
        service,
        p.winner.as_code(),
        p.proposed,
        p.target,
        p.measured_rate,
        p.demand,
        forecast,
        cache,
        fox,
    ))
}

fn trace_main(argv: &[String]) -> ExitCode {
    let args = match parse_trace_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", trace_usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", trace_usage());
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = setup_by_name(&args.setup) else {
        eprintln!("error: unknown setup `{}`\n\n{}", args.setup, trace_usage());
        return ExitCode::FAILURE;
    };
    let Some(kind) = scaler_by_name(&args.scaler) else {
        eprintln!(
            "error: unknown scaler `{}`\n\n{}",
            args.scaler,
            trace_usage()
        );
        return ExitCode::FAILURE;
    };
    let plan = match args.faults.as_deref() {
        None | Some("clean") => None,
        Some(name) => match FaultClass::ALL.iter().find(|c| c.name() == name) {
            Some(class) => {
                Some(class.plan(spec.seed, spec.trace.duration(), spec.scaling_interval))
            }
            None => {
                eprintln!("error: unknown fault class `{name}`\n\n{}", trace_usage());
                return ExitCode::FAILURE;
            }
        },
    };

    eprintln!(
        "tracing {} on {} ({}), {:.0} s simulated...",
        args.scaler,
        spec.name,
        args.faults.as_deref().unwrap_or("clean"),
        spec.trace.duration()
    );
    let (obs, ring) = Obs::recording(1 << 20);
    let faulted = run_experiment_observed(&spec, kind, plan, &RetryPolicy::default(), &obs);
    let events = ring.take();
    if ring.dropped() > 0 {
        eprintln!(
            "warning: ring buffer overflowed, {} oldest events dropped",
            ring.dropped()
        );
    }

    // Emit, then self-validate the schema: emit -> parse -> re-emit must
    // be the identity on the text.
    let text = jsonl::emit(&events);
    match jsonl::parse(&text) {
        Ok(parsed) => {
            if jsonl::emit(&parsed) != text {
                eprintln!("error: JSONL round-trip is not the identity");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("error: emitted JSONL does not parse back: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    println!(
        "trace: {} events, round-trip validated -> {}",
        events.len(),
        args.out
    );
    println!("event counts:");
    for code in EVENT_KIND_CODES {
        let n = events.iter().filter(|e| e.kind.code() == *code).count();
        if n > 0 {
            println!("  {code:<20} {n:>8}");
        }
    }
    let decisions: Vec<&chamulteon_obs::Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Decision(_)))
        .collect();
    let provenanced = decisions.len();
    let with_winner = |w: Winner| {
        decisions
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Decision(p) if p.winner == w))
            .count()
    };
    println!(
        "decisions: {provenanced} with provenance ({} proactive, {} reactive, {} hold)",
        with_winner(Winner::Proactive),
        with_winner(Winner::Reactive),
        with_winner(Winner::Hold),
    );
    println!(
        "outcome: {:.2}% SLO violations, {:.1} instance-hours, {} degradations, {} faults injected",
        faulted.outcome.report.slo_violations,
        faulted.outcome.report.instance_hours,
        faulted.degradation.len(),
        faulted.outcome.result.fault_log.len(),
    );
    if args.tail > 0 && !decisions.is_empty() {
        println!("last {} decisions:", args.tail.min(decisions.len()));
        for event in decisions.iter().rev().take(args.tail).rev() {
            if let Some(line) = render_decision(event) {
                println!("  {line}");
            }
        }
    }
    println!("metrics snapshot:");
    for line in obs.metrics().snapshot().lines() {
        println!("  {line}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bench") {
        return bench_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("graph-scale") {
        return graph_scale_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("des-scale") {
        return des_scale_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("trace") {
        return trace_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("conformance") {
        return conformance_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("multi-tenant") {
        return multi_tenant_main(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    // Build the spec.
    let mut spec = match (&args.setup, &args.trace) {
        (Some(name), None) => match setup_by_name(name) {
            Some(s) => s,
            None => {
                eprintln!("error: unknown setup `{name}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        },
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let trace = match LoadTrace::from_csv(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            ExperimentSpec {
                name: format!("custom trace {path}"),
                trace,
                model: ApplicationModel::paper_benchmark(),
                profile: DeploymentProfile::docker(),
                slo: SloPolicy::default(),
                scaling_interval: 60.0,
                seed: 1,
                warmup_days: 2,
                hist_bucket: 300.0,
            }
        }
        (None, None) => setups::smoke_test(),
        (Some(_), Some(_)) => {
            eprintln!("error: --setup and --trace are mutually exclusive");
            return ExitCode::FAILURE;
        }
    };
    if let Some(profile) = &args.profile {
        spec.profile = match profile.as_str() {
            "docker" => DeploymentProfile::docker(),
            "vm" => DeploymentProfile::vm(),
            other => {
                eprintln!("error: unknown profile `{other}` (docker|vm)");
                return ExitCode::FAILURE;
            }
        };
    }
    if let Some(interval) = args.interval {
        spec.scaling_interval = interval.max(1.0);
    }
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(slo) = args.slo {
        spec.slo = SloPolicy::new(slo, spec.slo.toleration_factor);
    }

    // Pick the scalers.
    let kinds: Vec<ScalerKind> = if args.all {
        ScalerKind::paper_lineup().to_vec()
    } else {
        let name = args.scaler.as_deref().unwrap_or("chamulteon");
        match scaler_by_name(name) {
            Some(k) => vec![k],
            None => {
                eprintln!("error: unknown scaler `{name}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    eprintln!(
        "running {} for {} scaler(s), {:.0} s simulated...",
        spec.name,
        kinds.len(),
        spec.trace.duration()
    );
    let outcomes: Vec<_> = kinds.iter().map(|&k| run_experiment(&spec, k)).collect();
    let reports: Vec<_> = outcomes.iter().map(|o| o.report.clone()).collect();
    println!("{}", render_table(&spec.name, &reports));

    if args.series {
        for (kind, outcome) in kinds.iter().zip(&outcomes) {
            println!("series for {}:", kind.name());
            println!("{:>8} per-service demand/supply pairs", "time_s");
            let steps = (outcome.result.duration / spec.scaling_interval) as usize;
            for k in 0..steps {
                let t = k as f64 * spec.scaling_interval;
                let mut row = format!("{t:>8.0}");
                for s in 0..spec.model.service_count() {
                    row.push_str(&format!(
                        " {:>4}/{:<4}",
                        outcome.demand[s].value_at(t),
                        outcome.result.supply_at(s, t)
                    ));
                }
                println!("{row}");
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
