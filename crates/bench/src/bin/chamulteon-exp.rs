//! `chamulteon-exp` — command-line experiment runner.
//!
//! Runs one auto-scaler (or the full paper lineup) through a named setup or
//! a user-supplied CSV trace and prints the paper's metric table.
//!
//! ```text
//! USAGE:
//!   chamulteon-exp [--setup NAME | --trace FILE.csv] [--scaler NAME | --all]
//!                  [--profile docker|vm] [--interval SECONDS] [--seed N]
//!                  [--slo SECONDS] [--series]
//!
//! SETUPS:   wikipedia-docker  wikipedia-vm  bibsonomy-small  bibsonomy-large  smoke
//! SCALERS:  chamulteon  cham-reactive  cham-proactive  cham-fox-ec2
//!           cham-fox-gcp  react  adapt  hist  reg
//! ```
//!
//! Example: replay your own trace under Chamulteon and React:
//!
//! ```text
//! cargo run --release --bin chamulteon-exp -- --trace mytrace.csv --all
//! ```

// The bench crate is the experiment harness (layer 4, outside the
// decision path): panics surface misconfiguration directly and casts
// size small loop/display counts from bounded trace durations.
#![allow(
    clippy::expect_used,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]

use chamulteon_bench::setups;
use chamulteon_bench::{run_experiment, ExperimentSpec, ScalerKind};
use chamulteon_metrics::render_table;
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_sim::{DeploymentProfile, SloPolicy};
use chamulteon_workload::LoadTrace;
use std::process::ExitCode;

struct Args {
    setup: Option<String>,
    trace: Option<String>,
    scaler: Option<String>,
    all: bool,
    profile: Option<String>,
    interval: Option<f64>,
    seed: Option<u64>,
    slo: Option<f64>,
    series: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        setup: None,
        trace: None,
        scaler: None,
        all: false,
        profile: None,
        interval: None,
        seed: None,
        slo: None,
        series: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--setup" => args.setup = Some(value("--setup")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--scaler" => args.scaler = Some(value("--scaler")?),
            "--all" => args.all = true,
            "--profile" => args.profile = Some(value("--profile")?),
            "--interval" => {
                args.interval = Some(
                    value("--interval")?
                        .parse()
                        .map_err(|e| format!("bad --interval: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )
            }
            "--slo" => {
                args.slo = Some(
                    value("--slo")?
                        .parse()
                        .map_err(|e| format!("bad --slo: {e}"))?,
                )
            }
            "--series" => args.series = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn scaler_by_name(name: &str) -> Option<ScalerKind> {
    Some(match name {
        "chamulteon" => ScalerKind::Chamulteon,
        "cham-reactive" => ScalerKind::ChamulteonReactiveOnly,
        "cham-proactive" => ScalerKind::ChamulteonProactiveOnly,
        "cham-fox-ec2" => ScalerKind::ChamulteonFoxEc2,
        "cham-fox-gcp" => ScalerKind::ChamulteonFoxGcp,
        "react" => ScalerKind::React,
        "adapt" => ScalerKind::Adapt,
        "hist" => ScalerKind::Hist,
        "reg" => ScalerKind::Reg,
        _ => return None,
    })
}

fn setup_by_name(name: &str) -> Option<ExperimentSpec> {
    Some(match name {
        "wikipedia-docker" => setups::wikipedia_docker(),
        "wikipedia-vm" => setups::wikipedia_vm(),
        "bibsonomy-small" => setups::bibsonomy_small(),
        "bibsonomy-large" => setups::bibsonomy_large(),
        "smoke" => setups::smoke_test(),
        _ => return None,
    })
}

fn usage() -> &'static str {
    "chamulteon-exp — run a Chamulteon auto-scaling experiment\n\
     \n\
     usage: chamulteon-exp [--setup NAME | --trace FILE.csv] [--scaler NAME | --all]\n\
            [--profile docker|vm] [--interval SECONDS] [--seed N] [--slo SECONDS] [--series]\n\
     \n\
     setups:  wikipedia-docker wikipedia-vm bibsonomy-small bibsonomy-large smoke\n\
     scalers: chamulteon cham-reactive cham-proactive cham-fox-ec2 cham-fox-gcp\n\
              react adapt hist reg\n\
     \n\
     --trace expects `time,rate` CSV (header optional); --series prints the\n\
     per-interval demand/supply series after the table."
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    // Build the spec.
    let mut spec = match (&args.setup, &args.trace) {
        (Some(name), None) => match setup_by_name(name) {
            Some(s) => s,
            None => {
                eprintln!("error: unknown setup `{name}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        },
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let trace = match LoadTrace::from_csv(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            ExperimentSpec {
                name: format!("custom trace {path}"),
                trace,
                model: ApplicationModel::paper_benchmark(),
                profile: DeploymentProfile::docker(),
                slo: SloPolicy::default(),
                scaling_interval: 60.0,
                seed: 1,
                warmup_days: 2,
                hist_bucket: 300.0,
            }
        }
        (None, None) => setups::smoke_test(),
        (Some(_), Some(_)) => {
            eprintln!("error: --setup and --trace are mutually exclusive");
            return ExitCode::FAILURE;
        }
    };
    if let Some(profile) = &args.profile {
        spec.profile = match profile.as_str() {
            "docker" => DeploymentProfile::docker(),
            "vm" => DeploymentProfile::vm(),
            other => {
                eprintln!("error: unknown profile `{other}` (docker|vm)");
                return ExitCode::FAILURE;
            }
        };
    }
    if let Some(interval) = args.interval {
        spec.scaling_interval = interval.max(1.0);
    }
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(slo) = args.slo {
        spec.slo = SloPolicy::new(slo, spec.slo.toleration_factor);
    }

    // Pick the scalers.
    let kinds: Vec<ScalerKind> = if args.all {
        ScalerKind::paper_lineup().to_vec()
    } else {
        let name = args.scaler.as_deref().unwrap_or("chamulteon");
        match scaler_by_name(name) {
            Some(k) => vec![k],
            None => {
                eprintln!("error: unknown scaler `{name}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    eprintln!(
        "running {} for {} scaler(s), {:.0} s simulated...",
        spec.name,
        kinds.len(),
        spec.trace.duration()
    );
    let outcomes: Vec<_> = kinds.iter().map(|&k| run_experiment(&spec, k)).collect();
    let reports: Vec<_> = outcomes.iter().map(|o| o.report.clone()).collect();
    println!("{}", render_table(&spec.name, &reports));

    if args.series {
        for (kind, outcome) in kinds.iter().zip(&outcomes) {
            println!("series for {}:", kind.name());
            println!("{:>8} per-service demand/supply pairs", "time_s");
            let steps = (outcome.result.duration / spec.scaling_interval) as usize;
            for k in 0..steps {
                let t = k as f64 * spec.scaling_interval;
                let mut row = format!("{t:>8.0}");
                for s in 0..spec.model.service_count() {
                    row.push_str(&format!(
                        " {:>4}/{:<4}",
                        outcome.demand[s].value_at(t),
                        outcome.result.supply_at(s, t)
                    ));
                }
                println!("{row}");
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
