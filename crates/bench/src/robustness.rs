//! Fault-class presets and the clean-vs-faulted comparison runner.
//!
//! The chaos experiments group the simulator's fault primitives into four
//! classes matching how real monitoring and actuation pipelines fail:
//! samples that never arrive (or arrive late), samples that arrive wrong,
//! scaling commands that fail or complete late, and instances that die
//! mid-interval. Each class maps to a deterministic [`FaultPlan`] preset
//! covering the middle half of the run, so warm-up and cool-down stay
//! clean and the faulted window is long enough to matter.

use crate::drivers::ScalerKind;
use crate::experiment::{run_experiment, run_experiment_with_faults, ExperimentSpec};
use chamulteon::RetryPolicy;
use chamulteon_metrics::RobustnessReport;
use chamulteon_sim::{CorruptionMode, FaultPlan};

/// One class of failure a scaler must degrade gracefully under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Monitoring samples dropped or delivered one interval late.
    DropSamples,
    /// Monitoring samples corrupted: NaN, negative, or spiked rates.
    CorruptSamples,
    /// Scaling commands that transiently fail or complete late.
    ActuationFailures,
    /// Running instances crashing mid-interval.
    InstanceCrashes,
}

impl FaultClass {
    /// Every fault class, for exhaustive chaos sweeps.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::DropSamples,
        FaultClass::CorruptSamples,
        FaultClass::ActuationFailures,
        FaultClass::InstanceCrashes,
    ];

    /// Stable name used in report rows and table titles.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::DropSamples => "drop-samples",
            FaultClass::CorruptSamples => "corrupt-samples",
            FaultClass::ActuationFailures => "actuation-failures",
            FaultClass::InstanceCrashes => "instance-crashes",
        }
    }

    /// The deterministic fault plan for this class over a run of the given
    /// duration: faults cover the middle half `[0.25·D, 0.75·D]`.
    pub fn plan(&self, seed: u64, duration: f64) -> FaultPlan {
        let start = 0.25 * duration;
        let end = 0.75 * duration;
        let plan = FaultPlan::new(seed);
        match self {
            FaultClass::DropSamples => plan
                .drop_samples(None, start, end, 0.4)
                .delay_samples(None, start, end, 0.2, 1),
            FaultClass::CorruptSamples => plan
                .corrupt_samples(None, start, end, 0.15, CorruptionMode::Nan)
                .corrupt_samples(None, start, end, 0.15, CorruptionMode::Negative)
                .corrupt_samples(
                    None,
                    start,
                    end,
                    0.15,
                    CorruptionMode::Spike { factor: 10.0 },
                ),
            FaultClass::ActuationFailures => plan
                .fail_actuations(None, start, end, 0.5)
                .delay_actuations(None, start, end, 0.3, 30.0),
            FaultClass::InstanceCrashes => plan.crash_instances(None, start, end, 0.15, 2),
        }
    }
}

/// Runs one scaler twice — fault-free and under the class's fault plan —
/// and packages the comparison. Both runs use the spec's seed, so the
/// underlying workload is identical; only the injected faults differ.
pub fn robustness_report(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    class: FaultClass,
    retry: &RetryPolicy,
) -> RobustnessReport {
    let clean = run_experiment(spec, kind);
    let plan = class.plan(spec.seed, spec.trace.duration());
    let faulted = run_experiment_with_faults(spec, kind, Some(plan), retry);
    RobustnessReport {
        scaler: kind.name().to_owned(),
        fault_class: class.name().to_owned(),
        clean_slo_violations: clean.report.slo_violations,
        faulted_slo_violations: faulted.outcome.report.slo_violations,
        clean_instance_hours: clean.report.instance_hours,
        faulted_instance_hours: faulted.outcome.report.instance_hours,
        faults_injected: faulted.outcome.result.fault_log.len(),
        degraded_decisions: faulted.degradation.len(),
    }
}

/// [`robustness_report`] for the paper's five-scaler lineup under one
/// fault class — the rows of a chaos table.
pub fn robustness_lineup(
    spec: &ExperimentSpec,
    class: FaultClass,
    retry: &RetryPolicy,
) -> Vec<RobustnessReport> {
    ScalerKind::paper_lineup()
        .into_iter()
        .map(|kind| robustness_report(spec, kind, class, retry))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "drop-samples",
                "corrupt-samples",
                "actuation-failures",
                "instance-crashes"
            ]
        );
    }

    #[test]
    fn plans_cover_the_middle_half() {
        for class in FaultClass::ALL {
            let plan = class.plan(7, 1000.0);
            assert!(!plan.windows().is_empty(), "{class:?}");
            for w in plan.windows() {
                assert_eq!(w.start, 250.0, "{class:?}");
                assert_eq!(w.end, 750.0, "{class:?}");
                assert!(w.probability > 0.0 && w.probability <= 1.0, "{class:?}");
            }
        }
    }

    #[test]
    fn plans_are_deterministic_in_seed() {
        let a = FaultClass::DropSamples.plan(42, 600.0);
        let b = FaultClass::DropSamples.plan(42, 600.0);
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.windows(), b.windows());
    }
}
