//! Fault-class presets and the clean-vs-faulted comparison runner.
//!
//! The chaos experiments group the simulator's fault primitives into five
//! classes matching how real monitoring, actuation and control-plane
//! pipelines fail: samples that never arrive (or arrive late), samples
//! that arrive wrong, scaling commands that fail or complete late,
//! instances that die mid-interval, and the controller process itself
//! crashing and restarting. Each class maps to a deterministic [`FaultPlan`] preset
//! covering the middle half of the run, so warm-up and cool-down stay
//! clean and the faulted window is long enough to matter.

use crate::drivers::ScalerKind;
use crate::experiment::{
    advance_run, checkpoint_interval, finalize_run, fork_run, init_run, run_experiment,
    run_experiment_recovered, run_experiment_with_faults, run_experiment_with_faults_cached,
    ExperimentOutcome, ExperimentSpec, FaultedOutcome,
};
use crate::pool::{default_threads, parallel_map};
use chamulteon::RetryPolicy;
use chamulteon_metrics::{RobustnessReport, ScalerReport};
use chamulteon_queueing::CapacityCache;
use chamulteon_sim::{CorruptionMode, FaultPlan, RecoveryPolicy};

/// One class of failure a scaler must degrade gracefully under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Monitoring samples dropped or delivered one interval late.
    DropSamples,
    /// Monitoring samples corrupted: NaN, negative, or spiked rates.
    CorruptSamples,
    /// Scaling commands that transiently fail or complete late.
    ActuationFailures,
    /// Running instances crashing mid-interval.
    InstanceCrashes,
    /// The controller process crashing mid-run and restarting (cold, or
    /// from a checkpoint under a [`chamulteon_sim::RecoveryPolicy`]).
    ControllerCrashes,
}

impl FaultClass {
    /// Every fault class, for exhaustive chaos sweeps.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::DropSamples,
        FaultClass::CorruptSamples,
        FaultClass::ActuationFailures,
        FaultClass::InstanceCrashes,
        FaultClass::ControllerCrashes,
    ];

    /// Stable name used in report rows and table titles.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::DropSamples => "drop-samples",
            FaultClass::CorruptSamples => "corrupt-samples",
            FaultClass::ActuationFailures => "actuation-failures",
            FaultClass::InstanceCrashes => "instance-crashes",
            FaultClass::ControllerCrashes => "controller-crashes",
        }
    }

    /// The deterministic fault plan for this class over a run of the given
    /// duration and scaling interval: faults cover the middle half
    /// `[0.25·D, 0.75·D]`. The interval fixes which decision cycles the
    /// controller-crash class lands on (cycle `k` runs at `k·Δ`); the
    /// other classes ignore it.
    pub fn plan(&self, seed: u64, duration: f64, interval: f64) -> FaultPlan {
        let start = 0.25 * duration;
        let end = 0.75 * duration;
        let plan = FaultPlan::new(seed);
        match self {
            FaultClass::DropSamples => plan
                .drop_samples(None, start, end, 0.4)
                .delay_samples(None, start, end, 0.2, 1),
            FaultClass::CorruptSamples => plan
                .corrupt_samples(None, start, end, 0.15, CorruptionMode::Nan)
                .corrupt_samples(None, start, end, 0.15, CorruptionMode::Negative)
                .corrupt_samples(
                    None,
                    start,
                    end,
                    0.15,
                    CorruptionMode::Spike { factor: 10.0 },
                ),
            FaultClass::ActuationFailures => plan
                .fail_actuations(None, start, end, 0.5)
                .delay_actuations(None, start, end, 0.3, 30.0),
            FaultClass::InstanceCrashes => plan.crash_instances(None, start, end, 0.15, 2),
            FaultClass::ControllerCrashes => {
                // Two certain crashes: one 40 % into the run (soon after
                // the fault windows open, typically mid-billing-interval)
                // and one at 60 % (after degraded cycles have piled up).
                let interval = if interval > 0.0 { interval } else { 60.0 };
                let cycle_at = |frac: f64| ((frac * duration / interval).round() as usize).max(1);
                plan.crash_controller(cycle_at(0.4), start, end, 1.0)
                    .crash_controller(cycle_at(0.6), start, end, 1.0)
            }
        }
    }
}

/// Runs one scaler twice — fault-free and under the class's fault plan —
/// and packages the comparison. Both runs use the spec's seed, so the
/// underlying workload is identical; only the injected faults differ.
pub fn robustness_report(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    class: FaultClass,
    retry: &RetryPolicy,
) -> RobustnessReport {
    let clean = run_experiment(spec, kind);
    let plan = class.plan(spec.seed, spec.trace.duration(), spec.scaling_interval);
    let faulted = run_experiment_with_faults(spec, kind, Some(plan), retry);
    package_report(kind, class, &clean, &faulted)
}

/// [`robustness_report`] with an explicit crash-[`RecoveryPolicy`]: under
/// [`RecoveryPolicy::Checkpoint`] a Chamulteon scaler hit by the
/// controller-crash class restores from its latest snapshot instead of
/// restarting cold. For classes without controller crashes the policy
/// changes nothing but the checkpoint cadence (snapshots are pure reads).
pub fn robustness_report_recovered(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    class: FaultClass,
    retry: &RetryPolicy,
    recovery: RecoveryPolicy,
) -> RobustnessReport {
    let clean = run_experiment(spec, kind);
    let plan = class.plan(spec.seed, spec.trace.duration(), spec.scaling_interval);
    let faulted = run_experiment_recovered(spec, kind, Some(plan), retry, recovery);
    package_report(kind, class, &clean, &faulted)
}

/// Packages a clean/faulted outcome pair into the comparison row.
fn package_report(
    kind: ScalerKind,
    class: FaultClass,
    clean: &ExperimentOutcome,
    faulted: &FaultedOutcome,
) -> RobustnessReport {
    RobustnessReport {
        scaler: kind.name().to_owned(),
        fault_class: class.name().to_owned(),
        clean_slo_violations: clean.report.slo_violations,
        faulted_slo_violations: faulted.outcome.report.slo_violations,
        clean_instance_hours: clean.report.instance_hours,
        faulted_instance_hours: faulted.outcome.report.instance_hours,
        faults_injected: faulted.outcome.result.fault_log.len(),
        degraded_decisions: faulted.degradation.len(),
    }
}

/// [`robustness_report`] for the paper's five-scaler lineup under one
/// fault class — the rows of a chaos table. Cells run on a worker pool
/// (one per available core); every cell is deterministic in the spec's
/// seed, so the rows are identical to [`robustness_lineup_seq`].
pub fn robustness_lineup(
    spec: &ExperimentSpec,
    class: FaultClass,
    retry: &RetryPolicy,
) -> Vec<RobustnessReport> {
    robustness_lineup_with_threads(spec, class, retry, default_threads())
}

/// [`robustness_lineup`] with an explicit worker-thread count.
pub fn robustness_lineup_with_threads(
    spec: &ExperimentSpec,
    class: FaultClass,
    retry: &RetryPolicy,
    threads: usize,
) -> Vec<RobustnessReport> {
    let kinds = ScalerKind::paper_lineup();
    parallel_map(&kinds, threads, |_, &kind| {
        robustness_report(spec, kind, class, retry)
    })
}

/// The sequential reference for [`robustness_lineup`]: one scaler at a
/// time on the calling thread. Kept as the benchmark baseline and the
/// equivalence oracle for the parallel path.
pub fn robustness_lineup_seq(
    spec: &ExperimentSpec,
    class: FaultClass,
    retry: &RetryPolicy,
) -> Vec<RobustnessReport> {
    ScalerKind::paper_lineup()
        .into_iter()
        .map(|kind| robustness_report(spec, kind, class, retry))
        .collect()
}

/// The full evaluation grid of the paper reproduction: the five-scaler
/// lineup plus the clean-vs-faulted comparison under every fault class.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationGrid {
    /// One scored report per lineup scaler (the Table II–V columns).
    pub lineup: Vec<ScalerReport>,
    /// Robustness rows indexed `[fault class][scaler]`, classes in
    /// [`FaultClass::ALL`] order, scalers in lineup order.
    pub robustness: Vec<Vec<RobustnessReport>>,
}

/// Runs the whole evaluation grid with run sharing: per scaler, ONE clean
/// run serves both the lineup column and the clean side of all four
/// robustness rows, and each faulted run is forked from a checkpoint of
/// that clean run taken at the last scaling interval before the fault
/// windows open (25 % into the trace) instead of replaying the clean
/// prefix from scratch. Scaler cells run on a worker pool sharing one
/// capacity cache.
///
/// The grid is bit-identical to [`evaluation_grid_seq`]: checkpoint forks
/// are bit-identical to from-scratch faulted runs (pinned by simulator
/// tests), cells are deterministic in the spec's seed, and cached
/// capacity lookups are pure functions of their inputs.
pub fn evaluation_grid(
    spec: &ExperimentSpec,
    retry: &RetryPolicy,
    threads: usize,
) -> EvaluationGrid {
    let cache = CapacityCache::new();
    let kinds = ScalerKind::paper_lineup();
    let cells = parallel_map(&kinds, threads, |_, &kind| {
        grid_cell(spec, kind, retry, &cache)
    });
    let lineup = cells
        .iter()
        .map(|cell| cell.clean.outcome.report.clone())
        .collect();
    let robustness = FaultClass::ALL
        .iter()
        .enumerate()
        .map(|(c, &class)| {
            cells
                .iter()
                .map(|cell| package_report(cell.kind, class, &cell.clean.outcome, &cell.faulted[c]))
                .collect()
        })
        .collect();
    EvaluationGrid { lineup, robustness }
}

/// The sequential, no-sharing reference for [`evaluation_grid`] — exactly
/// the runs a caller would have issued before the grid existed: a
/// sequential lineup plus, per fault class, a sequential clean-vs-faulted
/// pair per scaler (45 full runs for the five-scaler lineup). Kept as the
/// benchmark baseline and the equivalence oracle.
pub fn evaluation_grid_seq(spec: &ExperimentSpec, retry: &RetryPolicy) -> EvaluationGrid {
    EvaluationGrid {
        lineup: crate::paper::run_lineup_seq(spec),
        robustness: FaultClass::ALL
            .iter()
            .map(|&class| robustness_lineup_seq(spec, class, retry))
            .collect(),
    }
}

/// One scaler's share of the grid: its clean run and the four faulted
/// continuations.
struct GridCell {
    kind: ScalerKind,
    clean: FaultedOutcome,
    faulted: Vec<FaultedOutcome>,
}

fn grid_cell(
    spec: &ExperimentSpec,
    kind: ScalerKind,
    retry: &RetryPolicy,
    cache: &CapacityCache,
) -> GridCell {
    let duration = spec.trace.duration();
    let mut clean = init_run(spec, kind, None);
    advance_run(&mut clean, spec, retry, checkpoint_interval(spec));
    let faulted = FaultClass::ALL
        .iter()
        .map(|class| {
            let plan = class.plan(spec.seed, duration, spec.scaling_interval);
            match fork_run(&clean, plan.clone()) {
                Some(state) => finalize_run(state, spec, retry, cache),
                // Fork preconditions not met (e.g. fault windows opening
                // before the first interval boundary): replay from scratch.
                None => run_experiment_with_faults_cached(spec, kind, Some(plan), retry, cache),
            }
        })
        .collect();
    let clean = finalize_run(clean, spec, retry, cache);
    GridCell {
        kind,
        clean,
        faulted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "drop-samples",
                "corrupt-samples",
                "actuation-failures",
                "instance-crashes",
                "controller-crashes"
            ]
        );
    }

    #[test]
    fn plans_cover_the_middle_half() {
        for class in FaultClass::ALL {
            let plan = class.plan(7, 1000.0, 60.0);
            assert!(!plan.windows().is_empty(), "{class:?}");
            for w in plan.windows() {
                assert_eq!(w.start, 250.0, "{class:?}");
                assert_eq!(w.end, 750.0, "{class:?}");
                assert!(w.probability > 0.0 && w.probability <= 1.0, "{class:?}");
            }
        }
    }

    #[test]
    fn plans_are_deterministic_in_seed() {
        let a = FaultClass::DropSamples.plan(42, 600.0, 60.0);
        let b = FaultClass::DropSamples.plan(42, 600.0, 60.0);
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.windows(), b.windows());
    }

    #[test]
    fn checkpoint_fork_engages_on_smoke_setup() {
        // The grid's fast path must actually be exercised: the smoke spec
        // admits a checkpoint strictly before the fault windows, and every
        // class's plan forks from it.
        let spec = crate::setups::smoke_test();
        let k = checkpoint_interval(&spec);
        assert!(k >= 1, "checkpoint at interval {k}");
        let mut clean = init_run(&spec, ScalerKind::Chamulteon, None);
        advance_run(&mut clean, &spec, &RetryPolicy::default(), k);
        for class in FaultClass::ALL {
            let plan = class.plan(spec.seed, spec.trace.duration(), spec.scaling_interval);
            assert!(fork_run(&clean, plan).is_some(), "{class:?}");
        }
    }

    #[test]
    fn grid_matches_sequential_baseline() {
        // The shared-run, checkpoint-forked, cache-scored parallel grid is
        // bit-identical to the 45-run sequential baseline.
        let spec = crate::setups::smoke_test();
        let retry = RetryPolicy::default();
        let seq = evaluation_grid_seq(&spec, &retry);
        let grid = evaluation_grid(&spec, &retry, 2);
        assert_eq!(grid, seq);
    }

    #[test]
    fn parallel_robustness_lineup_matches_sequential() {
        let spec = crate::setups::smoke_test();
        let retry = RetryPolicy::default();
        let class = FaultClass::ActuationFailures;
        assert_eq!(
            robustness_lineup_with_threads(&spec, class, &retry, 3),
            robustness_lineup_seq(&spec, class, &retry)
        );
    }
}
