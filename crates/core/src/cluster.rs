//! Multi-tenant cluster arbitration with a FOX-aware warm pool.
//!
//! The paper scales one application; this module adds the cluster level:
//! N independently controlled tenants (each a Chamulteon-scaled
//! application) submit their per-cycle scale-up/release proposals to a
//! [`ClusterArbiter`] that owns a global instance budget. Three
//! resolution policies decide who gets instances when demand exceeds
//! supply ([`ArbitrationPolicy`]).
//!
//! The arbiter extends FOX's lease semantics across tenants: a released
//! instance whose charging interval is still paid does not terminate — it
//! moves into a cross-tenant **warm pool**, keeping its original lease
//! start time. A tenant scaling up draws warm instances before any cold
//! lease is opened; the billed seconds of a transferred lease are always
//! attributed to the *original* lessee. A warm instance whose paid window
//! runs out is terminated and billed to its origin; one released within
//! the FOX release window (≤ 10% of the charging interval paid time
//! remaining) is closed outright, exactly as single-tenant FOX would.
//!
//! Two invariants the cluster conformance oracle replays against an
//! independent implementation:
//!
//! * **budget**: running instances plus warm-pool instances never exceed
//!   the budget at any event time,
//! * **ledger**: the per-tenant billed ledgers balance bit-exactly with a
//!   naive replay of the raw event log, transferred leases included.

use crate::fox::ChargingModel;

/// Dense tenant index within a cluster.
pub type TenantId = usize;

/// One running instance lease: billed from `start` under the cluster's
/// charging model, with the bill always attributed to `origin` — the
/// tenant that opened the lease, which may differ from the tenant
/// currently running the instance after a warm-pool transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLease {
    /// Lease start time (seconds); preserved across warm-pool transfers.
    pub start: f64,
    /// Tenant the billed seconds are attributed to.
    pub origin: TenantId,
}

/// A parked lease in the cross-tenant warm pool: released but still paid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmLease {
    /// Original lease start time.
    pub start: f64,
    /// Tenant billed for this lease.
    pub origin: TenantId,
    /// End of the already-paid window, fixed at deposit time: the pool
    /// holds the instance until here and terminates it if undrawn.
    pub paid_until: f64,
}

/// How the arbiter resolves scale-up contention over the shared budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Tenants ranked by weight (ties by lower tenant id); each is granted
    /// in full, in rank order, until the budget runs out.
    StrictPriority,
    /// Weighted max-min fairness: instances are granted one at a time to
    /// the tenant with the smallest granted-to-weight ratio.
    WeightedFairShare,
    /// Cost-greedy: instances go one at a time to the tenant with the
    /// highest marginal SLO gain per instance, with diminishing returns
    /// (a tenant's k-th granted instance counts `gain / k`).
    CostGreedy,
}

impl ArbitrationPolicy {
    /// Stable policy name used in reports, events and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            ArbitrationPolicy::StrictPriority => "strict-priority",
            ArbitrationPolicy::WeightedFairShare => "fair-share",
            ArbitrationPolicy::CostGreedy => "cost-greedy",
        }
    }

    /// Parses a policy from its [`name`](ArbitrationPolicy::name).
    pub fn from_name(name: &str) -> Option<ArbitrationPolicy> {
        match name {
            "strict-priority" => Some(ArbitrationPolicy::StrictPriority),
            "fair-share" => Some(ArbitrationPolicy::WeightedFairShare),
            "cost-greedy" => Some(ArbitrationPolicy::CostGreedy),
            _ => None,
        }
    }

    /// All policies, for grids and CLIs.
    pub fn all() -> [ArbitrationPolicy; 3] {
        [
            ArbitrationPolicy::StrictPriority,
            ArbitrationPolicy::WeightedFairShare,
            ArbitrationPolicy::CostGreedy,
        ]
    }
}

/// One tenant's submission for an arbitration cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantProposal {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Desired total instance count (the controller's aggregated target).
    pub desired: u32,
    /// Priority / fair-share weight. Non-finite or non-positive weights
    /// are treated as 1.0.
    pub weight: f64,
    /// Estimated marginal SLO gain of the first additional instance, used
    /// by [`ArbitrationPolicy::CostGreedy`]. Non-finite or negative gains
    /// are treated as 0.
    pub slo_gain: f64,
}

/// The arbiter's per-tenant outcome for one arbitration cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantVerdict {
    /// The tenant this verdict applies to.
    pub tenant: TenantId,
    /// The desired total the tenant asked for.
    pub requested: u32,
    /// The total instance count the tenant holds after arbitration — the
    /// target its controller must actually apply.
    pub granted: u32,
    /// Instances satisfied from the warm pool this cycle.
    pub drawn_warm: u32,
    /// Fresh (cold) leases opened this cycle.
    pub opened_cold: u32,
    /// Still-paid releases parked into the warm pool this cycle.
    pub deposited: u32,
    /// Releases closed outright (paid window nearly exhausted).
    pub closed: u32,
}

/// One entry of the arbiter's raw event log — the ground truth the
/// conformance oracle replays and the provenance `obs` exports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterEvent {
    /// A cold lease opened for `tenant` (start = `time`, origin = tenant).
    Open {
        /// Event time.
        time: f64,
        /// Tenant opening the lease.
        tenant: TenantId,
    },
    /// A warm lease drawn by `tenant`; `start`/`origin` identify the
    /// transferred lease.
    Draw {
        /// Event time.
        time: f64,
        /// Tenant receiving the instance.
        tenant: TenantId,
        /// Original lease start time.
        start: f64,
        /// Tenant billed for the lease.
        origin: TenantId,
    },
    /// A running lease released by `tenant` into the warm pool.
    Deposit {
        /// Event time.
        time: f64,
        /// Tenant releasing the instance.
        tenant: TenantId,
        /// Original lease start time.
        start: f64,
        /// Tenant billed for the lease.
        origin: TenantId,
    },
    /// A running lease released and closed outright (release window);
    /// bills `billed_duration(time - start)` to `origin`.
    Close {
        /// Event time.
        time: f64,
        /// Tenant that held the instance.
        tenant: TenantId,
        /// Original lease start time.
        start: f64,
        /// Tenant billed for the lease.
        origin: TenantId,
    },
    /// A warm lease's paid window ran out undrawn; bills
    /// `billed_duration(paid_until - start)` to `origin`.
    Expire {
        /// Event time (the arbitration that observed the expiry).
        time: f64,
        /// Original lease start time.
        start: f64,
        /// End of the paid window.
        paid_until: f64,
        /// Tenant billed for the lease.
        origin: TenantId,
    },
}

impl ClusterEvent {
    /// The event time.
    pub fn time(&self) -> f64 {
        match self {
            ClusterEvent::Open { time, .. }
            | ClusterEvent::Draw { time, .. }
            | ClusterEvent::Deposit { time, .. }
            | ClusterEvent::Close { time, .. }
            | ClusterEvent::Expire { time, .. } => *time,
        }
    }
}

/// The cluster-level arbiter: global budget, per-tenant lease books with
/// origin attribution, the cross-tenant warm pool and the per-tenant
/// billed ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterArbiter {
    model: ChargingModel,
    policy: ArbitrationPolicy,
    budget: u32,
    /// Release an instance outright (instead of parking it warm) when at
    /// most this fraction of its charging interval remains paid — the
    /// same 10% window single-tenant FOX uses.
    release_window: f64,
    /// Per-tenant books of running leases.
    books: Vec<Vec<TenantLease>>,
    /// The cross-tenant warm pool.
    warm: Vec<WarmLease>,
    /// Per-tenant billed instance-seconds of *closed* leases, attributed
    /// to the lease origin.
    billed: Vec<f64>,
    /// Raw event log since the last [`take_events`](Self::take_events).
    events: Vec<ClusterEvent>,
}

impl ClusterArbiter {
    /// Creates an arbiter for `tenants` tenants sharing `budget` instances
    /// under the given charging model.
    pub fn new(
        model: ChargingModel,
        policy: ArbitrationPolicy,
        budget: u32,
        tenants: usize,
    ) -> Self {
        ClusterArbiter {
            model,
            policy,
            budget,
            release_window: 0.1,
            books: vec![Vec::new(); tenants],
            warm: Vec::new(),
            billed: vec![0.0; tenants],
            events: Vec::new(),
        }
    }

    /// The charging model in use.
    pub fn model(&self) -> &ChargingModel {
        &self.model
    }

    /// The arbitration policy in use.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// The global instance budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Number of tenants the arbiter tracks.
    pub fn tenant_count(&self) -> usize {
        self.books.len()
    }

    /// Running instances currently held by `tenant`.
    pub fn running(&self, tenant: TenantId) -> u32 {
        self.books
            .get(tenant)
            .map(|b| u32::try_from(b.len()).unwrap_or(u32::MAX))
            .unwrap_or(0)
    }

    /// Total running instances across all tenants.
    pub fn total_running(&self) -> u32 {
        self.books
            .iter()
            .map(|b| u32::try_from(b.len()).unwrap_or(u32::MAX))
            .fold(0u32, u32::saturating_add)
    }

    /// Instances parked in the warm pool.
    pub fn warm_count(&self) -> u32 {
        u32::try_from(self.warm.len()).unwrap_or(u32::MAX)
    }

    /// Budget consumption: running plus warm instances — the quantity the
    /// budget invariant bounds.
    pub fn in_use(&self) -> u32 {
        self.total_running().saturating_add(self.warm_count())
    }

    /// The warm pool contents (ordered; deterministic).
    pub fn warm_pool(&self) -> &[WarmLease] {
        &self.warm
    }

    /// The per-tenant lease books.
    pub fn lease_books(&self) -> &[Vec<TenantLease>] {
        &self.books
    }

    /// Total billed instance-seconds attributed to `tenant` as of `now`:
    /// closed leases plus the accrued bill of its still-open leases —
    /// running anywhere in the cluster or parked warm.
    pub fn billed_instance_seconds(&self, tenant: TenantId, now: f64) -> f64 {
        let mut total = self.billed.get(tenant).copied().unwrap_or(0.0);
        for lease in self.books.iter().flatten() {
            if lease.origin == tenant {
                total += self.model.billed_duration(now - lease.start);
            }
        }
        for warm in &self.warm {
            if warm.origin == tenant {
                // A parked lease's bill is fixed at deposit time: its paid
                // window, which it will never exceed.
                total += self.model.billed_duration(warm.paid_until - warm.start);
            }
        }
        total
    }

    /// Drains the raw event log accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// One arbitration cycle at time `now`.
    ///
    /// Phases, in order: warm leases whose paid window ran out are
    /// terminated; scale-downs are applied (release-window leases close,
    /// still-paid ones park warm); scale-ups are resolved by the policy
    /// against the remaining budget, each granted instance drawing the
    /// warm lease with the most paid time left before opening a cold one.
    ///
    /// Returns one verdict per proposal, in proposal order. Proposals for
    /// tenants beyond the constructed count grow the book/ledger tables.
    pub fn arbitrate(&mut self, now: f64, proposals: &[TenantProposal]) -> Vec<TenantVerdict> {
        for p in proposals {
            self.ensure_tenant(p.tenant);
        }
        self.expire_warm(now);

        let mut verdicts: Vec<TenantVerdict> = proposals
            .iter()
            .map(|p| TenantVerdict {
                tenant: p.tenant,
                requested: p.desired,
                granted: 0,
                drawn_warm: 0,
                opened_cold: 0,
                deposited: 0,
                closed: 0,
            })
            .collect();

        // Phase 1: releases free budget before any grant is considered.
        for (p, verdict) in proposals.iter().zip(verdicts.iter_mut()) {
            let current = self.running(p.tenant);
            let mut to_release = current.saturating_sub(p.desired);
            while to_release > 0 {
                let Some((deposited, closed)) = self.release_one(p.tenant, now) else {
                    break;
                };
                verdict.deposited += deposited;
                verdict.closed += closed;
                to_release -= 1;
            }
        }

        // Phase 2: scale-ups, resolved by the policy. Each sequence entry
        // is one granted instance for one proposal, in grant order.
        let supply = self.budget.saturating_sub(self.total_running());
        let sequence = allocate(self.policy, proposals, supply, |t| self.running(t));
        for index in sequence {
            let Some(p) = proposals.get(index) else {
                continue;
            };
            if self.draw_warm(p.tenant, now) {
                if let Some(v) = verdicts.get_mut(index) {
                    v.drawn_warm += 1;
                }
            } else {
                self.open_cold(p.tenant, now);
                if let Some(v) = verdicts.get_mut(index) {
                    v.opened_cold += 1;
                }
            }
        }

        for verdict in &mut verdicts {
            verdict.granted = self.running(verdict.tenant);
        }
        verdicts
    }

    /// Grows the book/ledger tables to cover `tenant`.
    fn ensure_tenant(&mut self, tenant: TenantId) {
        if tenant >= self.books.len() {
            self.books.resize(tenant + 1, Vec::new());
        }
        if tenant >= self.billed.len() {
            self.billed.resize(tenant + 1, 0.0);
        }
    }

    /// Terminates warm leases whose paid window has run out, billing each
    /// to its origin.
    fn expire_warm(&mut self, now: f64) {
        let mut index = 0;
        while index < self.warm.len() {
            let warm = self.warm[index];
            if warm.paid_until <= now {
                self.warm.remove(index);
                self.ensure_tenant(warm.origin);
                self.billed[warm.origin] +=
                    self.model.billed_duration(warm.paid_until - warm.start);
                self.events.push(ClusterEvent::Expire {
                    time: now,
                    start: warm.start,
                    paid_until: warm.paid_until,
                    origin: warm.origin,
                });
            } else {
                index += 1;
            }
        }
    }

    /// Releases the cheapest lease (least remaining paid time, ties to the
    /// earliest start, then lowest origin) from `tenant`'s book: closes it
    /// when inside the release window, parks it warm otherwise. Returns
    /// `(deposited, closed)` as 0/1 counts, or `None` on an empty book.
    fn release_one(&mut self, tenant: TenantId, now: f64) -> Option<(u32, u32)> {
        self.ensure_tenant(tenant);
        let book = &mut self.books[tenant];
        let index = book
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                self.model
                    .paid_time_remaining(a.start, now)
                    .total_cmp(&self.model.paid_time_remaining(b.start, now))
                    .then_with(|| a.start.total_cmp(&b.start))
                    .then_with(|| a.origin.cmp(&b.origin))
            })
            .map(|(i, _)| i)?;
        let lease = book.remove(index);
        let window = self.model.interval * self.release_window;
        if self.model.paid_time_remaining(lease.start, now) <= window {
            self.ensure_tenant(lease.origin);
            self.billed[lease.origin] += self.model.billed_duration(now - lease.start);
            self.events.push(ClusterEvent::Close {
                time: now,
                tenant,
                start: lease.start,
                origin: lease.origin,
            });
            Some((0, 1))
        } else {
            let paid_until = lease.start + self.model.billed_duration(now - lease.start);
            self.warm.push(WarmLease {
                start: lease.start,
                origin: lease.origin,
                paid_until,
            });
            self.events.push(ClusterEvent::Deposit {
                time: now,
                tenant,
                start: lease.start,
                origin: lease.origin,
            });
            Some((1, 0))
        }
    }

    /// Moves the warm lease with the most paid time left (ties to the
    /// earliest start, then lowest origin) into `tenant`'s book. Returns
    /// false when the pool is empty.
    fn draw_warm(&mut self, tenant: TenantId, now: f64) -> bool {
        let Some(index) = self
            .warm
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (b.paid_until - now)
                    .total_cmp(&(a.paid_until - now))
                    .then_with(|| a.start.total_cmp(&b.start))
                    .then_with(|| a.origin.cmp(&b.origin))
            })
            .map(|(i, _)| i)
        else {
            return false;
        };
        let warm = self.warm.remove(index);
        self.ensure_tenant(tenant);
        self.books[tenant].push(TenantLease {
            start: warm.start,
            origin: warm.origin,
        });
        self.events.push(ClusterEvent::Draw {
            time: now,
            tenant,
            start: warm.start,
            origin: warm.origin,
        });
        true
    }

    /// Opens a fresh lease for `tenant` at `now`.
    fn open_cold(&mut self, tenant: TenantId, now: f64) {
        self.ensure_tenant(tenant);
        self.books[tenant].push(TenantLease {
            start: now,
            origin: tenant,
        });
        self.events.push(ClusterEvent::Open { time: now, tenant });
    }
}

/// Builds the grant sequence: one proposal index per granted instance, in
/// grant order, honoring the policy and never exceeding `supply`.
fn allocate(
    policy: ArbitrationPolicy,
    proposals: &[TenantProposal],
    supply: u32,
    running: impl Fn(TenantId) -> u32,
) -> Vec<usize> {
    // Outstanding want per proposal after the release phase.
    let mut want: Vec<u32> = proposals
        .iter()
        .map(|p| p.desired.saturating_sub(running(p.tenant)))
        .collect();
    let mut granted: Vec<u32> = vec![0; proposals.len()];
    let mut sequence = Vec::new();
    let mut left = supply;

    match policy {
        ArbitrationPolicy::StrictPriority => {
            // Rank by weight (desc), ties by tenant id (asc).
            let mut order: Vec<usize> = (0..proposals.len()).collect();
            order.sort_by(|&a, &b| {
                sane_weight(proposals[b].weight)
                    .total_cmp(&sane_weight(proposals[a].weight))
                    .then_with(|| proposals[a].tenant.cmp(&proposals[b].tenant))
            });
            for index in order {
                while left > 0 && want[index] > 0 {
                    sequence.push(index);
                    want[index] -= 1;
                    left -= 1;
                }
            }
        }
        ArbitrationPolicy::WeightedFairShare => {
            while left > 0 {
                // Most underserved active proposal: smallest granted/weight,
                // ties to higher weight, then lower tenant id.
                let Some(index) = (0..proposals.len())
                    .filter(|&i| want[i] > 0)
                    .min_by(|&a, &b| {
                        let ka = f64::from(granted[a]) / sane_weight(proposals[a].weight);
                        let kb = f64::from(granted[b]) / sane_weight(proposals[b].weight);
                        ka.total_cmp(&kb)
                            .then_with(|| {
                                sane_weight(proposals[b].weight)
                                    .total_cmp(&sane_weight(proposals[a].weight))
                            })
                            .then_with(|| proposals[a].tenant.cmp(&proposals[b].tenant))
                    })
                else {
                    break;
                };
                sequence.push(index);
                granted[index] += 1;
                want[index] -= 1;
                left -= 1;
            }
        }
        ArbitrationPolicy::CostGreedy => {
            while left > 0 {
                // Highest marginal gain with diminishing returns, ties to
                // lower tenant id.
                let Some(index) = (0..proposals.len())
                    .filter(|&i| want[i] > 0)
                    .max_by(|&a, &b| {
                        let ga = sane_gain(proposals[a].slo_gain) / f64::from(granted[a] + 1);
                        let gb = sane_gain(proposals[b].slo_gain) / f64::from(granted[b] + 1);
                        ga.total_cmp(&gb)
                            .then_with(|| proposals[b].tenant.cmp(&proposals[a].tenant))
                    })
                else {
                    break;
                };
                sequence.push(index);
                granted[index] += 1;
                want[index] -= 1;
                left -= 1;
            }
        }
    }
    sequence
}

/// Weights must be positive and finite to rank; anything else acts as 1.
fn sane_weight(weight: f64) -> f64 {
    if weight.is_finite() && weight > 0.0 {
        weight
    } else {
        1.0
    }
}

/// Gains must be non-negative and finite to rank; anything else acts as 0.
fn sane_gain(gain: f64) -> f64 {
    if gain.is_finite() && gain > 0.0 {
        gain
    } else {
        0.0
    }
}

/// Cluster snapshot format version.
pub const CLUSTER_SNAPSHOT_VERSION: u64 = 1;

/// A failed [`ClusterArbiter::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshotError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ClusterSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster snapshot: {}", self.message)
    }
}

impl std::error::Error for ClusterSnapshotError {}

fn snapshot_error(message: impl Into<String>) -> ClusterSnapshotError {
    ClusterSnapshotError {
        message: message.into(),
    }
}

impl ClusterArbiter {
    /// Encodes the arbiter's complete state — budget, policy, per-tenant
    /// books with origins, warm pool and billed ledgers — as canonical
    /// line-based text. Floats use Rust's shortest round-trip formatting,
    /// so `restore ∘ snapshot` is the identity (the pending event log is
    /// *not* part of the state; drain it before checkpointing).
    pub fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chamulteon-cluster-snapshot {CLUSTER_SNAPSHOT_VERSION}"
        );
        let _ = writeln!(
            out,
            "model {} {} {}",
            self.model.interval, self.model.minimum, self.model.name
        );
        let _ = writeln!(out, "policy {}", self.policy.name());
        let _ = writeln!(out, "budget {}", self.budget);
        let _ = writeln!(out, "release-window {}", self.release_window);
        let mut billed_line = String::from("billed");
        for b in &self.billed {
            let _ = write!(billed_line, " {b}");
        }
        let _ = writeln!(out, "{billed_line}");
        for (tenant, book) in self.books.iter().enumerate() {
            let mut line = format!("book {tenant}");
            for lease in book {
                let _ = write!(line, " {} {}", lease.start, lease.origin);
            }
            let _ = writeln!(out, "{line}");
        }
        let mut warm_line = String::from("warm");
        for w in &self.warm {
            let _ = write!(warm_line, " {} {} {}", w.start, w.origin, w.paid_until);
        }
        let _ = writeln!(out, "{warm_line}");
        out
    }

    /// Rebuilds an arbiter from [`snapshot`](Self::snapshot) text.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterSnapshotError`] on a malformed header, unknown
    /// policy, or any unparsable field.
    pub fn restore(text: &str) -> Result<ClusterArbiter, ClusterSnapshotError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| snapshot_error("empty input"))?;
        let expected = format!("chamulteon-cluster-snapshot {CLUSTER_SNAPSHOT_VERSION}");
        if header.trim() != expected {
            return Err(snapshot_error(format!("bad header: {header:?}")));
        }
        let mut model: Option<ChargingModel> = None;
        let mut policy: Option<ArbitrationPolicy> = None;
        let mut budget: Option<u32> = None;
        let mut release_window: Option<f64> = None;
        let mut billed: Vec<f64> = Vec::new();
        let mut books: Vec<(usize, Vec<TenantLease>)> = Vec::new();
        let mut warm: Vec<WarmLease> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "model" => {
                    let mut parts = rest.splitn(3, ' ');
                    let interval = parse_f64(parts.next(), "model interval")?;
                    let minimum = parse_f64(parts.next(), "model minimum")?;
                    let name = parts.next().unwrap_or("").to_owned();
                    model = Some(ChargingModel {
                        name,
                        interval,
                        minimum,
                    });
                }
                "policy" => {
                    policy = Some(
                        ArbitrationPolicy::from_name(rest)
                            .ok_or_else(|| snapshot_error(format!("unknown policy {rest:?}")))?,
                    );
                }
                "budget" => {
                    budget = Some(
                        rest.parse::<u32>()
                            .map_err(|e| snapshot_error(format!("bad budget: {e}")))?,
                    );
                }
                "release-window" => {
                    release_window = Some(parse_f64(Some(rest), "release window")?);
                }
                "billed" => {
                    for field in rest.split_whitespace() {
                        billed.push(parse_f64(Some(field), "billed entry")?);
                    }
                }
                "book" => {
                    let mut fields = rest.split_whitespace();
                    let tenant = fields
                        .next()
                        .and_then(|f| f.parse::<usize>().ok())
                        .ok_or_else(|| snapshot_error("book without tenant id"))?;
                    let mut leases = Vec::new();
                    while let Some(start_field) = fields.next() {
                        let start = parse_f64(Some(start_field), "lease start")?;
                        let origin = fields
                            .next()
                            .and_then(|f| f.parse::<usize>().ok())
                            .ok_or_else(|| snapshot_error("lease without origin"))?;
                        leases.push(TenantLease { start, origin });
                    }
                    books.push((tenant, leases));
                }
                "warm" => {
                    let mut fields = rest.split_whitespace();
                    while let Some(start_field) = fields.next() {
                        let start = parse_f64(Some(start_field), "warm start")?;
                        let origin = fields
                            .next()
                            .and_then(|f| f.parse::<usize>().ok())
                            .ok_or_else(|| snapshot_error("warm lease without origin"))?;
                        let paid_until = parse_f64(fields.next(), "warm paid-until")?;
                        warm.push(WarmLease {
                            start,
                            origin,
                            paid_until,
                        });
                    }
                }
                other => {
                    return Err(snapshot_error(format!("unknown record {other:?}")));
                }
            }
        }
        let model = model.ok_or_else(|| snapshot_error("missing model record"))?;
        let policy = policy.ok_or_else(|| snapshot_error("missing policy record"))?;
        let budget = budget.ok_or_else(|| snapshot_error("missing budget record"))?;
        let release_window =
            release_window.ok_or_else(|| snapshot_error("missing release-window record"))?;
        let tenant_count = books
            .iter()
            .map(|(t, _)| t + 1)
            .max()
            .unwrap_or(0)
            .max(billed.len());
        let mut book_table: Vec<Vec<TenantLease>> = vec![Vec::new(); tenant_count];
        for (tenant, leases) in books {
            if let Some(slot) = book_table.get_mut(tenant) {
                *slot = leases;
            }
        }
        billed.resize(tenant_count, 0.0);
        Ok(ClusterArbiter {
            model,
            policy,
            budget,
            release_window,
            books: book_table,
            warm,
            billed,
            events: Vec::new(),
        })
    }
}

/// Parses one whitespace-free float field of a snapshot record.
fn parse_f64(field: Option<&str>, what: &str) -> Result<f64, ClusterSnapshotError> {
    field
        .and_then(|f| f.parse::<f64>().ok())
        .ok_or_else(|| snapshot_error(format!("bad or missing {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposal(tenant: TenantId, desired: u32, weight: f64, gain: f64) -> TenantProposal {
        TenantProposal {
            tenant,
            desired,
            weight,
            slo_gain: gain,
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in ArbitrationPolicy::all() {
            assert_eq!(ArbitrationPolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(ArbitrationPolicy::from_name("nonsense"), None);
    }

    #[test]
    fn strict_priority_grants_high_weight_first() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::ec2_hourly(),
            ArbitrationPolicy::StrictPriority,
            5,
            2,
        );
        let verdicts =
            arbiter.arbitrate(0.0, &[proposal(0, 4, 1.0, 0.0), proposal(1, 4, 2.0, 0.0)]);
        // Tenant 1 outranks tenant 0: full grant for 1, remainder for 0.
        assert_eq!(verdicts[1].granted, 4);
        assert_eq!(verdicts[0].granted, 1);
        assert_eq!(arbiter.in_use(), 5);
    }

    #[test]
    fn fair_share_splits_by_weight() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::ec2_hourly(),
            ArbitrationPolicy::WeightedFairShare,
            6,
            2,
        );
        let verdicts =
            arbiter.arbitrate(0.0, &[proposal(0, 10, 1.0, 0.0), proposal(1, 10, 2.0, 0.0)]);
        // 6 instances at weights 1:2 → 2 and 4.
        assert_eq!(verdicts[0].granted, 2);
        assert_eq!(verdicts[1].granted, 4);
    }

    #[test]
    fn cost_greedy_follows_marginal_gain() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::ec2_hourly(),
            ArbitrationPolicy::CostGreedy,
            3,
            2,
        );
        let verdicts =
            arbiter.arbitrate(0.0, &[proposal(0, 10, 1.0, 9.0), proposal(1, 10, 1.0, 4.0)]);
        // Marginal gains 9, 9/2, 9/3 vs 4, 4/2: grants go 9, 9/2, 4.
        assert_eq!(verdicts[0].granted, 2);
        assert_eq!(verdicts[1].granted, 1);
    }

    #[test]
    fn still_paid_release_parks_warm_and_transfers_with_original_start() {
        let model = ChargingModel::ec2_hourly();
        let mut arbiter =
            ClusterArbiter::new(model.clone(), ArbitrationPolicy::StrictPriority, 10, 2);
        // Tenant 0 opens 3 leases at t = 0.
        arbiter.arbitrate(0.0, &[proposal(0, 3, 1.0, 0.0)]);
        // At t = 600 tenant 0 releases 2 (mid-interval: still paid → warm).
        let verdicts = arbiter.arbitrate(600.0, &[proposal(0, 1, 1.0, 0.0)]);
        assert_eq!(verdicts[0].deposited, 2);
        assert_eq!(verdicts[0].closed, 0);
        assert_eq!(arbiter.warm_count(), 2);
        assert_eq!(arbiter.in_use(), 3, "warm instances still consume budget");
        // Tenant 1 scales up: draws warm before opening cold.
        let verdicts = arbiter.arbitrate(1200.0, &[proposal(1, 3, 1.0, 0.0)]);
        assert_eq!(verdicts[0].drawn_warm, 2);
        assert_eq!(verdicts[0].opened_cold, 1);
        // The transferred leases keep their t = 0 start and tenant-0 origin.
        let transferred: Vec<&TenantLease> = arbiter.lease_books()[1]
            .iter()
            .filter(|l| l.origin == 0)
            .collect();
        assert_eq!(transferred.len(), 2);
        assert!(transferred.iter().all(|l| l.start == 0.0));
        // Billing of the transferred leases stays with tenant 0.
        let billed0 = arbiter.billed_instance_seconds(0, 1800.0);
        let billed1 = arbiter.billed_instance_seconds(1, 1800.0);
        assert_eq!(billed0.to_bits(), (3.0f64 * 3600.0).to_bits());
        assert_eq!(billed1.to_bits(), 3600.0f64.to_bits());
    }

    #[test]
    fn release_window_closes_outright() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::ec2_hourly(),
            ArbitrationPolicy::StrictPriority,
            10,
            1,
        );
        arbiter.arbitrate(0.0, &[proposal(0, 2, 1.0, 0.0)]);
        // 59 minutes in: 60 s paid time left (< 10% window) — close, don't park.
        let verdicts = arbiter.arbitrate(3540.0, &[proposal(0, 0, 1.0, 0.0)]);
        assert_eq!(verdicts[0].closed, 2);
        assert_eq!(verdicts[0].deposited, 0);
        assert_eq!(arbiter.warm_count(), 0);
        let billed = arbiter.billed_instance_seconds(0, 3540.0);
        assert_eq!(billed.to_bits(), (2.0f64 * 3600.0).to_bits());
    }

    #[test]
    fn undrawn_warm_lease_expires_and_bills_origin() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::ec2_hourly(),
            ArbitrationPolicy::StrictPriority,
            10,
            2,
        );
        arbiter.arbitrate(0.0, &[proposal(0, 1, 1.0, 0.0)]);
        arbiter.arbitrate(600.0, &[proposal(0, 0, 1.0, 0.0)]);
        assert_eq!(arbiter.warm_count(), 1);
        // Past the paid hour: the warm lease expires at the next cycle.
        let _ = arbiter.arbitrate(4000.0, &[proposal(1, 0, 1.0, 0.0)]);
        assert_eq!(arbiter.warm_count(), 0);
        assert_eq!(arbiter.in_use(), 0);
        let billed = arbiter.billed_instance_seconds(0, 4000.0);
        assert_eq!(billed.to_bits(), 3600.0f64.to_bits());
        let events = arbiter.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ClusterEvent::Expire { origin: 0, .. })));
    }

    #[test]
    fn budget_is_never_exceeded() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::gcp_per_minute(),
            ArbitrationPolicy::WeightedFairShare,
            7,
            3,
        );
        let mut now = 0.0;
        for round in 0..40u32 {
            now += 37.0 * f64::from(round % 5 + 1);
            let desired = [round % 6, (round * 3) % 5, (round * 7) % 4];
            let proposals: Vec<TenantProposal> = desired
                .iter()
                .enumerate()
                .map(|(t, &d)| {
                    let weight = f64::from(u32::try_from(t).unwrap_or(0) + 1);
                    proposal(t, d, weight, f64::from(d))
                })
                .collect();
            let verdicts = arbiter.arbitrate(now, &proposals);
            assert!(arbiter.in_use() <= arbiter.budget(), "round {round}");
            let granted: u32 = verdicts.iter().map(|v| v.granted).sum();
            assert_eq!(granted, arbiter.total_running(), "round {round}");
        }
    }

    #[test]
    fn snapshot_round_trips_and_restores_equivalently() {
        let mut arbiter = ClusterArbiter::new(
            ChargingModel::gcp_per_minute(),
            ArbitrationPolicy::CostGreedy,
            8,
            2,
        );
        arbiter.arbitrate(0.1, &[proposal(0, 3, 1.0, 5.0), proposal(1, 2, 2.0, 3.0)]);
        arbiter.arbitrate(120.1, &[proposal(0, 1, 1.0, 5.0), proposal(1, 4, 2.0, 3.0)]);
        let _ = arbiter.take_events();
        let text = arbiter.snapshot();
        let restored = ClusterArbiter::restore(&text).expect("snapshot decodes");
        assert_eq!(restored, arbiter);
        assert_eq!(restored.snapshot(), text, "encode ∘ restore ∘ encode");
        // Continuations are bit-identical.
        let mut a = arbiter.clone();
        let mut b = restored;
        let next = [proposal(0, 4, 1.0, 5.0), proposal(1, 0, 2.0, 3.0)];
        assert_eq!(a.arbitrate(240.1, &next), b.arbitrate(240.1, &next));
        assert_eq!(
            a.billed_instance_seconds(0, 500.0).to_bits(),
            b.billed_instance_seconds(0, 500.0).to_bits()
        );
        assert_eq!(a.take_events(), b.take_events());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(ClusterArbiter::restore("").is_err());
        assert!(ClusterArbiter::restore("not a snapshot").is_err());
        assert!(ClusterArbiter::restore("chamulteon-cluster-snapshot 99").is_err());
        let valid = ClusterArbiter::new(
            ChargingModel::ec2_hourly(),
            ArbitrationPolicy::StrictPriority,
            4,
            1,
        )
        .snapshot();
        let tampered = valid.replace("policy strict-priority", "policy mystery");
        assert!(ClusterArbiter::restore(&tampered).is_err());
    }
}
