//! Nested auto-scaling: planning the VM pool underneath the containers.
//!
//! The paper's future work (§VI) calls auto-scaling on nested resource
//! layers — "adding a new VM or adding a new container in an existing VM"
//! — "a new challenge on its own". The challenge is a timing one: adding a
//! container is fast *only while a VM slot is free*; once the pool is
//! full, every container scale-up silently inherits the VM boot delay.
//!
//! [`NestedPlanner`] is the decision logic for the VM layer: it keeps the
//! pool sized for the **forecast** container demand plus a headroom of
//! free slots, so that the container layer (driven by Chamulteon as usual)
//! retains its fast provisioning exactly when the load rises. The
//! simulator side lives in `chamulteon_sim::nested`.

/// Plans the VM count for a nested deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedPlanner {
    /// Containers per VM (matches the simulator's pool config).
    pub slots_per_vm: u32,
    /// Free slots to keep available at all times — the buffer that absorbs
    /// container scale-ups while new VMs are still booting.
    pub headroom_slots: u32,
}

impl NestedPlanner {
    /// Creates a planner; `slots_per_vm` is clamped to at least 1.
    pub fn new(slots_per_vm: u32, headroom_slots: u32) -> Self {
        NestedPlanner {
            slots_per_vm: slots_per_vm.max(1),
            headroom_slots,
        }
    }

    /// The VM count to provision: enough slots for the current container
    /// targets, the forecast peak (when the proactive cycle has one), and
    /// the headroom, rounded up to whole VMs — never less than 1.
    ///
    /// `container_targets` are the per-service container counts the
    /// container-layer scaler just decided; `forecast_peak_containers` is
    /// the largest total container count expected over the forecast
    /// horizon, when available.
    pub fn plan(&self, container_targets: &[u32], forecast_peak_containers: Option<u32>) -> u32 {
        let current: u32 = container_targets.iter().sum();
        let future = forecast_peak_containers.unwrap_or(0);
        let needed_slots = current.max(future).saturating_add(self.headroom_slots);
        needed_slots.div_ceil(self.slots_per_vm).max(1)
    }

    /// Convenience: the forecast peak container total implied by a set of
    /// per-interval per-service target vectors (e.g. the proactive cycle's
    /// chained decisions over its horizon).
    pub fn forecast_peak(plans: &[Vec<u32>]) -> Option<u32> {
        plans.iter().map(|p| p.iter().sum()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_current_targets() {
        let p = NestedPlanner::new(4, 0);
        assert_eq!(p.plan(&[3, 5, 2], None), 3); // 10 slots -> 3 VMs
        assert_eq!(p.plan(&[4, 4], None), 2); // exact fit
        assert_eq!(p.plan(&[], None), 1); // floor of one VM
    }

    #[test]
    fn headroom_adds_spare_slots() {
        let p = NestedPlanner::new(4, 4);
        // 10 containers + 4 headroom = 14 slots -> 4 VMs.
        assert_eq!(p.plan(&[10], None), 4);
    }

    #[test]
    fn forecast_peak_dominates_when_larger() {
        let p = NestedPlanner::new(4, 0);
        assert_eq!(p.plan(&[2, 2], Some(17)), 5);
        // Smaller forecast than current: current wins.
        assert_eq!(p.plan(&[10, 10], Some(5)), 5);
    }

    #[test]
    fn forecast_peak_helper() {
        let plans = vec![vec![2, 3, 1], vec![5, 8, 3], vec![4, 6, 2]];
        assert_eq!(NestedPlanner::forecast_peak(&plans), Some(16));
        assert_eq!(NestedPlanner::forecast_peak(&[]), None);
    }

    #[test]
    fn zero_slots_clamped() {
        let p = NestedPlanner::new(0, 0);
        assert_eq!(p.slots_per_vm, 1);
        assert_eq!(p.plan(&[5], None), 5);
    }
}
