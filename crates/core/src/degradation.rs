//! The graceful-degradation ladder: what the controller does when its
//! environment misbehaves, and the record it keeps of every degraded step.
//!
//! The Chamulteon reproduction treats robustness as a *ladder*, not a
//! cliff. When monitoring or actuation degrades, the controller walks down
//! one rung at a time instead of panicking:
//!
//! 1. **Validate at the boundary** — raw monitoring readings are checked
//!    by `MonitoringSample::from_observed`; NaN, negative or non-finite
//!    values are quarantined before any estimator sees them. Readings
//!    that pass field validation but report an implausibly spiked arrival
//!    rate are rejected by the [`SpikeGate`] — unless the spike persists,
//!    in which case it is accepted as a genuine load shift.
//! 2. **Hold the last good sample** — a quarantined or missing sample is
//!    replaced by the service's most recent valid one.
//! 3. **Synthesize** — with no history at all, a zero-arrival stand-in
//!    keeps the tick well-formed.
//! 4. **Proactive over reactive** — a stale entry rate is excluded from
//!    the forecast history; the active forecast keeps driving decisions
//!    through monitoring dropouts.
//! 5. **Hold the last decision** — when *every* sample is degraded, the
//!    previous targets are re-issued rather than scaling on fiction.
//! 6. **Bounded retry** — transient actuation failures are retried with
//!    capped exponential backoff ([`RetryPolicy`]) and then abandoned.
//!
//! Every rung taken is recorded as a [`DegradationEvent`] in a
//! [`DegradationLog`], so experiments can report *how often* a scaler ran
//! degraded next to *how well* it scaled.

use chamulteon_demand::MonitoringSample;

/// One rung of the degradation ladder, taken at a specific decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationReason {
    /// A raw monitoring reading failed boundary validation (NaN, negative
    /// or non-finite fields) and was discarded.
    SampleQuarantined {
        /// The service whose sample was discarded.
        service: usize,
    },
    /// A sample passed field validation but reported an arrival rate
    /// implausibly far above the last accepted one (a spike) and was
    /// rejected by the [`SpikeGate`].
    SampleImplausible {
        /// The service whose sample was rejected.
        service: usize,
    },
    /// A missing or quarantined sample was replaced by the service's last
    /// valid one.
    SampleHeld {
        /// The service whose sample was substituted.
        service: usize,
    },
    /// No valid sample was ever seen for the service; a zero-arrival
    /// stand-in was synthesized.
    SampleSynthesized {
        /// The service whose sample was synthesized.
        service: usize,
    },
    /// The entry service's arrival rate was not freshly measured this
    /// tick, so the observation was excluded from the forecast history.
    EntryRateUnusable,
    /// The forecaster could not produce a forecast from the available
    /// history; the proactive cycle sat this round out.
    ForecastFailed,
    /// Every service's sample was degraded; the previous targets were
    /// re-issued unchanged.
    HeldLastDecision,
    /// A scaling command failed transiently and was retried.
    ActuationRetried {
        /// The service whose actuation was retried.
        service: usize,
        /// Zero-based retry number (0 = first retry).
        attempt: u32,
    },
    /// A scaling command kept failing past the retry budget and was
    /// abandoned for this tick.
    ActuationAbandoned {
        /// The service whose actuation was abandoned.
        service: usize,
    },
}

impl DegradationReason {
    /// Stable snake_case code for reports, traces and chaos tests —
    /// matching on this, not on debug formatting, is the supported way
    /// to identify a rung.
    pub fn as_code(&self) -> &'static str {
        match self {
            DegradationReason::SampleQuarantined { .. } => "sample_quarantined",
            DegradationReason::SampleImplausible { .. } => "sample_implausible",
            DegradationReason::SampleHeld { .. } => "sample_held",
            DegradationReason::SampleSynthesized { .. } => "sample_synthesized",
            DegradationReason::EntryRateUnusable => "entry_rate_unusable",
            DegradationReason::ForecastFailed => "forecast_failed",
            DegradationReason::HeldLastDecision => "held_last_decision",
            DegradationReason::ActuationRetried { .. } => "actuation_retried",
            DegradationReason::ActuationAbandoned { .. } => "actuation_abandoned",
        }
    }

    /// The service the rung concerns, when it is per-service.
    pub fn service(&self) -> Option<usize> {
        match self {
            DegradationReason::SampleQuarantined { service }
            | DegradationReason::SampleImplausible { service }
            | DegradationReason::SampleHeld { service }
            | DegradationReason::SampleSynthesized { service }
            | DegradationReason::ActuationRetried { service, .. }
            | DegradationReason::ActuationAbandoned { service } => Some(*service),
            DegradationReason::EntryRateUnusable
            | DegradationReason::ForecastFailed
            | DegradationReason::HeldLastDecision => None,
        }
    }

    /// The retry attempt number, for the actuation-retry rung.
    pub fn attempt(&self) -> Option<u32> {
        match self {
            DegradationReason::ActuationRetried { attempt, .. } => Some(*attempt),
            _ => None,
        }
    }

    /// The inverse of [`as_code`](Self::as_code) /
    /// [`service`](Self::service) / [`attempt`](Self::attempt): rebuilds
    /// a reason from its decomposed parts, rejecting unknown codes and
    /// per-service codes missing their service. Used when decoding a
    /// controller snapshot.
    pub(crate) fn from_parts(
        code: &str,
        service: Option<usize>,
        attempt: Option<u32>,
    ) -> Option<Self> {
        match (code, service) {
            ("sample_quarantined", Some(service)) => {
                Some(DegradationReason::SampleQuarantined { service })
            }
            ("sample_implausible", Some(service)) => {
                Some(DegradationReason::SampleImplausible { service })
            }
            ("sample_held", Some(service)) => Some(DegradationReason::SampleHeld { service }),
            ("sample_synthesized", Some(service)) => {
                Some(DegradationReason::SampleSynthesized { service })
            }
            ("entry_rate_unusable", None) => Some(DegradationReason::EntryRateUnusable),
            ("forecast_failed", None) => Some(DegradationReason::ForecastFailed),
            ("held_last_decision", None) => Some(DegradationReason::HeldLastDecision),
            ("actuation_retried", Some(service)) => Some(DegradationReason::ActuationRetried {
                service,
                attempt: attempt?,
            }),
            ("actuation_abandoned", Some(service)) => {
                Some(DegradationReason::ActuationAbandoned { service })
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_code())
    }
}

/// A [`DegradationReason`] stamped with the decision time it occurred at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationEvent {
    /// Decision time in seconds.
    pub time: f64,
    /// Which rung of the ladder was taken.
    pub reason: DegradationReason,
}

/// An append-only record of every degraded decision, kept by the
/// controller and mergeable with the experiment harness's own entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationLog {
    events: Vec<DegradationEvent>,
}

impl DegradationLog {
    /// An empty log.
    pub fn new() -> Self {
        DegradationLog::default()
    }

    /// Appends one event.
    pub fn record(&mut self, time: f64, reason: DegradationReason) {
        self.events.push(DegradationEvent { time, reason });
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing degraded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Absorbs another log's events (e.g. the harness's actuation-retry
    /// entries into the controller's monitoring entries).
    pub fn merge(&mut self, other: DegradationLog) {
        self.events.extend(other.events);
    }

    /// How many events match a predicate on the reason.
    pub fn count_matching(&self, predicate: impl Fn(&DegradationReason) -> bool) -> usize {
        self.events.iter().filter(|e| predicate(&e.reason)).count()
    }
}

/// Bounded retry with capped exponential backoff for transient actuation
/// failures (ladder rung 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per command, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff: f64,
    /// Upper bound on any single backoff, in seconds.
    pub max_backoff: f64,
}

impl Default for RetryPolicy {
    /// Three attempts, 2 s initial backoff, 30 s cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: 2.0,
            max_backoff: 30.0,
        }
    }
}

impl RetryPolicy {
    /// Creates a sanitized policy: at least one attempt, non-negative
    /// finite backoffs, cap no smaller than the base.
    pub fn new(max_attempts: u32, base_backoff: f64, max_backoff: f64) -> Self {
        let base = if base_backoff.is_finite() {
            base_backoff.max(0.0)
        } else {
            RetryPolicy::default().base_backoff
        };
        let cap = if max_backoff.is_finite() {
            max_backoff.max(base)
        } else {
            f64::MAX
        };
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: base,
            max_backoff: cap,
        }
    }

    /// A policy that never retries (one attempt, no backoff).
    pub fn no_retries() -> Self {
        RetryPolicy::new(1, 0.0, 0.0)
    }

    /// The backoff in seconds before retry number `attempt` (0-based):
    /// `min(base · 2^attempt, cap)`. Always finite, non-negative and
    /// monotone non-decreasing in `attempt`, even for a policy whose
    /// public fields were set directly to NaN/∞/negative values instead
    /// of going through the sanitizing [`new`](RetryPolicy::new): the
    /// same field sanitization is applied here, so a degenerate field
    /// can stall a retry loop at a zero backoff but never poison the
    /// simulated clock with a non-finite advance.
    pub fn backoff(&self, attempt: u32) -> f64 {
        let base = if self.base_backoff.is_finite() {
            self.base_backoff.max(0.0)
        } else {
            0.0
        };
        let cap = if self.max_backoff.is_finite() {
            self.max_backoff.max(0.0)
        } else {
            f64::MAX
        };
        // 2^1024 overflows f64; clamping the exponent keeps the power
        // finite and the `min` below then applies the real cap.
        let exponent = i32::try_from(attempt.min(1023)).unwrap_or(1023);
        let raw = base * 2.0_f64.powi(exponent);
        if raw.is_finite() {
            raw.min(cap)
        } else {
            cap
        }
    }

    /// Runs `op` up to [`max_attempts`](RetryPolicy::max_attempts) times,
    /// passing the 0-based attempt number. Returns the number of attempts
    /// used on success, or the last error once the budget is exhausted.
    /// No pause happens between attempts — callers that need to advance a
    /// simulated clock interleave [`backoff`](RetryPolicy::backoff)
    /// themselves.
    ///
    /// # Errors
    ///
    /// Propagates `op`'s final error after `max_attempts` failures.
    pub fn run<E>(&self, op: impl FnMut(u32) -> Result<(), E>) -> Result<u32, E> {
        self.run_observed(&chamulteon_obs::DISABLED_METRICS, op)
    }

    /// [`run`](RetryPolicy::run), additionally feeding the obs metrics
    /// registry: `actuation.attempts` counts every call of `op`,
    /// `actuation.retries` every failed attempt that gets another try,
    /// and `actuation.abandoned` every command that exhausts the budget.
    ///
    /// # Errors
    ///
    /// Propagates `op`'s final error after `max_attempts` failures.
    pub fn run_observed<E>(
        &self,
        metrics: &chamulteon_obs::MetricsRegistry,
        mut op: impl FnMut(u32) -> Result<(), E>,
    ) -> Result<u32, E> {
        let mut attempt = 0u32;
        loop {
            metrics.increment("actuation.attempts");
            match op(attempt) {
                Ok(()) => return Ok(attempt + 1),
                Err(e) if attempt + 1 >= self.max_attempts => {
                    metrics.increment("actuation.abandoned");
                    return Err(e);
                }
                Err(_) => {
                    metrics.increment("actuation.retries");
                    attempt += 1;
                }
            }
        }
    }
}

/// Largest plausible ratio between consecutive accepted arrival rates —
/// a reported rate more than this factor above the last accepted one is
/// treated as a corrupted spike, not a real load change.
pub const SPIKE_RATE_FACTOR: f64 = 4.0;

/// Rates below this floor (requests per second) never trip the spike
/// check: at near-idle load, large *relative* jumps are routine.
pub const SPIKE_RATE_FLOOR: f64 = 10.0;

/// After this many consecutive over-limit readings the gate yields: a
/// spike that persists is a genuine load shift (e.g. a flash crowd), and
/// holding it out any longer would starve the scaler of real demand.
pub const SPIKE_PERSISTENCE: u32 = 3;

/// Per-service plausibility gate for arrival rates (part of ladder
/// rung 1): corrupted spikes pass field validation — the numbers are
/// finite and positive — but would poison the demand estimator, so the
/// gate rejects any rate more than [`SPIKE_RATE_FACTOR`] above the last
/// accepted one. A rejected level that persists for
/// [`SPIKE_PERSISTENCE`] consecutive readings is accepted as a real load
/// shift.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpikeGate {
    last_rate: Option<f64>,
    streak: u32,
}

impl SpikeGate {
    /// A gate with no history (the first reading is always admitted).
    pub fn new() -> Self {
        SpikeGate::default()
    }

    /// Unconditionally accepts a trusted rate as the new baseline (the
    /// validated `tick` path keeps the gate in sync this way).
    pub fn reset_to(&mut self, rate: f64) {
        self.last_rate = Some(rate);
        self.streak = 0;
    }

    /// Decides whether a validated sample's arrival rate is plausible.
    /// Admitted rates become the new comparison baseline; rejected ones
    /// count toward the persistence override.
    pub fn admit(&mut self, rate: f64) -> bool {
        let plausible = match self.last_rate {
            None => true,
            Some(prev) => rate <= SPIKE_RATE_FACTOR * prev.max(SPIKE_RATE_FLOOR),
        };
        if plausible || self.streak + 1 >= SPIKE_PERSISTENCE {
            self.last_rate = Some(rate);
            self.streak = 0;
            true
        } else {
            self.streak += 1;
            false
        }
    }

    /// The gate's full state — `(last accepted rate, rejection streak)` —
    /// for the controller's crash-recovery snapshot.
    pub(crate) fn state(&self) -> (Option<f64>, u32) {
        (self.last_rate, self.streak)
    }

    /// Rebuilds a gate from captured state, verbatim.
    pub(crate) fn restore(last_rate: Option<f64>, streak: u32) -> Self {
        SpikeGate { last_rate, streak }
    }
}

/// What the controller is given for one service on a degraded tick — the
/// input type of `Chamulteon::tick_observed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Observation {
    /// The monitoring sample never arrived.
    Missing,
    /// A sample that already passed validation.
    Sample(MonitoringSample),
    /// Raw readings from an untrusted pipeline; validated at the boundary
    /// via `MonitoringSample::from_observed` and quarantined on failure.
    Raw {
        /// Reported window length in seconds.
        duration: f64,
        /// Reported arrivals (may be NaN/negative when corrupted).
        arrivals: f64,
        /// Reported completions (may be NaN/negative when corrupted).
        completions: f64,
        /// Reported utilization.
        utilization: f64,
        /// Reported running instances.
        instances: u32,
        /// Reported mean response time, when measured.
        mean_response_time: Option<f64>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_merges() {
        let mut a = DegradationLog::new();
        assert!(a.is_empty());
        a.record(60.0, DegradationReason::SampleQuarantined { service: 0 });
        a.record(120.0, DegradationReason::EntryRateUnusable);
        let mut b = DegradationLog::new();
        b.record(
            120.0,
            DegradationReason::ActuationRetried {
                service: 1,
                attempt: 0,
            },
        );
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.events()[2].time, 120.0);
        assert_eq!(
            a.count_matching(|r| matches!(r, DegradationReason::ActuationRetried { .. })),
            1
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new(5, 2.0, 30.0);
        assert_eq!(p.backoff(0), 2.0);
        assert_eq!(p.backoff(1), 4.0);
        assert_eq!(p.backoff(2), 8.0);
        assert_eq!(p.backoff(3), 16.0);
        assert_eq!(p.backoff(4), 30.0, "capped");
        assert_eq!(p.backoff(100), 30.0, "no overflow at huge attempts");
        assert_eq!(p.backoff(u32::MAX), 30.0);
    }

    #[test]
    fn policy_sanitizes_inputs() {
        let p = RetryPolicy::new(0, -1.0, -5.0);
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.base_backoff, 0.0);
        assert_eq!(p.max_backoff, 0.0);
        let p = RetryPolicy::new(2, f64::NAN, 1.0);
        assert_eq!(p.base_backoff, RetryPolicy::default().base_backoff);
        let p = RetryPolicy::new(2, 10.0, 1.0);
        assert_eq!(p.max_backoff, 10.0, "cap raised to the base");
    }

    #[test]
    fn spike_gate_rejects_jumps_and_yields_to_persistence() {
        let mut gate = SpikeGate::new();
        assert!(gate.admit(100.0), "first reading always admitted");
        assert!(gate.admit(150.0), "modest growth is fine");
        assert!(!gate.admit(1500.0), "10x jump rejected");
        assert!(gate.admit(160.0), "normal rate still flows after a spike");
        // A persistent elevated level is a real load shift: rejected
        // twice, admitted on the third consecutive sighting.
        assert!(!gate.admit(1500.0));
        assert!(!gate.admit(1490.0));
        assert!(gate.admit(1510.0), "persistence override");
        assert!(gate.admit(1400.0), "baseline moved to the new level");
    }

    #[test]
    fn spike_gate_ignores_low_rate_noise() {
        let mut gate = SpikeGate::new();
        assert!(gate.admit(0.1));
        // 50x relative jump, but under the floor's multiple: admitted.
        assert!(gate.admit(5.0));
        assert!(gate.admit(39.0), "just under 4x the 10 req/s floor");
        assert!(!gate.admit(250.0), "above 4x the 39 baseline");
    }

    #[test]
    fn reason_codes_are_stable() {
        let cases = [
            (
                DegradationReason::SampleQuarantined { service: 2 },
                "sample_quarantined",
                Some(2),
                None,
            ),
            (
                DegradationReason::SampleImplausible { service: 0 },
                "sample_implausible",
                Some(0),
                None,
            ),
            (
                DegradationReason::SampleHeld { service: 1 },
                "sample_held",
                Some(1),
                None,
            ),
            (
                DegradationReason::SampleSynthesized { service: 3 },
                "sample_synthesized",
                Some(3),
                None,
            ),
            (
                DegradationReason::EntryRateUnusable,
                "entry_rate_unusable",
                None,
                None,
            ),
            (
                DegradationReason::ForecastFailed,
                "forecast_failed",
                None,
                None,
            ),
            (
                DegradationReason::HeldLastDecision,
                "held_last_decision",
                None,
                None,
            ),
            (
                DegradationReason::ActuationRetried {
                    service: 4,
                    attempt: 1,
                },
                "actuation_retried",
                Some(4),
                Some(1),
            ),
            (
                DegradationReason::ActuationAbandoned { service: 5 },
                "actuation_abandoned",
                Some(5),
                None,
            ),
        ];
        for (reason, code, service, attempt) in cases {
            assert_eq!(reason.as_code(), code);
            assert_eq!(reason.to_string(), code);
            assert_eq!(reason.service(), service);
            assert_eq!(reason.attempt(), attempt);
        }
    }

    #[test]
    fn run_observed_counts_attempts_retries_and_abandons() {
        let metrics = chamulteon_obs::MetricsRegistry::new();
        let p = RetryPolicy::new(3, 0.0, 0.0);
        // Success on the second attempt: 2 attempts, 1 retry.
        p.run_observed(&metrics, |a| if a >= 1 { Ok(()) } else { Err(()) })
            .unwrap();
        assert_eq!(metrics.counter_value("actuation.attempts"), Some(2));
        assert_eq!(metrics.counter_value("actuation.retries"), Some(1));
        assert_eq!(metrics.counter_value("actuation.abandoned"), None);
        // Exhausted budget: 3 more attempts, 2 more retries, 1 abandon.
        let _ = p.run_observed(&metrics, |_| Err::<(), ()>(()));
        assert_eq!(metrics.counter_value("actuation.attempts"), Some(5));
        assert_eq!(metrics.counter_value("actuation.retries"), Some(3));
        assert_eq!(metrics.counter_value("actuation.abandoned"), Some(1));
    }

    #[test]
    fn run_retries_until_success_or_budget() {
        let p = RetryPolicy::new(3, 0.0, 0.0);
        // Succeeds on the third (last) attempt.
        let attempts = p
            .run(|a| if a >= 2 { Ok(()) } else { Err("transient") })
            .unwrap();
        assert_eq!(attempts, 3);
        // Never succeeds: the final error comes back after 3 attempts.
        let mut calls = 0;
        let err = p
            .run(|_| -> Result<(), &str> {
                calls += 1;
                Err("down")
            })
            .unwrap_err();
        assert_eq!(err, "down");
        assert_eq!(calls, 3);
        // First-try success uses one attempt.
        assert_eq!(p.run(|_| Ok::<(), ()>(())).unwrap(), 1);
    }
}
