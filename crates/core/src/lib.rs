//! **Chamulteon** — coordinated auto-scaling of micro-services
//! (Bauer et al., ICDCS 2019) — the paper's primary contribution.
//!
//! Chamulteon is a hybrid auto-scaler for applications composed of multiple
//! services. It redesigns the single-service Chameleon scaler around four
//! components (§III-A, Fig. 1):
//!
//! * a **performance data repository** — arrival-rate history plus a
//!   descriptive performance model (`chamulteon-perfmodel`) carrying the
//!   invocation graph,
//! * a **forecasting component** — the Telescope-style hybrid forecaster
//!   (`chamulteon-forecast`), invoked on demand: only when the previous
//!   forecast is exhausted or a MASE drift is detected,
//! * a **service demand estimation component** — the Service Demand Law
//!   estimator (`chamulteon-demand`),
//! * a **cost-awareness component (FOX)** — reviews scale-downs against the
//!   cloud charging model ([`fox`]).
//!
//! Two independent cycles make decisions ([`controller::Chamulteon`]):
//! the **reactive cycle** sizes every service from *measured* arrival
//! rates each short interval, and the **proactive cycle** sizes them from
//! *forecast* rates for a window of future intervals (Algorithm 1,
//! [`algorithm::proactive_decisions`]). Both propagate the entry rate
//! through the invocation graph so downstream services scale *with* their
//! predecessors instead of after them — removing bottleneck shifting and
//! oscillations. Conflicts between the cycles are resolved by decision
//! scope and forecast recency ([`decision::DecisionStore`], §III-C).
//!
//! # Example
//!
//! ```
//! use chamulteon::{Chamulteon, ChamulteonConfig};
//! use chamulteon_demand::MonitoringSample;
//! use chamulteon_perfmodel::ApplicationModel;
//!
//! let model = ApplicationModel::paper_benchmark();
//! let mut scaler = Chamulteon::new(model, ChamulteonConfig::default());
//! // One 60 s monitoring window: 1200 requests at the entry, 3 services.
//! let samples = vec![
//!     MonitoringSample::new(60.0, 1200, 0.6, 2, Some(0.08))?,
//!     MonitoringSample::new(60.0, 1200, 0.9, 2, Some(0.25))?,
//!     MonitoringSample::new(60.0, 1200, 0.4, 2, Some(0.05))?,
//! ];
//! let targets = scaler.tick(60.0, &samples);
//! assert_eq!(targets.len(), 3);
//! # Ok::<(), chamulteon_demand::DemandError>(())
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

/// Algorithm 1 of the paper: the queueing-theoretic decision logic.
pub mod algorithm;
/// Multi-tenant cluster arbitration with a FOX-aware warm pool.
pub mod cluster;
/// Chamulteon configuration.
pub mod config;
/// The Chamulteon controller: both cycles, wired together.
pub mod controller;
/// Scaling decisions and the conflict resolution of §III-C.
pub mod decision;
/// The graceful-degradation ladder for missing or stale inputs.
pub mod degradation;
/// FOX — the cost-awareness component (Lesch et al., ICPE 2018; §III-A3).
pub mod fox;
/// Nested auto-scaling: planning the VM pool underneath the containers.
pub mod nested;
/// Crash-recovery snapshots: versioned, byte-stable controller state.
pub mod snapshot;
/// Hybrid vertical + horizontal scaling (the paper's first future-work item).
pub mod vertical;

pub use algorithm::{
    proactive_decisions, proactive_decisions_cached, proactive_decisions_staged, SizingCell,
};
pub use cluster::{
    ArbitrationPolicy, ClusterArbiter, ClusterEvent, ClusterSnapshotError, TenantId, TenantLease,
    TenantProposal, TenantVerdict, WarmLease, CLUSTER_SNAPSHOT_VERSION,
};
pub use config::ChamulteonConfig;
pub use controller::Chamulteon;
pub use decision::{DecisionOrigin, DecisionStore, ScalingDecision};
pub use degradation::{
    DegradationEvent, DegradationLog, DegradationReason, Observation, RetryPolicy, SpikeGate,
};
pub use fox::{ChargingModel, Fox};
pub use nested::NestedPlanner;
pub use snapshot::{ControllerSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use vertical::{hybrid_decisions, HybridDecision, InstanceSize, VerticalPolicy};
