//! The Chamulteon controller: both cycles, wired together.

use crate::algorithm::{
    proactive_decisions_cached, proactive_decisions_cached_traced, SizingTrace,
};
use crate::config::ChamulteonConfig;
use crate::decision::{DecisionOrigin, DecisionStore, ScalingDecision};
use crate::degradation::{DegradationLog, DegradationReason, Observation, SpikeGate};
use crate::fox::{ChargingModel, Fox};
use crate::snapshot::{
    ControllerSnapshot, EstimatorState, ForecastState, FoxState, HistoryState, SnapshotError,
};
use chamulteon_demand::{MonitoringSample, RollingDemandEstimator};
use chamulteon_forecast::{DriftDetector, Forecaster, TelescopeForecaster, TimeSeries};
use chamulteon_obs::{Event, EventKind, Obs, PhaseTimer, Provenance, Winner};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::{CacheStats, CapacityCache};

/// The forecast currently driving the proactive cycle.
#[derive(Debug, Clone)]
struct ActiveForecast {
    /// Index into the entry history at which the forecast was made (its
    /// first predicted value corresponds to this history index).
    made_at: usize,
    /// Predicted entry arrival rates, one per future tick.
    values: Vec<f64>,
    /// Generation counter at which this forecast was produced.
    generation: u64,
    /// Whether the forecast passed the trust (MASE) threshold.
    trusted: bool,
}

/// The coordinated multi-service auto-scaler.
///
/// Drive it by calling [`tick`](Chamulteon::tick) once per scaling
/// interval with one [`MonitoringSample`] per service; it returns the
/// target instance count per service. See the crate docs for the overall
/// architecture.
#[derive(Debug, Clone)]
pub struct Chamulteon {
    model: ApplicationModel,
    config: ChamulteonConfig,
    /// Memoizes the Algorithm-1 utilization inversions; cloning a
    /// controller (checkpointing) carries the warm cache along.
    capacity_cache: CapacityCache,
    demand_estimators: Vec<RollingDemandEstimator>,
    entry_history: Option<TimeSeries>,
    forecaster: TelescopeForecaster,
    drift: DriftDetector,
    store: DecisionStore,
    forecast_generation: u64,
    active_forecast: Option<ActiveForecast>,
    fox: Option<Fox>,
    forecasts_made: u64,
    // Degradation-ladder state.
    degradation: DegradationLog,
    last_good_samples: Vec<Option<MonitoringSample>>,
    spike_gates: Vec<SpikeGate>,
    last_targets: Option<Vec<u32>>,
    /// Observability bundle: event recorder + metrics registry. Disabled
    /// by default, in which case every emission point is one branch.
    obs: Obs,
    /// 1-based control-cycle counter (ties trace events to cycles).
    ticks: u64,
}

impl Chamulteon {
    /// Creates a controller for `model`.
    pub fn new(model: ApplicationModel, config: ChamulteonConfig) -> Self {
        let config = config.sanitized();
        let demand_estimators = model
            .services()
            .iter()
            .map(|s| {
                RollingDemandEstimator::new(
                    config.demand_window,
                    config.demand_smoothing,
                    s.nominal_demand(),
                )
            })
            .collect();
        Chamulteon {
            drift: DriftDetector::new(config.drift_threshold),
            capacity_cache: CapacityCache::new(),
            demand_estimators,
            entry_history: None,
            forecaster: TelescopeForecaster::default(),
            store: DecisionStore::new(),
            forecast_generation: 0,
            active_forecast: None,
            fox: None,
            forecasts_made: 0,
            degradation: DegradationLog::new(),
            last_good_samples: vec![None; model.service_count()],
            spike_gates: vec![SpikeGate::new(); model.service_count()],
            last_targets: None,
            obs: Obs::disabled(),
            ticks: 0,
            model,
            config,
        }
    }

    /// Attaches an observability bundle (builder form): decision
    /// provenance and cycle events flow to its recorder, counters and
    /// phase timings to its metrics registry. Instrumentation never
    /// changes a decision (pinned by the bit-identity tests).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the observability bundle in place.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The observability bundle in use.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attaches the FOX cost-awareness component ("This component, if
    /// activated, reviews all decisions proposed by the Controller").
    pub fn with_fox(mut self, charging: ChargingModel) -> Self {
        self.fox = Some(Fox::new(charging, self.model.service_count()));
        self
    }

    /// The application model being scaled.
    pub fn model(&self) -> &ApplicationModel {
        &self.model
    }

    /// The active configuration (sanitized).
    pub fn config(&self) -> &ChamulteonConfig {
        &self.config
    }

    /// The current per-service demand estimates in seconds per request.
    pub fn estimated_demands(&self) -> Vec<f64> {
        self.demand_estimators
            .iter()
            .map(|e| e.current_demand())
            .collect()
    }

    /// How many forecasts have been produced so far (the drift logic makes
    /// this far smaller than the tick count).
    pub fn forecasts_made(&self) -> u64 {
        self.forecasts_made
    }

    /// Hit/miss counters of the capacity memo cache serving Algorithm 1's
    /// sizing queries (each proactive round issues `horizon × services`
    /// inversions, so steady load makes this overwhelmingly hits).
    pub fn capacity_cache_stats(&self) -> CacheStats {
        self.capacity_cache.stats()
    }

    /// Total billed instance seconds, when FOX is attached.
    pub fn billed_instance_seconds(&self, now: f64) -> Option<f64> {
        self.fox.as_ref().map(|f| f.billed_instance_seconds(now))
    }

    /// Seeds the arrival-rate history with pre-experiment observations —
    /// the paper's assumption (i): "To obtain good forecasts with a model
    /// of the seasonal pattern, the availability of two days of historical
    /// data is required" (§III-D). `interval` is the sampling step of the
    /// provided rates and must match the later tick interval.
    ///
    /// Non-finite rates are skipped. Calling this after ticking resets the
    /// history to the preloaded values.
    pub fn preload_history(&mut self, interval: f64, rates: &[f64]) {
        let Ok(mut history) = TimeSeries::from_values(interval.max(1e-9), vec![]) else {
            return;
        };
        for &r in rates {
            if r.is_finite() {
                let _ = history.push(r.max(0.0));
            }
        }
        self.entry_history = Some(history);
        self.active_forecast = None;
    }

    /// The controller's record of every degraded decision so far (see
    /// [`crate::degradation`]).
    pub fn degradation(&self) -> &DegradationLog {
        &self.degradation
    }

    /// Takes the degradation log, leaving an empty one — for merging into
    /// an experiment-level record.
    pub fn take_degradation(&mut self) -> DegradationLog {
        std::mem::take(&mut self.degradation)
    }

    /// Captures every piece of mutable state that can influence a future
    /// decision into a [`ControllerSnapshot`] (see [`crate::snapshot`]
    /// for what is and is not included). Pure read: taking a snapshot
    /// never changes subsequent behavior.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            services: self.model.service_count(),
            ticks: self.ticks,
            forecast_generation: self.forecast_generation,
            forecasts_made: self.forecasts_made,
            estimators: self
                .demand_estimators
                .iter()
                .map(|e| EstimatorState {
                    capacity: e.window_capacity(),
                    smoothing: e.smoothing(),
                    current: e.current_demand(),
                    initialized: e.is_initialized(),
                    window: e.window_samples(),
                })
                .collect(),
            entry_history: self.entry_history.as_ref().map(|h| HistoryState {
                step: h.step(),
                start: h.start(),
                values: h.values().to_vec(),
            }),
            active_forecast: self.active_forecast.as_ref().map(|f| ForecastState {
                made_at: f.made_at,
                generation: f.generation,
                trusted: f.trusted,
                values: f.values.clone(),
            }),
            decisions: self.store.proactive().to_vec(),
            fox: self.fox.as_ref().map(|f| FoxState {
                model: f.model().clone(),
                release_window: f.release_window(),
                billed_released: f.billed_released(),
                leases: f.lease_books().to_vec(),
            }),
            spike_gates: self.spike_gates.iter().map(SpikeGate::state).collect(),
            last_good_samples: self.last_good_samples.clone(),
            last_targets: self.last_targets.clone(),
            degradation: self.degradation.events().to_vec(),
        }
    }

    /// Rebuilds a controller from a snapshot: the recovery-equivalence
    /// contract is that the result makes bit-identical decisions (FOX
    /// ledger included) to the controller the snapshot was taken from.
    /// `model` and `config` must be the ones the crashed controller ran
    /// with — they are deliberately *not* part of the snapshot, so a
    /// deployment can keep them in configuration management rather than
    /// in every checkpoint. The capacity cache starts cold (latency, not
    /// decisions) and the obs bundle starts disabled
    /// ([`set_obs`](Chamulteon::set_obs) re-attaches a sink).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Inconsistent`] when the snapshot's service count
    /// or per-service vectors disagree with `model`, or its entry history
    /// fails validation.
    pub fn restore(
        model: ApplicationModel,
        config: ChamulteonConfig,
        snapshot: &ControllerSnapshot,
    ) -> Result<Self, SnapshotError> {
        let services = model.service_count();
        if snapshot.services != services {
            return Err(SnapshotError::Inconsistent {
                message: format!(
                    "snapshot of {} services restored into a {services}-service model",
                    snapshot.services
                ),
            });
        }
        let per_service = |what: &str, len: usize| -> Result<(), SnapshotError> {
            if len == services {
                Ok(())
            } else {
                Err(SnapshotError::Inconsistent {
                    message: format!("{len} {what} records for {services} services"),
                })
            }
        };
        per_service("estimator", snapshot.estimators.len())?;
        per_service("spike-gate", snapshot.spike_gates.len())?;
        per_service("held-sample", snapshot.last_good_samples.len())?;
        if let Some(fox) = &snapshot.fox {
            per_service("lease-book", fox.leases.len())?;
        }
        if let Some(targets) = &snapshot.last_targets {
            per_service("last-target", targets.len())?;
        }
        for decision in &snapshot.decisions {
            if decision.service >= services {
                return Err(SnapshotError::Inconsistent {
                    message: format!(
                        "decision for service {} out of range (services: {services})",
                        decision.service
                    ),
                });
            }
        }
        let entry_history = match &snapshot.entry_history {
            None => None,
            Some(h) => Some(
                TimeSeries::with_start(h.step, h.start, h.values.clone()).map_err(|e| {
                    SnapshotError::Inconsistent {
                        message: format!("invalid entry history: {e}"),
                    }
                })?,
            ),
        };

        let mut controller = Chamulteon::new(model, config);
        controller.demand_estimators = snapshot
            .estimators
            .iter()
            .map(|e| {
                RollingDemandEstimator::restore(
                    e.capacity,
                    e.smoothing,
                    e.current,
                    e.initialized,
                    e.window.clone(),
                )
            })
            .collect();
        controller.entry_history = entry_history;
        controller.active_forecast = snapshot.active_forecast.as_ref().map(|f| ActiveForecast {
            made_at: f.made_at,
            values: f.values.clone(),
            generation: f.generation,
            trusted: f.trusted,
        });
        controller.store = DecisionStore::restore(snapshot.decisions.clone());
        controller.forecast_generation = snapshot.forecast_generation;
        controller.forecasts_made = snapshot.forecasts_made;
        controller.fox = snapshot.fox.as_ref().map(|f| {
            Fox::restore(
                f.model.clone(),
                f.release_window,
                f.leases.clone(),
                f.billed_released,
            )
        });
        controller.spike_gates = snapshot
            .spike_gates
            .iter()
            .map(|&(last_rate, streak)| SpikeGate::restore(last_rate, streak))
            .collect();
        controller.last_good_samples = snapshot.last_good_samples.clone();
        controller.last_targets = snapshot.last_targets.clone();
        let mut degradation = DegradationLog::new();
        for event in &snapshot.degradation {
            degradation.record(event.time, event.reason);
        }
        controller.degradation = degradation;
        controller.ticks = snapshot.ticks;
        Ok(controller)
    }

    /// Records one degradation rung in the log AND on the obs channel
    /// (a `degradation` trace event plus the `degradation.events`
    /// counter).
    fn degrade(&mut self, time: f64, reason: DegradationReason) {
        self.obs.record_with(|| {
            let kind = EventKind::Degradation {
                code: reason.as_code().to_owned(),
                attempt: reason.attempt(),
            };
            match reason.service() {
                Some(service) => Event::service(time, service, kind),
                None => Event::cycle(time, kind),
            }
        });
        self.obs.metrics().increment("degradation.events");
        self.degradation.record(time, reason);
    }

    /// The active forecast's `(rate, generation, trusted)` for the
    /// upcoming interval, when one is in play. Past the horizon the last
    /// predicted value is reported (the store's decisions have expired by
    /// then, but provenance should still name what the controller last
    /// believed).
    fn active_forecast_now(&self) -> Option<(f64, u64, bool)> {
        let forecast = self.active_forecast.as_ref()?;
        let history_len = self
            .entry_history
            .as_ref()
            .map(TimeSeries::len)
            .unwrap_or(forecast.made_at);
        let elapsed = history_len.saturating_sub(forecast.made_at);
        let rate = forecast
            .values
            .get(elapsed)
            .or_else(|| forecast.values.last())
            .copied()?;
        Some((rate, forecast.generation, forecast.trusted))
    }

    /// One scaling round at time `time` with one monitoring sample per
    /// service (the paper's external monitoring component provides these).
    /// Returns the absolute target instance count per service.
    ///
    /// # Panics
    ///
    /// Panics if `samples` does not contain one entry per service.
    pub fn tick(&mut self, time: f64, samples: &[MonitoringSample]) -> Vec<u32> {
        assert_eq!(
            samples.len(),
            self.model.service_count(),
            "one monitoring sample per service required"
        );
        for (held, sample) in self.last_good_samples.iter_mut().zip(samples) {
            *held = Some(*sample);
        }
        for (gate, sample) in self.spike_gates.iter_mut().zip(samples) {
            gate.reset_to(sample.arrival_rate());
        }
        let fresh = vec![true; samples.len()];
        let targets = self.decide(time, samples, &fresh, true);
        self.last_targets = Some(targets.clone());
        targets
    }

    /// One scaling round under *possibly degraded* monitoring: each
    /// service's input is an [`Observation`] that may be missing, already
    /// validated, or raw untrusted readings. This is the panic-free entry
    /// point of the degradation ladder (see [`crate::degradation`] for the
    /// rungs); every degraded step is recorded in
    /// [`degradation`](Chamulteon::degradation).
    ///
    /// With all-valid observations this behaves exactly like
    /// [`tick`](Chamulteon::tick).
    ///
    /// # Panics
    ///
    /// Panics if `observations` does not contain one entry per service.
    pub fn tick_observed(&mut self, time: f64, observations: &[Observation]) -> Vec<u32> {
        assert_eq!(
            observations.len(),
            self.model.service_count(),
            "one observation per service required"
        );
        let mut samples = Vec::with_capacity(observations.len());
        let mut fresh = Vec::with_capacity(observations.len());
        for (service, observation) in observations.iter().enumerate() {
            // Rung 1: validate at the boundary.
            let validated = match *observation {
                Observation::Sample(sample) => Some(sample),
                Observation::Missing => None,
                Observation::Raw {
                    duration,
                    arrivals,
                    completions,
                    utilization,
                    instances,
                    mean_response_time,
                } => match MonitoringSample::from_observed(
                    duration,
                    arrivals,
                    completions,
                    utilization,
                    instances,
                    mean_response_time,
                ) {
                    // Rung 1b: a field-valid reading whose arrival rate is
                    // an implausible spike would poison the demand
                    // estimator; the gate holds it out unless it persists.
                    Ok(sample) if !self.spike_gates[service].admit(sample.arrival_rate()) => {
                        self.degrade(time, DegradationReason::SampleImplausible { service });
                        None
                    }
                    Ok(sample) => Some(sample),
                    Err(_) => {
                        self.degrade(time, DegradationReason::SampleQuarantined { service });
                        None
                    }
                },
            };
            match validated {
                Some(sample) => {
                    self.last_good_samples[service] = Some(sample);
                    samples.push(sample);
                    fresh.push(true);
                }
                // Rungs 2 and 3: hold the last good sample, else
                // synthesize a quiet one.
                None => {
                    let fallback = match self.last_good_samples[service] {
                        Some(held) => {
                            self.degrade(time, DegradationReason::SampleHeld { service });
                            held
                        }
                        None => {
                            self.degrade(time, DegradationReason::SampleSynthesized { service });
                            MonitoringSample::zero(
                                60.0,
                                self.model.service(service).min_instances(),
                            )
                        }
                    };
                    samples.push(fallback);
                    fresh.push(false);
                }
            }
        }

        // Rung 5: with nothing fresh at all, re-issue the previous targets
        // rather than scaling on held or synthetic data.
        if fresh.iter().all(|&f| !f) {
            if let Some(last) = self.last_targets.clone() {
                return self.hold_cycle(time, last);
            }
        }

        // Rung 4: a stale entry rate stays out of the forecast history.
        let entry_fresh = fresh[self.model.entry()];
        if !entry_fresh {
            self.degrade(time, DegradationReason::EntryRateUnusable);
        }
        let targets = self.decide(time, &samples, &fresh, entry_fresh);
        self.last_targets = Some(targets.clone());
        targets
    }

    /// Ladder rung 5 as a full (instrumented) cycle: re-issues `last`
    /// unchanged, with a `cycle_start`, the `held_last_decision` rung and
    /// one hold-provenance record per service on the trace.
    fn hold_cycle(&mut self, time: f64, last: Vec<u32>) -> Vec<u32> {
        self.ticks += 1;
        let tick = self.ticks;
        self.obs.record_with(|| {
            Event::cycle(
                time,
                EventKind::CycleStart {
                    tick,
                    measured_rate: f64::NAN,
                    entry_fresh: false,
                },
            )
        });
        self.degrade(time, DegradationReason::HeldLastDecision);
        if self.obs.tracing() {
            let demands = self.estimated_demands();
            let forecast_now = self.active_forecast_now();
            for (service, &target) in last.iter().enumerate() {
                let demand = demands.get(service).copied().unwrap_or(f64::NAN);
                self.obs.record_with(|| {
                    Event::service(
                        time,
                        service,
                        EventKind::Decision(Provenance {
                            tick,
                            measured_rate: f64::NAN,
                            offered_rate: None,
                            demand,
                            forecast_rate: forecast_now.map(|(rate, _, _)| rate),
                            forecast_generation: forecast_now.map(|(_, generation, _)| generation),
                            forecast_trusted: forecast_now.map(|(_, _, trusted)| trusted),
                            winner: Winner::Hold,
                            cache_hit: None,
                            fox_suppressed: None,
                            proposed: target,
                            target,
                        }),
                    )
                });
            }
        }
        self.obs.metrics().count(
            "decisions.hold",
            u64::try_from(last.len()).unwrap_or(u64::MAX),
        );
        last
    }

    /// The shared decision core of [`tick`](Chamulteon::tick) and
    /// [`tick_observed`](Chamulteon::tick_observed). `fresh[s]` marks
    /// samples measured this tick (stale/synthetic ones are excluded from
    /// the demand estimators); `entry_fresh` gates the forecast history.
    fn decide(
        &mut self,
        time: f64,
        samples: &[MonitoringSample],
        fresh: &[bool],
        entry_fresh: bool,
    ) -> Vec<u32> {
        self.ticks += 1;
        let tick = self.ticks;
        let tracing = self.obs.tracing();
        let mut timer = PhaseTimer::start(self.obs.metrics().enabled());

        // 1. Feed the demand estimators (fresh measurements only).
        for ((estimator, sample), &is_fresh) in
            self.demand_estimators.iter_mut().zip(samples).zip(fresh)
        {
            if is_fresh {
                estimator.observe(*sample);
            }
        }
        let demands = self.estimated_demands();
        let instances: Vec<u32> = samples.iter().map(|s| s.instances()).collect();

        // 2. Record the entry arrival rate.
        let entry = self.model.entry();
        let interval = samples[entry].duration();
        let entry_rate = samples[entry].arrival_rate();
        if self.entry_history.is_none() {
            // Monitoring may report a degenerate sample duration; fall back
            // to a 1 s step rather than rejecting the observation.
            let step = if interval.is_finite() && interval > 0.0 {
                interval
            } else {
                1.0
            };
            self.entry_history = TimeSeries::from_values(step, vec![]).ok();
        }
        if entry_fresh {
            if let Some(history) = self.entry_history.as_mut() {
                let _ = history.push(entry_rate);
            }
        }

        self.obs.record_with(|| {
            Event::cycle(
                time,
                EventKind::CycleStart {
                    tick,
                    measured_rate: entry_rate,
                    entry_fresh,
                },
            )
        });
        if tracing {
            for (service, (&demand, &is_fresh)) in demands.iter().zip(fresh).enumerate() {
                self.obs.record_with(|| {
                    Event::service(
                        time,
                        service,
                        EventKind::DemandEstimate {
                            demand,
                            fresh: is_fresh,
                        },
                    )
                });
            }
        }
        timer.lap(self.obs.metrics(), "cycle.demand_us");

        // 3. Proactive cycle.
        if self.config.proactive_enabled {
            self.run_proactive_cycle(time, interval, &demands, &instances);
        }
        timer.lap(self.obs.metrics(), "cycle.proactive_us");

        // 4. Reactive cycle. The traced sizing pass issues the exact same
        // cache lookups as the untraced one — tracing never changes a
        // target (pinned by the bit-identity tests).
        let mut reactive_trace: Option<SizingTrace> = None;
        let reactive: Vec<Option<ScalingDecision>> = if self.config.reactive_enabled {
            let targets = if tracing {
                let (targets, trace) = proactive_decisions_cached_traced(
                    &self.capacity_cache,
                    &self.model,
                    entry_rate,
                    &demands,
                    &instances,
                    &self.config,
                );
                reactive_trace = Some(trace);
                targets
            } else {
                proactive_decisions_cached(
                    &self.capacity_cache,
                    &self.model,
                    entry_rate,
                    &demands,
                    &instances,
                    &self.config,
                )
            };
            targets
                .iter()
                .enumerate()
                .map(|(service, &target)| {
                    Some(ScalingDecision {
                        service,
                        target,
                        start: time,
                        end: time + interval,
                        origin: DecisionOrigin::Reactive,
                    })
                })
                .collect()
        } else {
            vec![None; self.model.service_count()]
        };
        timer.lap(self.obs.metrics(), "cycle.reactive_us");

        if tracing {
            let stats = self.capacity_cache.stats();
            self.obs.record_with(|| {
                Event::cycle(
                    time,
                    EventKind::CapacitySolve {
                        hits: stats.hits,
                        misses: stats.misses,
                    },
                )
            });
        }

        // 5. Conflict resolution + 6. FOX review.
        self.store.evict_expired(time);
        let forecast_now = self.active_forecast_now();
        let service_count = self.model.service_count();
        let mut targets = Vec::with_capacity(service_count);
        for service in 0..service_count {
            let current = instances[service];
            let resolved = self
                .store
                .resolve(service, time, current, reactive[service]);
            let (chosen, winner, origin_generation, origin_trusted) = match resolved {
                Some(decision) => match decision.origin {
                    DecisionOrigin::Proactive {
                        generation,
                        trusted,
                    } => (
                        decision.target,
                        Winner::Proactive,
                        Some(generation),
                        Some(trusted),
                    ),
                    DecisionOrigin::Reactive => (decision.target, Winner::Reactive, None, None),
                },
                None => (current, Winner::Hold, None, None),
            };
            if tracing {
                let proactive_candidate = self.store.proactive_at(service, time);
                let reactive_candidate = reactive[service];
                self.obs.record_with(|| {
                    Event::service(
                        time,
                        service,
                        EventKind::ConflictResolution {
                            proactive: proactive_candidate.map(|d| d.target),
                            proactive_trusted: proactive_candidate.and_then(|d| match d.origin {
                                DecisionOrigin::Proactive { trusted, .. } => Some(trusted),
                                DecisionOrigin::Reactive => None,
                            }),
                            reactive: reactive_candidate.map(|d| d.target),
                            winner,
                            chosen,
                        },
                    )
                });
            }
            let (reviewed, fox_suppressed) = match &mut self.fox {
                Some(fox) => {
                    let reviewed = fox.review(service, time, current, chosen);
                    if tracing {
                        let paid_remaining = fox.min_paid_fraction(service, time);
                        self.obs.record_with(|| {
                            Event::service(
                                time,
                                service,
                                EventKind::FoxVerdict {
                                    proposed: chosen,
                                    reviewed,
                                    suppressed: reviewed != chosen,
                                    paid_remaining,
                                },
                            )
                        });
                    }
                    (reviewed, Some(reviewed != chosen))
                }
                None => (chosen, None),
            };
            let target = reviewed.clamp(
                self.model.service(service).min_instances(),
                self.model.service(service).max_instances(),
            );
            self.obs.metrics().increment(match winner {
                Winner::Proactive => "decisions.proactive",
                Winner::Reactive => "decisions.reactive",
                Winner::Hold => "decisions.hold",
            });
            if fox_suppressed == Some(true) {
                self.obs.metrics().increment("fox.suppressed");
            }
            if tracing {
                let (offered_rate, cache_hit) = reactive_trace
                    .as_ref()
                    .map(|trace| {
                        (
                            trace.offered.get(service).copied(),
                            trace.cache_hit.get(service).copied().flatten(),
                        )
                    })
                    .unwrap_or((None, None));
                let demand = demands.get(service).copied().unwrap_or(f64::NAN);
                self.obs.record_with(|| {
                    Event::service(
                        time,
                        service,
                        EventKind::Decision(Provenance {
                            tick,
                            measured_rate: entry_rate,
                            offered_rate,
                            demand,
                            forecast_rate: forecast_now.map(|(rate, _, _)| rate),
                            forecast_generation: origin_generation
                                .or(forecast_now.map(|(_, generation, _)| generation)),
                            forecast_trusted: origin_trusted
                                .or(forecast_now.map(|(_, _, trusted)| trusted)),
                            winner,
                            cache_hit,
                            fox_suppressed,
                            proposed: chosen,
                            target,
                        }),
                    )
                });
            }
            targets.push(target);
        }
        timer.lap(self.obs.metrics(), "cycle.resolve_us");
        if self.obs.metrics().enabled() {
            self.capacity_cache.export_metrics(self.obs.metrics());
        }
        targets
    }

    /// Runs the proactive cycle: re-forecasts when needed (forecast
    /// exhausted or drifted) and refreshes the decision store for the next
    /// `forecast_horizon` intervals.
    fn run_proactive_cycle(
        &mut self,
        time: f64,
        interval: f64,
        demands: &[f64],
        instances: &[u32],
    ) {
        let Some(history) = &self.entry_history else {
            return;
        };
        if history.len() < self.config.min_history {
            return;
        }

        let needs_forecast = match &self.active_forecast {
            None => true,
            Some(f) => {
                let elapsed = history.len().saturating_sub(f.made_at);
                if elapsed >= f.values.len() {
                    true // exhausted
                } else if elapsed == 0 {
                    false
                } else {
                    // Drift check against the rates observed since.
                    let observed = &history.values()[f.made_at..];
                    let predicted = &f.values[..elapsed.min(f.values.len())];
                    self.drift
                        .has_drifted(&history.values()[..f.made_at], observed, predicted)
                }
            }
        };
        if !needs_forecast {
            return;
        }

        let horizon = self.config.forecast_horizon;
        let Ok(forecast) = self.forecaster.forecast(history, horizon) else {
            // Ladder: the proactive cycle sits this round out; the
            // reactive cycle (or the held decision) still covers it.
            self.degrade(time, DegradationReason::ForecastFailed);
            return;
        };
        self.forecasts_made += 1;
        self.forecast_generation += 1;
        let trusted = forecast
            .in_sample_mase()
            .map(|m| m <= self.config.trust_threshold)
            .unwrap_or(false);
        self.active_forecast = Some(ActiveForecast {
            made_at: history.len(),
            values: forecast.values().to_vec(),
            generation: self.forecast_generation,
            trusted,
        });
        let generation = self.forecast_generation;
        let mase = forecast.in_sample_mase();
        self.obs.record_with(|| {
            Event::cycle(
                time,
                EventKind::Forecast {
                    generation,
                    horizon: u64::try_from(horizon).unwrap_or(u64::MAX),
                    trusted,
                    mase,
                },
            )
        });
        self.obs.metrics().increment("forecasts.made");

        // Chain decisions across the horizon: each window starts from the
        // previous window's targets.
        let mut current = instances.to_vec();
        let mut decisions = Vec::with_capacity(horizon * self.model.service_count());
        for (h, &rate) in forecast.values().iter().enumerate() {
            let targets = proactive_decisions_cached(
                &self.capacity_cache,
                &self.model,
                rate,
                demands,
                &current,
                &self.config,
            );
            let offset = f64::from(u32::try_from(h).unwrap_or(u32::MAX));
            let start = time + offset * interval;
            let end = start + interval;
            for (service, &target) in targets.iter().enumerate() {
                decisions.push(ScalingDecision {
                    service,
                    target,
                    start,
                    end,
                    origin: DecisionOrigin::Proactive {
                        generation: self.forecast_generation,
                        trusted,
                    },
                });
            }
            current = targets;
        }
        self.store.add_proactive(&decisions);
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn sample(interval: f64, rate: f64, demand: f64, n: u32) -> MonitoringSample {
        let arrivals = (rate * interval).round() as u64;
        let util = (rate * demand / f64::from(n)).min(1.0);
        // A saturated service completes at most its capacity.
        let capacity = f64::from(n) / demand;
        let completions = (rate.min(capacity) * interval).round() as u64;
        MonitoringSample::new(interval, arrivals, util, n, None)
            .unwrap()
            .with_completions(completions)
    }

    fn samples_for(rate: f64, instances: &[u32]) -> Vec<MonitoringSample> {
        let demands = [0.059, 0.1, 0.04];
        (0..3)
            .map(|i| sample(60.0, rate, demands[i], instances[i]))
            .collect()
    }

    fn controller(config: ChamulteonConfig) -> Chamulteon {
        Chamulteon::new(ApplicationModel::paper_benchmark(), config)
    }

    #[test]
    fn reactive_scales_all_tiers_in_one_round() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let targets = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        // Sized for 100 req/s with ρ_target 0.6.
        assert_eq!(targets, vec![10, 17, 7]);
    }

    #[test]
    fn holds_steady_inside_band() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        // 100 req/s on [10, 17, 7]: utilizations 0.59, 0.59, 0.57 —
        // inside [0.45, 0.75).
        let targets = c.tick(60.0, &samples_for(100.0, &[10, 17, 7]));
        assert_eq!(targets, vec![10, 17, 7]);
    }

    #[test]
    fn scales_down_when_idle() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let targets = c.tick(60.0, &samples_for(1.0, &[10, 17, 7]));
        assert_eq!(targets, vec![1, 1, 1]);
    }

    #[test]
    fn demand_estimates_follow_observations() {
        let mut c = controller(ChamulteonConfig::default());
        // Nominal demand of service 1 is 0.1; observe a consistent 0.2.
        for k in 0..10 {
            let mut s = samples_for(50.0, &[10, 17, 7]);
            s[1] = MonitoringSample::new(60.0, 3000, (50.0 * 0.2 / 17.0_f64).min(1.0), 17, None)
                .unwrap();
            let _ = c.tick(60.0 * (k as f64 + 1.0), &s);
        }
        let demands = c.estimated_demands();
        assert!(
            (demands[1] - 0.2).abs() < 0.02,
            "estimated {} instead of 0.2",
            demands[1]
        );
    }

    #[test]
    fn proactive_cycle_needs_history() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        // Fewer ticks than min_history: no forecast, no decisions — the
        // controller keeps the current supply.
        let targets = c.tick(60.0, &samples_for(100.0, &[2, 2, 2]));
        assert_eq!(targets, vec![2, 2, 2]);
        assert_eq!(c.forecasts_made(), 0);
    }

    #[test]
    fn proactive_cycle_forecasts_after_history_builds() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        for k in 0..14 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(50.0, &[5, 9, 4]));
        }
        assert!(c.forecasts_made() >= 1);
    }

    #[test]
    fn stable_load_does_not_reforecast_every_tick() {
        let mut c = controller(ChamulteonConfig::default());
        for k in 0..40 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(50.0, &[5, 9, 4]));
        }
        let made = c.forecasts_made();
        // 40 ticks, horizon 8: roughly every 8 ticks once history exists.
        assert!(made >= 2, "made {made}");
        assert!(made <= 8, "made {made} — drift logic not damping");
    }

    #[test]
    fn load_jump_triggers_drift_reforecast() {
        let mut c = controller(ChamulteonConfig::default());
        for k in 0..20 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(50.0, &[5, 9, 4]));
        }
        let before = c.forecasts_made();
        // Massive sustained jump: the active forecast drifts.
        for k in 20..24 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(400.0, &[5, 9, 4]));
        }
        assert!(c.forecasts_made() > before);
    }

    #[test]
    fn trusted_proactive_overrides_reactive() {
        // Build a perfectly predictable sawtooth so the forecast is
        // trusted, then check that the stored proactive decision is used.
        let mut c = controller(ChamulteonConfig::default());
        let mut n = [3u32, 5, 2];
        for k in 0..60 {
            let rate = 40.0 + 20.0 * ((k % 12) as f64 / 12.0 * std::f64::consts::TAU).sin();
            let targets = c.tick(60.0 * (k as f64 + 1.0), &samples_for(rate, &n));
            n = [targets[0], targets[1], targets[2]];
        }
        assert!(c.forecasts_made() >= 1);
        // Whatever path was taken, the supply tracks the demand band.
        let rate = 40.0;
        let expected_validation = (rate * 0.1 / 0.6_f64).ceil() as u32;
        assert!(
            (i64::from(n[1]) - i64::from(expected_validation)).abs() <= 3,
            "validation at {} vs expected ~{}",
            n[1],
            expected_validation
        );
    }

    #[test]
    fn fox_vetoes_early_release() {
        let mut c =
            controller(ChamulteonConfig::reactive_only()).with_fox(ChargingModel::ec2_hourly());
        // Scale up at t = 60.
        let t1 = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        assert_eq!(t1[1], 17);
        // Load collapses at t = 120: reactive wants 1, FOX keeps the paid
        // instances (their hour has just begun).
        let t2 = c.tick(120.0, &samples_for(1.0, &[10, 17, 7]));
        assert_eq!(t2[1], 17, "FOX must keep paid instances");
        assert!(c.billed_instance_seconds(120.0).unwrap() > 0.0);
    }

    #[test]
    fn without_fox_release_is_immediate() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let _ = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        let t2 = c.tick(120.0, &samples_for(1.0, &[10, 17, 7]));
        assert_eq!(t2, vec![1, 1, 1]);
        assert_eq!(c.billed_instance_seconds(120.0), None);
    }

    #[test]
    fn targets_respect_model_bounds() {
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("a", 0.1, 2, 5, 3)
            .build()
            .unwrap();
        let mut c = Chamulteon::new(model, ChamulteonConfig::reactive_only());
        let hot = c.tick(
            60.0,
            &[MonitoringSample::new(60.0, 60_000, 1.0, 3, None).unwrap()],
        );
        assert_eq!(hot, vec![5]);
        let cold = c.tick(
            120.0,
            &[MonitoringSample::new(60.0, 0, 0.0, 5, None).unwrap()],
        );
        assert_eq!(cold, vec![2]);
    }

    #[test]
    fn preloaded_history_enables_immediate_forecasting() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        // Two "days" of a 12-tick season.
        let rates: Vec<f64> = (0..24)
            .map(|k| 50.0 + 20.0 * ((k % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        c.preload_history(60.0, &rates);
        let _ = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(c.forecasts_made(), 1, "forecast on the very first tick");
    }

    #[test]
    fn preload_spike_yields_untrusted_forecast_then_drift_reforecast() {
        // In-sample MASE of the hybrid forecaster on this noisy seasonal
        // signal sits near 1.2; a threshold of 2 separates "normal signal"
        // (trusted) from "history ends on garbage" (MASE ≈ 80) with a wide
        // margin on both sides.
        let config = || ChamulteonConfig {
            trust_threshold: 2.0,
            ..ChamulteonConfig::proactive_only()
        };
        // Four seasons of sine plus deterministic noise (noise keeps the
        // seasonal-naive MASE denominator away from zero).
        let season = |k: usize| {
            50.0 + 20.0 * ((k % 12) as f64 / 12.0 * std::f64::consts::TAU).sin()
                + 3.0 * (((k * 7919) % 13) as f64 / 13.0 - 0.5)
        };
        let rates: Vec<f64> = (0..48).map(season).collect();

        // Baseline: a clean preload produces a *trusted* first forecast.
        let mut clean = controller(config());
        clean.preload_history(60.0, &rates);
        let _ = clean.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(clean.forecasts_made(), 1);
        assert!(
            clean.active_forecast.as_ref().is_some_and(|f| f.trusted),
            "clean preload must yield a trusted forecast"
        );

        // Same preload but the history *ends on an implausible sample*: a
        // finite positive spike that per-value validation rightly keeps
        // (preload only drops NaN and clamps negatives). The forecast made
        // from it must carry an untrusted verdict — not just survive.
        let mut bad = rates.clone();
        if let Some(last) = bad.last_mut() {
            *last = 5000.0;
        }
        let mut spiked = controller(config());
        spiked.preload_history(60.0, &bad);
        let _ = spiked.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(
            spiked.forecasts_made(),
            1,
            "spike must not block forecasting"
        );
        assert!(
            spiked.active_forecast.as_ref().is_some_and(|f| !f.trusted),
            "forecast from spike-ending history must be untrusted"
        );

        // As normal load keeps arriving, drift detection notices the
        // spiked forecast mispredicts and re-forecasts *before* the
        // 8-tick horizon exhausts (elapsed stays ≤ 7 here, so a second
        // forecast can only come from the drift path).
        for k in 1..=7u32 {
            let _ = spiked.tick(60.0 * f64::from(k + 1), &samples_for(50.0, &[5, 9, 4]));
        }
        assert!(
            spiked.forecasts_made() >= 2,
            "drift must trigger a re-forecast within the horizon, made {}",
            spiked.forecasts_made()
        );
    }

    #[test]
    fn preload_skips_bad_rates() {
        let mut c = controller(ChamulteonConfig::default());
        c.preload_history(60.0, &[1.0, f64::NAN, -3.0, 2.0]);
        // NaN dropped, negative clamped: effective history [1, 0, 2].
        let _ = c.tick(60.0, &samples_for(10.0, &[1, 1, 1]));
        // No panic is the main assertion; demand path unaffected.
        assert_eq!(c.estimated_demands().len(), 3);
    }

    #[test]
    #[should_panic(expected = "one monitoring sample per service")]
    fn wrong_sample_count_panics() {
        let mut c = controller(ChamulteonConfig::default());
        let _ = c.tick(60.0, &samples_for(10.0, &[1, 1, 1])[..2]);
    }

    fn raw_from(s: &MonitoringSample) -> crate::degradation::Observation {
        crate::degradation::Observation::Raw {
            duration: s.duration(),
            arrivals: s.arrivals() as f64,
            completions: s.completions() as f64,
            utilization: s.utilization(),
            instances: s.instances(),
            mean_response_time: s.mean_response_time(),
        }
    }

    #[test]
    fn tick_observed_with_clean_inputs_matches_tick() {
        let mut a = controller(ChamulteonConfig::default());
        let mut b = controller(ChamulteonConfig::default());
        for k in 0..20 {
            let t = 60.0 * (k as f64 + 1.0);
            let samples = samples_for(50.0 + k as f64, &[5, 9, 4]);
            let observations: Vec<_> = samples.iter().map(raw_from).collect();
            assert_eq!(a.tick(t, &samples), b.tick_observed(t, &observations));
        }
        assert!(b.degradation().is_empty(), "clean inputs never degrade");
    }

    #[test]
    fn corrupt_samples_are_quarantined_and_held() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let baseline = c.tick(60.0, &samples_for(100.0, &[10, 17, 7]));
        // Next tick: service 1 reports NaN arrivals, service 2 negative.
        let clean = samples_for(100.0, &[10, 17, 7]);
        let observations = vec![
            raw_from(&clean[0]),
            crate::degradation::Observation::Raw {
                duration: 60.0,
                arrivals: f64::NAN,
                completions: f64::NAN,
                utilization: f64::NAN,
                instances: 17,
                mean_response_time: None,
            },
            crate::degradation::Observation::Raw {
                duration: 60.0,
                arrivals: -6001.0,
                completions: -1.0,
                utilization: -0.7,
                instances: 7,
                mean_response_time: None,
            },
        ];
        let targets = c.tick_observed(120.0, &observations);
        // Held samples carry the same load: the decision stays put.
        assert_eq!(targets, baseline);
        let log = c.degradation();
        assert_eq!(
            log.count_matching(|r| matches!(r, DegradationReason::SampleQuarantined { .. })),
            2
        );
        assert_eq!(
            log.count_matching(|r| matches!(r, DegradationReason::SampleHeld { .. })),
            2
        );
    }

    #[test]
    fn all_samples_missing_holds_the_last_decision() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let first = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        let blind = vec![crate::degradation::Observation::Missing; 3];
        let held = c.tick_observed(120.0, &blind);
        assert_eq!(held, first, "previous targets re-issued");
        assert_eq!(
            c.degradation()
                .count_matching(|r| matches!(r, DegradationReason::HeldLastDecision)),
            1
        );
    }

    #[test]
    fn blind_first_tick_synthesizes_and_survives() {
        let mut c = controller(ChamulteonConfig::default());
        let blind = vec![crate::degradation::Observation::Missing; 3];
        // No history, no last decision: synthesized quiet samples, no panic.
        let targets = c.tick_observed(60.0, &blind);
        assert_eq!(targets.len(), 3);
        assert_eq!(
            c.degradation()
                .count_matching(|r| matches!(r, DegradationReason::SampleSynthesized { .. })),
            3
        );
    }

    #[test]
    fn stale_entry_rate_is_excluded_from_forecast_history() {
        let mut c = controller(ChamulteonConfig::default());
        let clean = samples_for(50.0, &[5, 9, 4]);
        let _ = c.tick(60.0, &clean);
        // Entry sample missing, others fresh.
        let observations = vec![
            crate::degradation::Observation::Missing,
            raw_from(&clean[1]),
            raw_from(&clean[2]),
        ];
        let _ = c.tick_observed(120.0, &observations);
        assert_eq!(
            c.degradation()
                .count_matching(|r| matches!(r, DegradationReason::EntryRateUnusable)),
            1
        );
    }

    #[test]
    fn take_degradation_drains_the_log() {
        let mut c = controller(ChamulteonConfig::default());
        let _ = c.tick_observed(60.0, &[crate::degradation::Observation::Missing; 3]);
        assert!(!c.degradation().is_empty());
        let taken = c.take_degradation();
        assert!(!taken.is_empty());
        assert!(c.degradation().is_empty());
    }

    #[test]
    fn preload_history_empty_slice_is_harmless() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        c.preload_history(60.0, &[]);
        let targets = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(targets.len(), 3);
        assert_eq!(c.forecasts_made(), 0, "no history, no forecast");
    }

    #[test]
    fn preload_history_single_sample_is_harmless() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        c.preload_history(60.0, &[42.0]);
        let targets = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn preload_history_degenerate_interval_is_harmless() {
        let rates: Vec<f64> = (0..24).map(|k| 50.0 + (k % 12) as f64).collect();
        for interval in [0.0, -60.0, f64::NAN] {
            let mut c = controller(ChamulteonConfig::proactive_only());
            c.preload_history(interval, &rates);
            // Panic-freedom is the assertion (R1); the clamped step keeps
            // the preloaded history usable.
            let targets = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
            assert_eq!(targets.len(), 3);
        }
    }

    #[test]
    fn traced_controller_is_bit_identical_to_untraced() {
        use chamulteon_obs::EventKind;

        let mut plain = controller(ChamulteonConfig::default());
        let (obs, ring) = chamulteon_obs::Obs::recording(1 << 16);
        let mut traced = controller(ChamulteonConfig::default()).with_obs(obs);

        let ticks = 30usize;
        let mut n = [5u32, 9, 4];
        for k in 0..ticks {
            // Sawtooth load so forecasts, drift checks and both decision
            // origins all fire over the run.
            let rate = 40.0 + 20.0 * ((k % 12) as f64);
            let time = 60.0 * (k as f64 + 1.0);
            let samples = samples_for(rate, &n);
            let a = plain.tick(time, &samples);
            let b = traced.tick(time, &samples);
            assert_eq!(a, b, "tick {k}: tracing changed the decision");
            n = [b[0], b[1], b[2]];
        }
        assert_eq!(plain.forecasts_made(), traced.forecasts_made());

        let events = ring.take();
        assert_eq!(ring.dropped(), 0, "ring too small for the run");
        let cycle_starts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CycleStart { .. }))
            .count();
        assert_eq!(cycle_starts, ticks);
        let decisions: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Decision(p) => Some((e.service, p)),
                _ => None,
            })
            .collect();
        assert_eq!(
            decisions.len(),
            ticks * 3,
            "one provenance per service per tick"
        );
        for (service, provenance) in &decisions {
            assert!(service.is_some(), "decision events are per-service");
            assert!(provenance.tick >= 1 && provenance.tick <= ticks as u64);
            assert!(provenance.measured_rate.is_finite());
            assert!(provenance.demand.is_finite());
            assert!(provenance.target >= 1);
        }
        // The reactive sizing pass records offered rates and cache verdicts.
        assert!(
            decisions
                .iter()
                .any(|(_, p)| p.offered_rate.is_some() && p.cache_hit.is_some()),
            "no decision captured reactive sizing context"
        );
        // Forecast events carry the active generation into provenance.
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Forecast { .. })),
            "no forecast event despite {} forecasts",
            traced.forecasts_made()
        );
        assert!(
            decisions
                .iter()
                .any(|(_, p)| p.forecast_generation.is_some()),
            "no decision linked to a forecast generation"
        );

        let metrics = traced.obs().metrics();
        let total = metrics.counter_value("decisions.proactive").unwrap_or(0)
            + metrics.counter_value("decisions.reactive").unwrap_or(0)
            + metrics.counter_value("decisions.hold").unwrap_or(0);
        assert_eq!(total, (ticks * 3) as u64);
        assert!(metrics.counter_value("forecasts.made").unwrap_or(0) >= 1);
        assert!(metrics.gauge_value("capacity_cache.entries").is_some());
    }

    #[test]
    fn blind_ticks_trace_hold_provenance() {
        let (obs, ring) = chamulteon_obs::Obs::recording(1 << 12);
        let mut c = controller(ChamulteonConfig::default()).with_obs(obs);
        let last = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        // Fully blind tick after a good one: rung 5 re-issues `last`.
        let held = c.tick_observed(120.0, &[crate::degradation::Observation::Missing; 3]);
        assert_eq!(held, last);

        let events = ring.take();
        use chamulteon_obs::{EventKind, Winner};
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Degradation { code, .. } if code == "held_last_decision"
        )));
        let holds = events
            .iter()
            .filter(|e| {
                matches!(&e.kind, EventKind::Decision(p)
                    if p.winner == Winner::Hold && p.tick == 2)
            })
            .count();
        assert_eq!(holds, 3, "one hold provenance per service");
    }
}
