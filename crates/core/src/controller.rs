//! The Chamulteon controller: both cycles, wired together.

use crate::algorithm::proactive_decisions_cached;
use crate::config::ChamulteonConfig;
use crate::decision::{DecisionOrigin, DecisionStore, ScalingDecision};
use crate::degradation::{DegradationLog, DegradationReason, Observation, SpikeGate};
use crate::fox::{ChargingModel, Fox};
use chamulteon_demand::{MonitoringSample, RollingDemandEstimator};
use chamulteon_forecast::{DriftDetector, Forecaster, TelescopeForecaster, TimeSeries};
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::{CacheStats, CapacityCache};

/// The forecast currently driving the proactive cycle.
#[derive(Debug, Clone)]
struct ActiveForecast {
    /// Index into the entry history at which the forecast was made (its
    /// first predicted value corresponds to this history index).
    made_at: usize,
    /// Predicted entry arrival rates, one per future tick.
    values: Vec<f64>,
}

/// The coordinated multi-service auto-scaler.
///
/// Drive it by calling [`tick`](Chamulteon::tick) once per scaling
/// interval with one [`MonitoringSample`] per service; it returns the
/// target instance count per service. See the crate docs for the overall
/// architecture.
#[derive(Debug, Clone)]
pub struct Chamulteon {
    model: ApplicationModel,
    config: ChamulteonConfig,
    /// Memoizes the Algorithm-1 utilization inversions; cloning a
    /// controller (checkpointing) carries the warm cache along.
    capacity_cache: CapacityCache,
    demand_estimators: Vec<RollingDemandEstimator>,
    entry_history: Option<TimeSeries>,
    forecaster: TelescopeForecaster,
    drift: DriftDetector,
    store: DecisionStore,
    forecast_generation: u64,
    active_forecast: Option<ActiveForecast>,
    fox: Option<Fox>,
    forecasts_made: u64,
    // Degradation-ladder state.
    degradation: DegradationLog,
    last_good_samples: Vec<Option<MonitoringSample>>,
    spike_gates: Vec<SpikeGate>,
    last_targets: Option<Vec<u32>>,
}

impl Chamulteon {
    /// Creates a controller for `model`.
    pub fn new(model: ApplicationModel, config: ChamulteonConfig) -> Self {
        let config = config.sanitized();
        let demand_estimators = model
            .services()
            .iter()
            .map(|s| {
                RollingDemandEstimator::new(
                    config.demand_window,
                    config.demand_smoothing,
                    s.nominal_demand(),
                )
            })
            .collect();
        Chamulteon {
            drift: DriftDetector::new(config.drift_threshold),
            capacity_cache: CapacityCache::new(),
            demand_estimators,
            entry_history: None,
            forecaster: TelescopeForecaster::default(),
            store: DecisionStore::new(),
            forecast_generation: 0,
            active_forecast: None,
            fox: None,
            forecasts_made: 0,
            degradation: DegradationLog::new(),
            last_good_samples: vec![None; model.service_count()],
            spike_gates: vec![SpikeGate::new(); model.service_count()],
            last_targets: None,
            model,
            config,
        }
    }

    /// Attaches the FOX cost-awareness component ("This component, if
    /// activated, reviews all decisions proposed by the Controller").
    pub fn with_fox(mut self, charging: ChargingModel) -> Self {
        self.fox = Some(Fox::new(charging, self.model.service_count()));
        self
    }

    /// The application model being scaled.
    pub fn model(&self) -> &ApplicationModel {
        &self.model
    }

    /// The active configuration (sanitized).
    pub fn config(&self) -> &ChamulteonConfig {
        &self.config
    }

    /// The current per-service demand estimates in seconds per request.
    pub fn estimated_demands(&self) -> Vec<f64> {
        self.demand_estimators
            .iter()
            .map(|e| e.current_demand())
            .collect()
    }

    /// How many forecasts have been produced so far (the drift logic makes
    /// this far smaller than the tick count).
    pub fn forecasts_made(&self) -> u64 {
        self.forecasts_made
    }

    /// Hit/miss counters of the capacity memo cache serving Algorithm 1's
    /// sizing queries (each proactive round issues `horizon × services`
    /// inversions, so steady load makes this overwhelmingly hits).
    pub fn capacity_cache_stats(&self) -> CacheStats {
        self.capacity_cache.stats()
    }

    /// Total billed instance seconds, when FOX is attached.
    pub fn billed_instance_seconds(&self, now: f64) -> Option<f64> {
        self.fox.as_ref().map(|f| f.billed_instance_seconds(now))
    }

    /// Seeds the arrival-rate history with pre-experiment observations —
    /// the paper's assumption (i): "To obtain good forecasts with a model
    /// of the seasonal pattern, the availability of two days of historical
    /// data is required" (§III-D). `interval` is the sampling step of the
    /// provided rates and must match the later tick interval.
    ///
    /// Non-finite rates are skipped. Calling this after ticking resets the
    /// history to the preloaded values.
    pub fn preload_history(&mut self, interval: f64, rates: &[f64]) {
        let Ok(mut history) = TimeSeries::from_values(interval.max(1e-9), vec![]) else {
            return;
        };
        for &r in rates {
            if r.is_finite() {
                let _ = history.push(r.max(0.0));
            }
        }
        self.entry_history = Some(history);
        self.active_forecast = None;
    }

    /// The controller's record of every degraded decision so far (see
    /// [`crate::degradation`]).
    pub fn degradation(&self) -> &DegradationLog {
        &self.degradation
    }

    /// Takes the degradation log, leaving an empty one — for merging into
    /// an experiment-level record.
    pub fn take_degradation(&mut self) -> DegradationLog {
        std::mem::take(&mut self.degradation)
    }

    /// One scaling round at time `time` with one monitoring sample per
    /// service (the paper's external monitoring component provides these).
    /// Returns the absolute target instance count per service.
    ///
    /// # Panics
    ///
    /// Panics if `samples` does not contain one entry per service.
    pub fn tick(&mut self, time: f64, samples: &[MonitoringSample]) -> Vec<u32> {
        assert_eq!(
            samples.len(),
            self.model.service_count(),
            "one monitoring sample per service required"
        );
        for (held, sample) in self.last_good_samples.iter_mut().zip(samples) {
            *held = Some(*sample);
        }
        for (gate, sample) in self.spike_gates.iter_mut().zip(samples) {
            gate.reset_to(sample.arrival_rate());
        }
        let fresh = vec![true; samples.len()];
        let targets = self.decide(time, samples, &fresh, true);
        self.last_targets = Some(targets.clone());
        targets
    }

    /// One scaling round under *possibly degraded* monitoring: each
    /// service's input is an [`Observation`] that may be missing, already
    /// validated, or raw untrusted readings. This is the panic-free entry
    /// point of the degradation ladder (see [`crate::degradation`] for the
    /// rungs); every degraded step is recorded in
    /// [`degradation`](Chamulteon::degradation).
    ///
    /// With all-valid observations this behaves exactly like
    /// [`tick`](Chamulteon::tick).
    ///
    /// # Panics
    ///
    /// Panics if `observations` does not contain one entry per service.
    pub fn tick_observed(&mut self, time: f64, observations: &[Observation]) -> Vec<u32> {
        assert_eq!(
            observations.len(),
            self.model.service_count(),
            "one observation per service required"
        );
        let mut samples = Vec::with_capacity(observations.len());
        let mut fresh = Vec::with_capacity(observations.len());
        for (service, observation) in observations.iter().enumerate() {
            // Rung 1: validate at the boundary.
            let validated = match *observation {
                Observation::Sample(sample) => Some(sample),
                Observation::Missing => None,
                Observation::Raw {
                    duration,
                    arrivals,
                    completions,
                    utilization,
                    instances,
                    mean_response_time,
                } => match MonitoringSample::from_observed(
                    duration,
                    arrivals,
                    completions,
                    utilization,
                    instances,
                    mean_response_time,
                ) {
                    // Rung 1b: a field-valid reading whose arrival rate is
                    // an implausible spike would poison the demand
                    // estimator; the gate holds it out unless it persists.
                    Ok(sample) if !self.spike_gates[service].admit(sample.arrival_rate()) => {
                        self.degradation
                            .record(time, DegradationReason::SampleImplausible { service });
                        None
                    }
                    Ok(sample) => Some(sample),
                    Err(_) => {
                        self.degradation
                            .record(time, DegradationReason::SampleQuarantined { service });
                        None
                    }
                },
            };
            match validated {
                Some(sample) => {
                    self.last_good_samples[service] = Some(sample);
                    samples.push(sample);
                    fresh.push(true);
                }
                // Rungs 2 and 3: hold the last good sample, else
                // synthesize a quiet one.
                None => {
                    let fallback = match self.last_good_samples[service] {
                        Some(held) => {
                            self.degradation
                                .record(time, DegradationReason::SampleHeld { service });
                            held
                        }
                        None => {
                            self.degradation
                                .record(time, DegradationReason::SampleSynthesized { service });
                            MonitoringSample::zero(
                                60.0,
                                self.model.service(service).min_instances(),
                            )
                        }
                    };
                    samples.push(fallback);
                    fresh.push(false);
                }
            }
        }

        // Rung 5: with nothing fresh at all, re-issue the previous targets
        // rather than scaling on held or synthetic data.
        if fresh.iter().all(|&f| !f) {
            if let Some(last) = self.last_targets.clone() {
                self.degradation
                    .record(time, DegradationReason::HeldLastDecision);
                return last;
            }
        }

        // Rung 4: a stale entry rate stays out of the forecast history.
        let entry_fresh = fresh[self.model.entry()];
        if !entry_fresh {
            self.degradation
                .record(time, DegradationReason::EntryRateUnusable);
        }
        let targets = self.decide(time, &samples, &fresh, entry_fresh);
        self.last_targets = Some(targets.clone());
        targets
    }

    /// The shared decision core of [`tick`](Chamulteon::tick) and
    /// [`tick_observed`](Chamulteon::tick_observed). `fresh[s]` marks
    /// samples measured this tick (stale/synthetic ones are excluded from
    /// the demand estimators); `entry_fresh` gates the forecast history.
    fn decide(
        &mut self,
        time: f64,
        samples: &[MonitoringSample],
        fresh: &[bool],
        entry_fresh: bool,
    ) -> Vec<u32> {
        // 1. Feed the demand estimators (fresh measurements only).
        for ((estimator, sample), &is_fresh) in
            self.demand_estimators.iter_mut().zip(samples).zip(fresh)
        {
            if is_fresh {
                estimator.observe(*sample);
            }
        }
        let demands = self.estimated_demands();
        let instances: Vec<u32> = samples.iter().map(|s| s.instances()).collect();

        // 2. Record the entry arrival rate.
        let entry = self.model.entry();
        let interval = samples[entry].duration();
        let entry_rate = samples[entry].arrival_rate();
        if self.entry_history.is_none() {
            // Monitoring may report a degenerate sample duration; fall back
            // to a 1 s step rather than rejecting the observation.
            let step = if interval.is_finite() && interval > 0.0 {
                interval
            } else {
                1.0
            };
            self.entry_history = TimeSeries::from_values(step, vec![]).ok();
        }
        if entry_fresh {
            if let Some(history) = self.entry_history.as_mut() {
                let _ = history.push(entry_rate);
            }
        }

        // 3. Proactive cycle.
        if self.config.proactive_enabled {
            self.run_proactive_cycle(time, interval, &demands, &instances);
        }

        // 4. Reactive cycle.
        let reactive: Vec<Option<ScalingDecision>> = if self.config.reactive_enabled {
            let targets = proactive_decisions_cached(
                &self.capacity_cache,
                &self.model,
                entry_rate,
                &demands,
                &instances,
                &self.config,
            );
            targets
                .iter()
                .enumerate()
                .map(|(service, &target)| {
                    Some(ScalingDecision {
                        service,
                        target,
                        start: time,
                        end: time + interval,
                        origin: DecisionOrigin::Reactive,
                    })
                })
                .collect()
        } else {
            vec![None; self.model.service_count()]
        };

        // 5. Conflict resolution + 6. FOX review.
        self.store.evict_expired(time);
        (0..self.model.service_count())
            .map(|service| {
                let chosen = self
                    .store
                    .resolve(service, time, instances[service], reactive[service])
                    .map(|d| d.target)
                    .unwrap_or(instances[service]);
                let reviewed = match &mut self.fox {
                    Some(fox) => fox.review(service, time, instances[service], chosen),
                    None => chosen,
                };
                reviewed.clamp(
                    self.model.service(service).min_instances(),
                    self.model.service(service).max_instances(),
                )
            })
            .collect()
    }

    /// Runs the proactive cycle: re-forecasts when needed (forecast
    /// exhausted or drifted) and refreshes the decision store for the next
    /// `forecast_horizon` intervals.
    fn run_proactive_cycle(
        &mut self,
        time: f64,
        interval: f64,
        demands: &[f64],
        instances: &[u32],
    ) {
        let Some(history) = &self.entry_history else {
            return;
        };
        if history.len() < self.config.min_history {
            return;
        }

        let needs_forecast = match &self.active_forecast {
            None => true,
            Some(f) => {
                let elapsed = history.len().saturating_sub(f.made_at);
                if elapsed >= f.values.len() {
                    true // exhausted
                } else if elapsed == 0 {
                    false
                } else {
                    // Drift check against the rates observed since.
                    let observed = &history.values()[f.made_at..];
                    let predicted = &f.values[..elapsed.min(f.values.len())];
                    self.drift
                        .has_drifted(&history.values()[..f.made_at], observed, predicted)
                }
            }
        };
        if !needs_forecast {
            return;
        }

        let horizon = self.config.forecast_horizon;
        let Ok(forecast) = self.forecaster.forecast(history, horizon) else {
            // Ladder: the proactive cycle sits this round out; the
            // reactive cycle (or the held decision) still covers it.
            self.degradation
                .record(time, DegradationReason::ForecastFailed);
            return;
        };
        self.forecasts_made += 1;
        self.forecast_generation += 1;
        let trusted = forecast
            .in_sample_mase()
            .map(|m| m <= self.config.trust_threshold)
            .unwrap_or(false);
        self.active_forecast = Some(ActiveForecast {
            made_at: history.len(),
            values: forecast.values().to_vec(),
        });

        // Chain decisions across the horizon: each window starts from the
        // previous window's targets.
        let mut current = instances.to_vec();
        let mut decisions = Vec::with_capacity(horizon * self.model.service_count());
        for (h, &rate) in forecast.values().iter().enumerate() {
            let targets = proactive_decisions_cached(
                &self.capacity_cache,
                &self.model,
                rate,
                demands,
                &current,
                &self.config,
            );
            let offset = f64::from(u32::try_from(h).unwrap_or(u32::MAX));
            let start = time + offset * interval;
            let end = start + interval;
            for (service, &target) in targets.iter().enumerate() {
                decisions.push(ScalingDecision {
                    service,
                    target,
                    start,
                    end,
                    origin: DecisionOrigin::Proactive {
                        generation: self.forecast_generation,
                        trusted,
                    },
                });
            }
            current = targets;
        }
        self.store.add_proactive(&decisions);
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;

    fn sample(interval: f64, rate: f64, demand: f64, n: u32) -> MonitoringSample {
        let arrivals = (rate * interval).round() as u64;
        let util = (rate * demand / f64::from(n)).min(1.0);
        // A saturated service completes at most its capacity.
        let capacity = f64::from(n) / demand;
        let completions = (rate.min(capacity) * interval).round() as u64;
        MonitoringSample::new(interval, arrivals, util, n, None)
            .unwrap()
            .with_completions(completions)
    }

    fn samples_for(rate: f64, instances: &[u32]) -> Vec<MonitoringSample> {
        let demands = [0.059, 0.1, 0.04];
        (0..3)
            .map(|i| sample(60.0, rate, demands[i], instances[i]))
            .collect()
    }

    fn controller(config: ChamulteonConfig) -> Chamulteon {
        Chamulteon::new(ApplicationModel::paper_benchmark(), config)
    }

    #[test]
    fn reactive_scales_all_tiers_in_one_round() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let targets = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        // Sized for 100 req/s with ρ_target 0.6.
        assert_eq!(targets, vec![10, 17, 7]);
    }

    #[test]
    fn holds_steady_inside_band() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        // 100 req/s on [10, 17, 7]: utilizations 0.59, 0.59, 0.57 —
        // inside [0.45, 0.75).
        let targets = c.tick(60.0, &samples_for(100.0, &[10, 17, 7]));
        assert_eq!(targets, vec![10, 17, 7]);
    }

    #[test]
    fn scales_down_when_idle() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let targets = c.tick(60.0, &samples_for(1.0, &[10, 17, 7]));
        assert_eq!(targets, vec![1, 1, 1]);
    }

    #[test]
    fn demand_estimates_follow_observations() {
        let mut c = controller(ChamulteonConfig::default());
        // Nominal demand of service 1 is 0.1; observe a consistent 0.2.
        for k in 0..10 {
            let mut s = samples_for(50.0, &[10, 17, 7]);
            s[1] = MonitoringSample::new(60.0, 3000, (50.0 * 0.2 / 17.0_f64).min(1.0), 17, None)
                .unwrap();
            let _ = c.tick(60.0 * (k as f64 + 1.0), &s);
        }
        let demands = c.estimated_demands();
        assert!(
            (demands[1] - 0.2).abs() < 0.02,
            "estimated {} instead of 0.2",
            demands[1]
        );
    }

    #[test]
    fn proactive_cycle_needs_history() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        // Fewer ticks than min_history: no forecast, no decisions — the
        // controller keeps the current supply.
        let targets = c.tick(60.0, &samples_for(100.0, &[2, 2, 2]));
        assert_eq!(targets, vec![2, 2, 2]);
        assert_eq!(c.forecasts_made(), 0);
    }

    #[test]
    fn proactive_cycle_forecasts_after_history_builds() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        for k in 0..14 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(50.0, &[5, 9, 4]));
        }
        assert!(c.forecasts_made() >= 1);
    }

    #[test]
    fn stable_load_does_not_reforecast_every_tick() {
        let mut c = controller(ChamulteonConfig::default());
        for k in 0..40 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(50.0, &[5, 9, 4]));
        }
        let made = c.forecasts_made();
        // 40 ticks, horizon 8: roughly every 8 ticks once history exists.
        assert!(made >= 2, "made {made}");
        assert!(made <= 8, "made {made} — drift logic not damping");
    }

    #[test]
    fn load_jump_triggers_drift_reforecast() {
        let mut c = controller(ChamulteonConfig::default());
        for k in 0..20 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(50.0, &[5, 9, 4]));
        }
        let before = c.forecasts_made();
        // Massive sustained jump: the active forecast drifts.
        for k in 20..24 {
            let _ = c.tick(60.0 * (k as f64 + 1.0), &samples_for(400.0, &[5, 9, 4]));
        }
        assert!(c.forecasts_made() > before);
    }

    #[test]
    fn trusted_proactive_overrides_reactive() {
        // Build a perfectly predictable sawtooth so the forecast is
        // trusted, then check that the stored proactive decision is used.
        let mut c = controller(ChamulteonConfig::default());
        let mut n = [3u32, 5, 2];
        for k in 0..60 {
            let rate = 40.0 + 20.0 * ((k % 12) as f64 / 12.0 * std::f64::consts::TAU).sin();
            let targets = c.tick(60.0 * (k as f64 + 1.0), &samples_for(rate, &n));
            n = [targets[0], targets[1], targets[2]];
        }
        assert!(c.forecasts_made() >= 1);
        // Whatever path was taken, the supply tracks the demand band.
        let rate = 40.0;
        let expected_validation = (rate * 0.1 / 0.6_f64).ceil() as u32;
        assert!(
            (i64::from(n[1]) - i64::from(expected_validation)).abs() <= 3,
            "validation at {} vs expected ~{}",
            n[1],
            expected_validation
        );
    }

    #[test]
    fn fox_vetoes_early_release() {
        let mut c =
            controller(ChamulteonConfig::reactive_only()).with_fox(ChargingModel::ec2_hourly());
        // Scale up at t = 60.
        let t1 = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        assert_eq!(t1[1], 17);
        // Load collapses at t = 120: reactive wants 1, FOX keeps the paid
        // instances (their hour has just begun).
        let t2 = c.tick(120.0, &samples_for(1.0, &[10, 17, 7]));
        assert_eq!(t2[1], 17, "FOX must keep paid instances");
        assert!(c.billed_instance_seconds(120.0).unwrap() > 0.0);
    }

    #[test]
    fn without_fox_release_is_immediate() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let _ = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        let t2 = c.tick(120.0, &samples_for(1.0, &[10, 17, 7]));
        assert_eq!(t2, vec![1, 1, 1]);
        assert_eq!(c.billed_instance_seconds(120.0), None);
    }

    #[test]
    fn targets_respect_model_bounds() {
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("a", 0.1, 2, 5, 3)
            .build()
            .unwrap();
        let mut c = Chamulteon::new(model, ChamulteonConfig::reactive_only());
        let hot = c.tick(
            60.0,
            &[MonitoringSample::new(60.0, 60_000, 1.0, 3, None).unwrap()],
        );
        assert_eq!(hot, vec![5]);
        let cold = c.tick(
            120.0,
            &[MonitoringSample::new(60.0, 0, 0.0, 5, None).unwrap()],
        );
        assert_eq!(cold, vec![2]);
    }

    #[test]
    fn preloaded_history_enables_immediate_forecasting() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        // Two "days" of a 12-tick season.
        let rates: Vec<f64> = (0..24)
            .map(|k| 50.0 + 20.0 * ((k % 12) as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        c.preload_history(60.0, &rates);
        let _ = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(c.forecasts_made(), 1, "forecast on the very first tick");
    }

    #[test]
    fn preload_skips_bad_rates() {
        let mut c = controller(ChamulteonConfig::default());
        c.preload_history(60.0, &[1.0, f64::NAN, -3.0, 2.0]);
        // NaN dropped, negative clamped: effective history [1, 0, 2].
        let _ = c.tick(60.0, &samples_for(10.0, &[1, 1, 1]));
        // No panic is the main assertion; demand path unaffected.
        assert_eq!(c.estimated_demands().len(), 3);
    }

    #[test]
    #[should_panic(expected = "one monitoring sample per service")]
    fn wrong_sample_count_panics() {
        let mut c = controller(ChamulteonConfig::default());
        let _ = c.tick(60.0, &samples_for(10.0, &[1, 1, 1])[..2]);
    }

    fn raw_from(s: &MonitoringSample) -> crate::degradation::Observation {
        crate::degradation::Observation::Raw {
            duration: s.duration(),
            arrivals: s.arrivals() as f64,
            completions: s.completions() as f64,
            utilization: s.utilization(),
            instances: s.instances(),
            mean_response_time: s.mean_response_time(),
        }
    }

    #[test]
    fn tick_observed_with_clean_inputs_matches_tick() {
        let mut a = controller(ChamulteonConfig::default());
        let mut b = controller(ChamulteonConfig::default());
        for k in 0..20 {
            let t = 60.0 * (k as f64 + 1.0);
            let samples = samples_for(50.0 + k as f64, &[5, 9, 4]);
            let observations: Vec<_> = samples.iter().map(raw_from).collect();
            assert_eq!(a.tick(t, &samples), b.tick_observed(t, &observations));
        }
        assert!(b.degradation().is_empty(), "clean inputs never degrade");
    }

    #[test]
    fn corrupt_samples_are_quarantined_and_held() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let baseline = c.tick(60.0, &samples_for(100.0, &[10, 17, 7]));
        // Next tick: service 1 reports NaN arrivals, service 2 negative.
        let clean = samples_for(100.0, &[10, 17, 7]);
        let observations = vec![
            raw_from(&clean[0]),
            crate::degradation::Observation::Raw {
                duration: 60.0,
                arrivals: f64::NAN,
                completions: f64::NAN,
                utilization: f64::NAN,
                instances: 17,
                mean_response_time: None,
            },
            crate::degradation::Observation::Raw {
                duration: 60.0,
                arrivals: -6001.0,
                completions: -1.0,
                utilization: -0.7,
                instances: 7,
                mean_response_time: None,
            },
        ];
        let targets = c.tick_observed(120.0, &observations);
        // Held samples carry the same load: the decision stays put.
        assert_eq!(targets, baseline);
        let log = c.degradation();
        assert_eq!(
            log.count_matching(|r| matches!(r, DegradationReason::SampleQuarantined { .. })),
            2
        );
        assert_eq!(
            log.count_matching(|r| matches!(r, DegradationReason::SampleHeld { .. })),
            2
        );
    }

    #[test]
    fn all_samples_missing_holds_the_last_decision() {
        let mut c = controller(ChamulteonConfig::reactive_only());
        let first = c.tick(60.0, &samples_for(100.0, &[1, 1, 1]));
        let blind = vec![crate::degradation::Observation::Missing; 3];
        let held = c.tick_observed(120.0, &blind);
        assert_eq!(held, first, "previous targets re-issued");
        assert_eq!(
            c.degradation()
                .count_matching(|r| matches!(r, DegradationReason::HeldLastDecision)),
            1
        );
    }

    #[test]
    fn blind_first_tick_synthesizes_and_survives() {
        let mut c = controller(ChamulteonConfig::default());
        let blind = vec![crate::degradation::Observation::Missing; 3];
        // No history, no last decision: synthesized quiet samples, no panic.
        let targets = c.tick_observed(60.0, &blind);
        assert_eq!(targets.len(), 3);
        assert_eq!(
            c.degradation()
                .count_matching(|r| matches!(r, DegradationReason::SampleSynthesized { .. })),
            3
        );
    }

    #[test]
    fn stale_entry_rate_is_excluded_from_forecast_history() {
        let mut c = controller(ChamulteonConfig::default());
        let clean = samples_for(50.0, &[5, 9, 4]);
        let _ = c.tick(60.0, &clean);
        // Entry sample missing, others fresh.
        let observations = vec![
            crate::degradation::Observation::Missing,
            raw_from(&clean[1]),
            raw_from(&clean[2]),
        ];
        let _ = c.tick_observed(120.0, &observations);
        assert_eq!(
            c.degradation()
                .count_matching(|r| matches!(r, DegradationReason::EntryRateUnusable)),
            1
        );
    }

    #[test]
    fn take_degradation_drains_the_log() {
        let mut c = controller(ChamulteonConfig::default());
        let _ = c.tick_observed(60.0, &[crate::degradation::Observation::Missing; 3]);
        assert!(!c.degradation().is_empty());
        let taken = c.take_degradation();
        assert!(!taken.is_empty());
        assert!(c.degradation().is_empty());
    }

    #[test]
    fn preload_history_empty_slice_is_harmless() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        c.preload_history(60.0, &[]);
        let targets = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(targets.len(), 3);
        assert_eq!(c.forecasts_made(), 0, "no history, no forecast");
    }

    #[test]
    fn preload_history_single_sample_is_harmless() {
        let mut c = controller(ChamulteonConfig::proactive_only());
        c.preload_history(60.0, &[42.0]);
        let targets = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn preload_history_degenerate_interval_is_harmless() {
        let rates: Vec<f64> = (0..24).map(|k| 50.0 + (k % 12) as f64).collect();
        for interval in [0.0, -60.0, f64::NAN] {
            let mut c = controller(ChamulteonConfig::proactive_only());
            c.preload_history(interval, &rates);
            // Panic-freedom is the assertion (R1); the clamped step keeps
            // the preloaded history usable.
            let targets = c.tick(60.0, &samples_for(50.0, &[5, 9, 4]));
            assert_eq!(targets.len(), 3);
        }
    }
}
