//! Algorithm 1 of the paper: the queueing-theoretic decision logic.

use crate::config::ChamulteonConfig;
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::min_instances_for_utilization;
use chamulteon_queueing::CapacityCache;

/// Sizes one service for an offered arrival rate — the while-loops of
/// Algorithm 1 in closed form.
///
/// If the utilization `ρ = λ·D/n` at the current `n` breaches `ρ_upper`,
/// grow to the smallest `n` with `ρ ≤ ρ_target`; if it undershoots
/// `ρ_lower`, shrink likewise; otherwise keep `n`. The result is clamped
/// into the service's `[min, max]` bounds (lines 10 and 14).
pub fn size_service(
    arrival_rate: f64,
    service_demand: f64,
    current: u32,
    min_instances: u32,
    max_instances: u32,
    config: &ChamulteonConfig,
) -> u32 {
    size_service_with(
        &min_instances_for_utilization,
        arrival_rate,
        service_demand,
        current,
        min_instances,
        max_instances,
        config,
    )
}

/// [`size_service`] answered through a shared [`CapacityCache`]: repeated
/// (rate, demand) sizing queries — ubiquitous across the forecast horizon
/// and across monitoring intervals with similar load — hit the memo
/// instead of re-running the solver.
pub fn size_service_cached(
    cache: &CapacityCache,
    arrival_rate: f64,
    service_demand: f64,
    current: u32,
    min_instances: u32,
    max_instances: u32,
    config: &ChamulteonConfig,
) -> u32 {
    size_service_with(
        &|rate, demand, rho| cache.min_instances_for_utilization(rate, demand, rho),
        arrival_rate,
        service_demand,
        current,
        min_instances,
        max_instances,
        config,
    )
}

/// The shared sizing logic; `solve(λ, D, ρ_target)` answers the
/// utilization inversion (exactly or through a cache).
fn size_service_with(
    solve: &dyn Fn(f64, f64, f64) -> u32,
    arrival_rate: f64,
    service_demand: f64,
    current: u32,
    min_instances: u32,
    max_instances: u32,
    config: &ChamulteonConfig,
) -> u32 {
    let current = current.max(1);
    let load = arrival_rate.max(0.0) * service_demand.max(0.0);
    let rho = load / f64::from(current);
    let desired = if rho >= config.rho_upper || rho < config.rho_lower {
        solve(
            arrival_rate.max(0.0),
            service_demand.max(0.0),
            config.rho_target,
        )
    } else {
        current
    };
    desired.clamp(min_instances, max_instances)
}

/// The full proactive decision pass (Algorithm 1) for one point in time:
/// takes the forecast arrival rate at the user-facing service, estimates
/// the per-service arrival rates along the invocation graph
/// (`estimateArrivals`, line 5 — capacity-throttled by the *decided*
/// instance counts of predecessor services so that succeeding services are
/// scaled **with** their predecessors), and sizes every service.
///
/// Returns the target instance count per service.
///
/// The crucial coordination property: because predecessors are sized
/// *first* and the rate forwarded downstream uses their **new** capacity,
/// a scale-up at the entry immediately triggers matching scale-ups
/// downstream in the same decision round — "scaling can be triggered
/// earlier on succeeding services. This approach allows removing
/// oscillations" (§III-A).
pub fn proactive_decisions(
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> Vec<u32> {
    proactive_decisions_with(
        &min_instances_for_utilization,
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |_, _| {},
    )
}

/// [`proactive_decisions`] answered through a shared [`CapacityCache`].
///
/// The cache evaluates the solver at a quantized key (buckets of 2^12
/// ulps, see the cache docs); the 2⁻⁴⁰ relative rounding this introduces
/// is absorbed by the solver's own 1e-9 integer snap, so the decision per
/// tick is the same while repeated sizing queries across the forecast
/// horizon become hash lookups.
pub fn proactive_decisions_cached(
    cache: &CapacityCache,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> Vec<u32> {
    proactive_decisions_with(
        &|rate, demand, rho| cache.min_instances_for_utilization(rate, demand, rho),
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |_, _| {},
    )
}

/// Per-service sizing context captured by
/// [`proactive_decisions_cached_traced`], for decision provenance: the
/// local arrival rate each service was sized for and whether its sizing
/// solve was answered from the capacity cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingTrace {
    /// The offered (predecessor-forwarded) arrival rate per service at
    /// sizing time.
    pub offered: Vec<f64>,
    /// Whether the service's sizing solve hit the cache: `Some(true)` for
    /// a memo hit, `Some(false)` for a solver run, `None` when no solve
    /// was issued (utilization inside the hold band, or the degenerate
    /// bypass).
    pub cache_hit: Vec<Option<bool>>,
}

/// [`proactive_decisions_cached`] that additionally captures a
/// [`SizingTrace`]. The targets are identical by construction: the exact
/// same solve closure runs against the same cache, with only counter
/// reads interleaved.
pub fn proactive_decisions_cached_traced(
    cache: &CapacityCache,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> (Vec<u32>, SizingTrace) {
    let n = model.service_count();
    // Whether the most recent solve hit the memo, diffed from the shared
    // counters (this thread's solve is the only one between the reads in
    // the single-threaded decision pass; under concurrent cache sharing
    // the flag is best-effort, the target is exact either way).
    let last_hit: std::cell::Cell<Option<bool>> = std::cell::Cell::new(None);
    let solve = |rate: f64, demand: f64, rho: f64| {
        let before = cache.stats();
        let result = cache.min_instances_for_utilization(rate, demand, rho);
        let after = cache.stats();
        last_hit.set(if after.hits > before.hits {
            Some(true)
        } else if after.misses > before.misses {
            Some(false)
        } else {
            None // degenerate bypass: no lookup was counted
        });
        result
    };
    let mut trace = SizingTrace {
        offered: vec![f64::NAN; n],
        cache_hit: vec![None; n],
    };
    let targets = proactive_decisions_with(
        &solve,
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |node, offered_rate| {
            if let Some(slot) = trace.offered.get_mut(node) {
                *slot = offered_rate;
            }
            if let Some(slot) = trace.cache_hit.get_mut(node) {
                *slot = last_hit.take();
            }
        },
    );
    (targets, trace)
}

/// The shared decision pass behind [`proactive_decisions`] and
/// [`proactive_decisions_cached`]; `observe(node, offered)` fires right
/// after each service is sized in topological order, with the offered
/// rate it was sized for (backpressure re-sizing is not re-observed — the
/// trace reflects the primary coordinated pass).
#[allow(clippy::too_many_arguments)]
fn proactive_decisions_with(
    solve: &dyn Fn(f64, f64, f64) -> u32,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
    observe: &mut dyn FnMut(usize, f64),
) -> Vec<u32> {
    let n = model.service_count();
    let demands: Vec<f64> = (0..n)
        .map(|i| {
            estimated_demands
                .get(i)
                .copied()
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| model.service(i).nominal_demand())
        })
        .collect();
    let mut targets: Vec<u32> = (0..n)
        .map(|i| {
            current_instances
                .get(i)
                .copied()
                .unwrap_or_else(|| model.service(i).initial_instances())
                .max(1)
        })
        .collect();

    // Walk the invocation graph in topological order, sizing each service
    // for the rate its *already-sized* predecessors forward. A validated
    // model is acyclic; should a cycle ever slip through, fall back to
    // index order so every service is still sized.
    let order = model
        .graph()
        .topological_order()
        .unwrap_or_else(|| (0..n).collect());
    let mut offered = vec![0.0; n];
    offered[model.entry()] = forecast_entry_rate.max(0.0);
    for &node in &order {
        let spec = model.service(node);
        targets[node] = size_service_with(
            solve,
            offered[node],
            demands[node],
            targets[node],
            spec.min_instances(),
            spec.max_instances(),
            config,
        );
        observe(node, offered[node]);
        // Forward at most what the newly sized deployment can complete.
        let capacity = f64::from(targets[node]) / demands[node];
        let completed = offered[node].min(capacity);
        for &(to, multiplicity) in model.graph().calls_from(node) {
            offered[to] += completed * multiplicity;
        }
    }

    if config.backpressure_enabled {
        apply_backpressure(
            solve,
            model,
            forecast_entry_rate,
            &demands,
            &mut targets,
            config,
        );
    }
    targets
}

/// The return-path extension (§VI, second future-work item): when some
/// service is pinned at its `max_instances` and cannot serve the offered
/// rate, requests only queue behind it — provisioning upstream services for
/// the full rate wastes instance time. This pass computes the *achievable*
/// end-to-end rate (the smallest `capacity/visit_ratio` over all capped
/// bottlenecks) and re-sizes every service for that rate instead.
///
/// A no-op when no service is capped below its offered load.
fn apply_backpressure(
    solve: &dyn Fn(f64, f64, f64) -> u32,
    model: &ApplicationModel,
    entry_rate: f64,
    demands: &[f64],
    targets: &mut [u32],
    config: &ChamulteonConfig,
) {
    let ratios = model.visit_ratios();
    // Achievable external rate per service: its saturated max capacity
    // translated back to external-request units.
    let mut achievable = entry_rate.max(0.0);
    let mut bottlenecked = false;
    for (i, spec) in model.services().iter().enumerate() {
        if ratios[i] <= 0.0 {
            continue;
        }
        let offered_local = entry_rate.max(0.0) * ratios[i];
        let max_capacity = f64::from(spec.max_instances()) / demands[i];
        // Only a service that is *pinned at its maximum* and still short
        // exerts backpressure; anything below max can be scaled instead.
        if targets[i] == spec.max_instances() && offered_local > max_capacity * config.rho_upper {
            achievable = achievable.min(max_capacity * config.rho_target / ratios[i]);
            bottlenecked = true;
        }
    }
    if !bottlenecked || achievable >= entry_rate {
        return;
    }
    // Re-size everything for the achievable rate (the bottleneck itself
    // stays at max).
    for (i, spec) in model.services().iter().enumerate() {
        let local = achievable * ratios[i];
        let resized = size_service_with(
            solve,
            local,
            demands[i],
            targets[i],
            spec.min_instances(),
            spec.max_instances(),
            config,
        );
        targets[i] = targets[i].min(resized.max(spec.min_instances()));
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;
    use chamulteon_perfmodel::ApplicationModel;

    fn config() -> ChamulteonConfig {
        ChamulteonConfig::default()
    }

    #[test]
    fn size_service_scales_up_over_threshold() {
        // ρ = 20·0.1/2 = 1.0 ≥ 0.75 => ceil(2.0/0.6) = 4.
        assert_eq!(size_service(20.0, 0.1, 2, 1, 100, &config()), 4);
    }

    #[test]
    fn size_service_scales_down_under_threshold() {
        // ρ = 2·0.1/10 = 0.02 < 0.45 => ceil(0.2/0.6) = 1.
        assert_eq!(size_service(2.0, 0.1, 10, 1, 100, &config()), 1);
    }

    #[test]
    fn size_service_holds_inside_band() {
        // ρ = 12·0.1/2 = 0.6: inside [0.45, 0.75).
        assert_eq!(size_service(12.0, 0.1, 2, 1, 100, &config()), 2);
    }

    #[test]
    fn size_service_respects_bounds() {
        // Wants 4, capped at 3.
        assert_eq!(size_service(20.0, 0.1, 2, 1, 3, &config()), 3);
        // Wants 1, floored at 2.
        assert_eq!(size_service(0.0, 0.1, 10, 2, 100, &config()), 2);
    }

    #[test]
    fn size_service_result_is_inside_band_when_feasible() {
        for &rate in &[5.0, 17.0, 44.0, 123.0, 999.0] {
            let n = size_service(rate, 0.1, 1, 1, 10_000, &config());
            let rho = rate * 0.1 / f64::from(n);
            assert!(rho <= config().rho_target + 1e-9, "rate {rate}: rho {rho}");
        }
    }

    #[test]
    fn coordinated_scaling_sizes_all_tiers_together() {
        let model = ApplicationModel::paper_benchmark();
        // Forecast 100 req/s on a cold 1/1/1 deployment.
        let targets =
            proactive_decisions(&model, 100.0, &[0.059, 0.1, 0.04], &[1, 1, 1], &config());
        // Every tier sized for the full 100 req/s in ONE round:
        // ui: ceil(5.9/0.6)=10, validation: ceil(10/0.6)=17, data: ceil(4/0.6)=7.
        assert_eq!(targets, vec![10, 17, 7]);
    }

    #[test]
    fn no_bottleneck_shifting_in_decisions() {
        // Contrast with the baselines: downstream tiers are NOT throttled
        // to the old upstream capacity (1/0.059 ≈ 17 req/s) but sized for
        // the post-scaling flow.
        let model = ApplicationModel::paper_benchmark();
        let targets =
            proactive_decisions(&model, 100.0, &[0.059, 0.1, 0.04], &[1, 1, 1], &config());
        // If shifting occurred, validation would be sized for ~17 req/s
        // (ceil(1.7/0.6) = 3); it must instead be sized for ~100 req/s.
        assert!(targets[1] >= 17);
    }

    #[test]
    fn overloaded_cap_throttles_downstream() {
        // Entry capped at max 2 instances => completes ≈ 2/0.059 = 33.9;
        // downstream sized for 33.9, not 1000.
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("ui", 0.059, 1, 2, 1)
            .service("validation", 0.1, 1, 200, 1)
            .call("ui", "validation", 1.0)
            .entry("ui")
            .build()
            .unwrap();
        let targets = proactive_decisions(&model, 1000.0, &[0.059, 0.1], &[1, 1], &config());
        assert_eq!(targets[0], 2);
        let expected_val = ((2.0 / 0.059) * 0.1 / 0.6_f64).ceil() as u32;
        assert_eq!(targets[1], expected_val);
    }

    #[test]
    fn backpressure_shrinks_upstream_of_capped_bottleneck() {
        // Data tier capped at 3 instances (75 req/s max); 1000 req/s
        // offered. Without backpressure the UI and validation tiers are
        // sized for the full 1000 req/s they can never usefully serve.
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("ui", 0.059, 1, 500, 1)
            .service("validation", 0.1, 1, 500, 1)
            .service("data", 0.04, 1, 3, 1)
            .call("ui", "validation", 1.0)
            .call("validation", "data", 1.0)
            .entry("ui")
            .build()
            .unwrap();
        let plain = proactive_decisions(
            &model,
            1000.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::default(),
        );
        let aware = proactive_decisions(
            &model,
            1000.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        assert_eq!(plain[2], 3);
        assert_eq!(aware[2], 3);
        // Upstream tiers shrink to the bottleneck's achievable rate
        // (3/0.04 · 0.6 = 45 req/s): ui ceil(45·0.059/0.6) = 5.
        assert!(aware[0] < plain[0], "{aware:?} vs {plain:?}");
        assert!(aware[1] < plain[1]);
        assert_eq!(aware[0], 5);
        assert_eq!(aware[1], 8);
    }

    #[test]
    fn backpressure_is_noop_without_capped_bottleneck() {
        let model = ApplicationModel::paper_benchmark();
        let plain = proactive_decisions(
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::default(),
        );
        let aware = proactive_decisions(
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        assert_eq!(plain, aware);
    }

    #[test]
    fn backpressure_never_violates_min_instances() {
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("a", 0.1, 4, 100, 4)
            .service("b", 0.1, 1, 2, 1)
            .call("a", "b", 1.0)
            .entry("a")
            .build()
            .unwrap();
        let aware = proactive_decisions(
            &model,
            500.0,
            &[0.1, 0.1],
            &[4, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        assert!(aware[0] >= 4);
        assert_eq!(aware[1], 2);
    }

    #[test]
    fn cached_decisions_match_exact_decisions() {
        let model = ApplicationModel::paper_benchmark();
        let cache = chamulteon_queueing::CapacityCache::new();
        for &rate in &[0.0, 1.0, 33.9, 100.0, 123.456, 999.0] {
            let exact =
                proactive_decisions(&model, rate, &[0.059, 0.1, 0.04], &[1, 1, 1], &config());
            let cached = proactive_decisions_cached(
                &cache,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
            assert_eq!(exact, cached, "rate {rate}");
        }
        // The second sweep is answered from the memo.
        let misses_after_first_sweep = cache.stats().misses;
        for &rate in &[0.0, 1.0, 33.9, 100.0, 123.456, 999.0] {
            let _ = proactive_decisions_cached(
                &cache,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
        }
        assert_eq!(cache.stats().misses, misses_after_first_sweep);
    }

    #[test]
    fn traced_decisions_match_untraced_and_capture_context() {
        let model = ApplicationModel::paper_benchmark();
        let cache = chamulteon_queueing::CapacityCache::new();
        let shadow = chamulteon_queueing::CapacityCache::new();
        for &rate in &[0.0, 1.0, 33.9, 100.0, 123.456, 999.0] {
            let plain = proactive_decisions_cached(
                &cache,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
            let (traced, trace) = proactive_decisions_cached_traced(
                &shadow,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
            assert_eq!(plain, traced, "rate {rate}");
            assert_eq!(trace.offered.len(), 3);
            assert_eq!(trace.cache_hit.len(), 3);
            // The entry's offered rate is the forecast rate itself.
            assert_eq!(trace.offered[model.entry()], rate.max(0.0));
        }
        // Counters agree: tracing issues exactly the same lookups.
        assert_eq!(cache.stats(), shadow.stats());

        // First solve of a fresh cache is a miss; repeating it is a hit.
        let fresh = chamulteon_queueing::CapacityCache::new();
        let (_, first) = proactive_decisions_cached_traced(
            &fresh,
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &config(),
        );
        assert_eq!(first.cache_hit, vec![Some(false); 3]);
        let (_, second) = proactive_decisions_cached_traced(
            &fresh,
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &config(),
        );
        assert_eq!(second.cache_hit, vec![Some(true); 3]);
        // A zero-rate degenerate sizing bypasses the cache: solve runs
        // (rho 0 under the band) but no lookup is counted.
        let (_, idle) = proactive_decisions_cached_traced(
            &fresh,
            &model,
            0.0,
            &[0.059, 0.1, 0.04],
            &[50, 80, 30],
            &config(),
        );
        assert_eq!(idle.cache_hit, vec![None; 3]);
    }

    #[test]
    fn idle_forecast_scales_down_everything() {
        let model = ApplicationModel::paper_benchmark();
        let targets =
            proactive_decisions(&model, 0.0, &[0.059, 0.1, 0.04], &[50, 80, 30], &config());
        assert_eq!(targets, vec![1, 1, 1]);
    }

    #[test]
    fn missing_inputs_fall_back_to_model() {
        let model = ApplicationModel::paper_benchmark();
        let targets = proactive_decisions(&model, 50.0, &[], &[], &config());
        assert_eq!(targets.len(), 3);
        assert!(targets.iter().all(|&t| t >= 1));
    }
}
