//! Algorithm 1 of the paper: the queueing-theoretic decision logic.

use crate::config::ChamulteonConfig;
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::min_instances_for_utilization;
use chamulteon_queueing::CapacityCache;

/// Sizes one service for an offered arrival rate — the while-loops of
/// Algorithm 1 in closed form.
///
/// If the utilization `ρ = λ·D/n` at the current `n` breaches `ρ_upper`,
/// grow to the smallest `n` with `ρ ≤ ρ_target`; if it undershoots
/// `ρ_lower`, shrink likewise; otherwise keep `n`. The result is clamped
/// into the service's `[min, max]` bounds (lines 10 and 14).
pub fn size_service(
    arrival_rate: f64,
    service_demand: f64,
    current: u32,
    min_instances: u32,
    max_instances: u32,
    config: &ChamulteonConfig,
) -> u32 {
    size_service_with(
        &mut |rate, demand, rho| min_instances_for_utilization(rate, demand, rho),
        arrival_rate,
        service_demand,
        current,
        min_instances,
        max_instances,
        config,
    )
}

/// [`size_service`] answered through a shared [`CapacityCache`]: repeated
/// (rate, demand) sizing queries — ubiquitous across the forecast horizon
/// and across monitoring intervals with similar load — hit the memo
/// instead of re-running the solver.
pub fn size_service_cached(
    cache: &CapacityCache,
    arrival_rate: f64,
    service_demand: f64,
    current: u32,
    min_instances: u32,
    max_instances: u32,
    config: &ChamulteonConfig,
) -> u32 {
    size_service_with(
        &mut |rate, demand, rho| cache.min_instances_for_utilization(rate, demand, rho),
        arrival_rate,
        service_demand,
        current,
        min_instances,
        max_instances,
        config,
    )
}

/// The shared sizing logic; `solve(λ, D, ρ_target)` answers the
/// utilization inversion (exactly or through a cache).
fn size_service_with(
    solve: &mut dyn FnMut(f64, f64, f64) -> u32,
    arrival_rate: f64,
    service_demand: f64,
    current: u32,
    min_instances: u32,
    max_instances: u32,
    config: &ChamulteonConfig,
) -> u32 {
    let current = current.max(1);
    let load = arrival_rate.max(0.0) * service_demand.max(0.0);
    let rho = load / f64::from(current);
    let desired = if rho >= config.rho_upper || rho < config.rho_lower {
        solve(
            arrival_rate.max(0.0),
            service_demand.max(0.0),
            config.rho_target,
        )
    } else {
        current
    };
    desired.clamp(min_instances, max_instances)
}

/// The full proactive decision pass (Algorithm 1) for one point in time:
/// takes the forecast arrival rate at the user-facing service, estimates
/// the per-service arrival rates along the invocation graph
/// (`estimateArrivals`, line 5 — capacity-throttled by the *decided*
/// instance counts of predecessor services so that succeeding services are
/// scaled **with** their predecessors), and sizes every service.
///
/// Returns the target instance count per service.
///
/// The crucial coordination property: because predecessors are sized
/// *first* and the rate forwarded downstream uses their **new** capacity,
/// a scale-up at the entry immediately triggers matching scale-ups
/// downstream in the same decision round — "scaling can be triggered
/// earlier on succeeding services. This approach allows removing
/// oscillations" (§III-A).
pub fn proactive_decisions(
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> Vec<u32> {
    proactive_decisions_with(
        &mut |rate, demand, rho| min_instances_for_utilization(rate, demand, rho),
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |_, _| {},
    )
}

/// [`proactive_decisions`] answered through a shared [`CapacityCache`].
///
/// The cache evaluates the solver at a quantized key (buckets of 2^12
/// ulps, see the cache docs); the 2⁻⁴⁰ relative rounding this introduces
/// is absorbed by the solver's own 1e-9 integer snap, so the decision per
/// tick is the same while repeated sizing queries across the forecast
/// horizon become hash lookups.
///
/// Internally this runs the staged pass
/// ([`proactive_decisions_staged`]): per arena stage, the capacity solves
/// are collected in stage order and answered through
/// the cache's hoisted [`UtilizationCornerSolver`] — the quantized bucket
/// corner evaluated in closed form directly, since for the utilization
/// inversion the memo probe costs more than the solve it would save. The
/// solver is built once per pass (target sanitized and quantized up
/// front) and the solve loop is monomorphized into the stage walk, so a
/// singleton stage pays a handful of inlined float ops per solve. Targets
/// are bit-identical to the sequential per-service memoized path (a
/// Utilization memo entry is exactly that corner evaluation, and the
/// solver is pure); only the lock, hash and map-growth traffic
/// disappears.
pub fn proactive_decisions_cached(
    cache: &CapacityCache,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> Vec<u32> {
    let corner = cache.utilization_corner_solver(config.rho_target);
    proactive_decisions_staged(
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |cells: &[SizingCell], solved: &mut Vec<u32>| {
            solved.clear();
            solved.reserve(cells.len());
            solved.extend(
                cells
                    .iter()
                    .map(|c| corner.solve(c.arrival_rate, c.service_demand)),
            );
        },
    )
}

/// One capacity-solve request of the staged decision pass: an
/// offered arrival rate and a service demand to size for (the utilization
/// target comes from the shared config). Inputs are already clamped
/// non-negative, exactly as [`size_service`] passes them to its solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingCell {
    /// The offered (predecessor-forwarded) arrival rate, ≥ 0.
    pub arrival_rate: f64,
    /// The estimated service demand in seconds, ≥ 0.
    pub service_demand: f64,
}

/// The hold-band decision of [`size_service`] —
/// `ρ ≥ ρ_upper || ρ < ρ_lower` with `ρ = load / current` — computed
/// without the division in the common case.
///
/// The division only exists to compare against the two thresholds, so the
/// comparisons are first attempted multiplicatively against guard-banded
/// products `ρ_bound · current`: one rounded multiplication and one
/// rounded division each introduce at most 1 ulp of relative error, so a
/// 16-ulp guard band is conservatively wide — any `load` beyond it is
/// provably on the same side under both formulations. Only a `load`
/// inside the ~16-ulp borderline region (or a degenerate configuration:
/// non-positive, non-finite, or extreme-magnitude thresholds, where the
/// relative-error argument breaks down) falls back to the exact division.
/// The returned decision is therefore **bit-identical** to the division
/// form for every input; an `fdiv` per service per tick is simply skipped
/// almost always.
#[inline]
fn outside_hold_band(load: f64, current: f64, rho_upper: f64, rho_lower: f64) -> bool {
    // One-sided guard factors, exactly representable.
    const UP: f64 = 1.0 + 16.0 * f64::EPSILON;
    const DOWN: f64 = 1.0 - 16.0 * f64::EPSILON;
    let hi = rho_upper * current;
    let lo = rho_lower * current;
    // The relative-error bound needs both products comfortably inside the
    // normal range; `current` is at least 1 and at most 2^32, so for sane
    // utilization bounds this guard always passes.
    if hi > 1e-300 && hi < 1e300 && (lo == 0.0 || (lo > 1e-300 && lo < 1e300)) {
        if load >= hi * UP || (lo > 0.0 && load < lo * DOWN) {
            return true; // provably ρ ≥ upper, or provably ρ < lower
        }
        // `lo == 0.0` holds trivially: ρ = load/current ≥ 0 = ρ_lower.
        if load <= hi * DOWN && (lo == 0.0 || load >= lo * UP) {
            return false; // provably inside the band
        }
    }
    let rho = load / current;
    rho >= rho_upper || rho < rho_lower
}

/// The staged decision pass: Algorithm 1 restructured around the model's
/// arena so a caller can answer each stage's capacity solves however it
/// likes — batched through one cache lock ([`proactive_decisions_cached`])
/// or sharded across worker threads (the bench crate's graph-scale
/// runner).
///
/// Per arena stage (a maximal prefix of the canonical topological order
/// whose services don't call each other):
///
/// 1. every stage service is hold-band checked against its offered rate
///    (services inside the band keep their clamped current count and issue
///    no solve),
/// 2. the remaining services' `(rate, demand)` queries are collected into
///    a list of [`SizingCell`]s in stage order — duplicates included: the
///    walk does not dedupe, because a solver cheap enough to batch (the
///    corner evaluation) costs less per query than sorting the keys
///    would, and the memoized batch entry point dedupes for free through
///    the memo itself (the first occurrence misses, the rest hit under
///    the same lock),
/// 3. `run_batch(cells, solved)` answers them into a reused output buffer
///    (one raw instance count per cell, in order; a short fill degrades
///    to a count of 1),
/// 4. each pending service gets its cell's answer clamped into its own
///    `[min, max]` bounds (cells and pending services correspond by
///    position),
/// 5. the stage's completed rates are forwarded along the graph
///    **sequentially in canonical order**, so every float accumulation
///    into a downstream service's offered rate happens in exactly the
///    order the sequential pass uses.
///
/// Because stages partition the canonical order, and no service's offered
/// rate is read before all its predecessors have forwarded (predecessors
/// always sit in earlier stages), the returned targets are bit-identical
/// to [`proactive_decisions`] with the same solver — regardless of how
/// `run_batch` schedules the solves internally. Backpressure remains a
/// sequential epilogue, issuing singleton batches in service-index order.
pub fn proactive_decisions_staged<F>(
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
    run_batch: &mut F,
) -> Vec<u32>
where
    F: FnMut(&[SizingCell], &mut Vec<u32>) + ?Sized,
{
    let arena = model.arena();
    let n = arena.node_count();
    // With no estimates at all, the sanitized demand vector IS the
    // arena's nominal-demand cache (every entry finite and positive by
    // construction) — borrow it instead of copying 1000 floats per call.
    let demands_storage: Vec<f64>;
    let demands: &[f64] = if estimated_demands.is_empty() {
        arena.nominal_demands()
    } else {
        demands_storage = (0..n)
            .map(|i| {
                estimated_demands
                    .get(i)
                    .copied()
                    .filter(|d| d.is_finite() && *d > 0.0)
                    .unwrap_or_else(|| arena.nominal_demand(i))
            })
            .collect();
        &demands_storage
    };
    let mut targets: Vec<u32> = (0..n)
        .map(|i| {
            current_instances
                .get(i)
                .copied()
                .unwrap_or_else(|| arena.initial_instances(i))
                .max(1)
        })
        .collect();
    let mut offered = vec![0.0; n];
    if n > 0 {
        offered[arena.entry()] = forecast_entry_rate.max(0.0);
    }

    let mut pending: Vec<usize> = Vec::new();
    let mut cells: Vec<SizingCell> = Vec::new();
    let mut solved: Vec<u32> = Vec::new();
    for stage in 0..arena.stage_count() {
        if let &[node] = arena.stage(stage) {
            // Singleton-stage fast path — every stage of a chain-like
            // graph: band-check, solve and forward inline, no pending
            // list, nothing to scatter. Identical operations in identical
            // order to the general path below.
            let current = targets[node].max(1);
            let rate = offered[node].max(0.0);
            let demand = demands[node].max(0.0);
            let desired = if outside_hold_band(
                rate * demand,
                f64::from(current),
                config.rho_upper,
                config.rho_lower,
            ) {
                cells.clear();
                cells.push(SizingCell {
                    arrival_rate: rate,
                    service_demand: demand,
                });
                run_batch(&cells, &mut solved);
                solved.first().copied().unwrap_or(1)
            } else {
                current
            };
            targets[node] = desired.clamp(arena.min_instances(node), arena.max_instances(node));
            let capacity = f64::from(targets[node]) / demands[node];
            let completed = offered[node].min(capacity);
            for (to, multiplicity) in arena.calls_from(node) {
                offered[to] += completed * multiplicity;
            }
            continue;
        }
        // 1) Hold-band check, mirroring `size_service` exactly; pending
        //    services collect their sizing queries in stage order.
        pending.clear();
        cells.clear();
        for &node in arena.stage(stage) {
            let current = targets[node].max(1);
            let rate = offered[node].max(0.0);
            let demand = demands[node].max(0.0);
            if outside_hold_band(
                rate * demand,
                f64::from(current),
                config.rho_upper,
                config.rho_lower,
            ) {
                pending.push(node);
                cells.push(SizingCell {
                    arrival_rate: rate,
                    service_demand: demand,
                });
            } else {
                targets[node] = current.clamp(arena.min_instances(node), arena.max_instances(node));
            }
        }
        if !pending.is_empty() {
            // 2) Answer the queries (one cell per pending service).
            run_batch(&cells, &mut solved);
            // 3) Scatter each answer back by position and clamp.
            for (idx, &node) in pending.iter().enumerate() {
                let desired = solved.get(idx).copied().unwrap_or(1);
                targets[node] = desired.clamp(arena.min_instances(node), arena.max_instances(node));
            }
        }
        // 5) Forward completed rates sequentially in canonical order.
        for &node in arena.stage(stage) {
            let capacity = f64::from(targets[node]) / demands[node];
            let completed = offered[node].min(capacity);
            for (to, multiplicity) in arena.calls_from(node) {
                offered[to] += completed * multiplicity;
            }
        }
    }

    if config.backpressure_enabled {
        // Sequential epilogue: singleton batches in service-index order
        // issue exactly the lookups the per-service path would.
        let mut solve_one = |rate: f64, demand: f64, _rho: f64| {
            run_batch(
                &[SizingCell {
                    arrival_rate: rate,
                    service_demand: demand,
                }],
                &mut solved,
            );
            solved.first().copied().unwrap_or(1)
        };
        apply_backpressure(
            &mut solve_one,
            model,
            forecast_entry_rate,
            demands,
            &mut targets,
            config,
        );
    }
    targets
}

/// Per-service sizing context captured by
/// [`proactive_decisions_cached_traced`], for decision provenance: the
/// local arrival rate each service was sized for and whether its sizing
/// solve was answered from the capacity cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingTrace {
    /// The offered (predecessor-forwarded) arrival rate per service at
    /// sizing time.
    pub offered: Vec<f64>,
    /// Whether the service's sizing solve hit the cache: `Some(true)` for
    /// a memo hit, `Some(false)` for a solver run, `None` when no solve
    /// was issued (utilization inside the hold band, or the degenerate
    /// bypass).
    pub cache_hit: Vec<Option<bool>>,
}

/// [`proactive_decisions_cached`] that additionally captures a
/// [`SizingTrace`]. The targets are identical by construction: the exact
/// same solve closure runs against the same cache, with only counter
/// reads interleaved.
pub fn proactive_decisions_cached_traced(
    cache: &CapacityCache,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
) -> (Vec<u32>, SizingTrace) {
    let n = model.service_count();
    // Whether the most recent solve hit the memo, diffed from the shared
    // counters (this thread's solve is the only one between the reads in
    // the single-threaded decision pass; under concurrent cache sharing
    // the flag is best-effort, the target is exact either way).
    let last_hit: std::cell::Cell<Option<bool>> = std::cell::Cell::new(None);
    let mut solve = |rate: f64, demand: f64, rho: f64| {
        let before = cache.stats();
        let result = cache.min_instances_for_utilization(rate, demand, rho);
        let after = cache.stats();
        last_hit.set(if after.hits > before.hits {
            Some(true)
        } else if after.misses > before.misses {
            Some(false)
        } else {
            None // degenerate bypass: no lookup was counted
        });
        result
    };
    let mut trace = SizingTrace {
        offered: vec![f64::NAN; n],
        cache_hit: vec![None; n],
    };
    let targets = proactive_decisions_with(
        &mut solve,
        model,
        forecast_entry_rate,
        estimated_demands,
        current_instances,
        config,
        &mut |node, offered_rate| {
            if let Some(slot) = trace.offered.get_mut(node) {
                *slot = offered_rate;
            }
            if let Some(slot) = trace.cache_hit.get_mut(node) {
                *slot = last_hit.take();
            }
        },
    );
    (targets, trace)
}

/// The shared decision pass behind [`proactive_decisions`] and
/// [`proactive_decisions_cached`]; `observe(node, offered)` fires right
/// after each service is sized in topological order, with the offered
/// rate it was sized for (backpressure re-sizing is not re-observed — the
/// trace reflects the primary coordinated pass).
#[allow(clippy::too_many_arguments)]
fn proactive_decisions_with(
    solve: &mut dyn FnMut(f64, f64, f64) -> u32,
    model: &ApplicationModel,
    forecast_entry_rate: f64,
    estimated_demands: &[f64],
    current_instances: &[u32],
    config: &ChamulteonConfig,
    observe: &mut dyn FnMut(usize, f64),
) -> Vec<u32> {
    let arena = model.arena();
    let n = arena.node_count();
    let demands: Vec<f64> = (0..n)
        .map(|i| {
            estimated_demands
                .get(i)
                .copied()
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| arena.nominal_demand(i))
        })
        .collect();
    let mut targets: Vec<u32> = (0..n)
        .map(|i| {
            current_instances
                .get(i)
                .copied()
                .unwrap_or_else(|| arena.initial_instances(i))
                .max(1)
        })
        .collect();

    // Walk the invocation graph in the arena's precomputed canonical
    // topological order, sizing each service for the rate its
    // *already-sized* predecessors forward.
    let mut offered = vec![0.0; n];
    if n > 0 {
        offered[arena.entry()] = forecast_entry_rate.max(0.0);
    }
    for &node in arena.topo_order() {
        targets[node] = size_service_with(
            solve,
            offered[node],
            demands[node],
            targets[node],
            arena.min_instances(node),
            arena.max_instances(node),
            config,
        );
        observe(node, offered[node]);
        // Forward at most what the newly sized deployment can complete.
        let capacity = f64::from(targets[node]) / demands[node];
        let completed = offered[node].min(capacity);
        for (to, multiplicity) in arena.calls_from(node) {
            offered[to] += completed * multiplicity;
        }
    }

    if config.backpressure_enabled {
        apply_backpressure(
            solve,
            model,
            forecast_entry_rate,
            &demands,
            &mut targets,
            config,
        );
    }
    targets
}

/// The return-path extension (§VI, second future-work item): when some
/// service is pinned at its `max_instances` and cannot serve the offered
/// rate, requests only queue behind it — provisioning upstream services for
/// the full rate wastes instance time. This pass computes the *achievable*
/// end-to-end rate (the smallest `capacity/visit_ratio` over all capped
/// bottlenecks) and re-sizes every service for that rate instead.
///
/// A no-op when no service is capped below its offered load.
fn apply_backpressure(
    solve: &mut dyn FnMut(f64, f64, f64) -> u32,
    model: &ApplicationModel,
    entry_rate: f64,
    demands: &[f64],
    targets: &mut [u32],
    config: &ChamulteonConfig,
) {
    let arena = model.arena();
    let ratios = arena.visit_ratios();
    // Achievable external rate per service: its saturated max capacity
    // translated back to external-request units.
    let mut achievable = entry_rate.max(0.0);
    let mut bottlenecked = false;
    for i in 0..arena.node_count() {
        if ratios[i] <= 0.0 {
            continue;
        }
        let offered_local = entry_rate.max(0.0) * ratios[i];
        let max_capacity = f64::from(arena.max_instances(i)) / demands[i];
        // Only a service that is *pinned at its maximum* and still short
        // exerts backpressure; anything below max can be scaled instead.
        if targets[i] == arena.max_instances(i) && offered_local > max_capacity * config.rho_upper {
            achievable = achievable.min(max_capacity * config.rho_target / ratios[i]);
            bottlenecked = true;
        }
    }
    if !bottlenecked || achievable >= entry_rate {
        return;
    }
    // Re-size everything for the achievable rate (the bottleneck itself
    // stays at max).
    for i in 0..arena.node_count() {
        let local = achievable * ratios[i];
        let resized = size_service_with(
            solve,
            local,
            demands[i],
            targets[i],
            arena.min_instances(i),
            arena.max_instances(i),
            config,
        );
        targets[i] = targets[i].min(resized.max(arena.min_instances(i)));
    }
}

#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)] // test fixtures cast freely
mod tests {
    use super::*;
    use chamulteon_perfmodel::ApplicationModel;

    fn config() -> ChamulteonConfig {
        ChamulteonConfig::default()
    }

    #[test]
    fn size_service_scales_up_over_threshold() {
        // ρ = 20·0.1/2 = 1.0 ≥ 0.75 => ceil(2.0/0.6) = 4.
        assert_eq!(size_service(20.0, 0.1, 2, 1, 100, &config()), 4);
    }

    #[test]
    fn size_service_scales_down_under_threshold() {
        // ρ = 2·0.1/10 = 0.02 < 0.45 => ceil(0.2/0.6) = 1.
        assert_eq!(size_service(2.0, 0.1, 10, 1, 100, &config()), 1);
    }

    #[test]
    fn size_service_holds_inside_band() {
        // ρ = 12·0.1/2 = 0.6: inside [0.45, 0.75).
        assert_eq!(size_service(12.0, 0.1, 2, 1, 100, &config()), 2);
    }

    #[test]
    fn size_service_respects_bounds() {
        // Wants 4, capped at 3.
        assert_eq!(size_service(20.0, 0.1, 2, 1, 3, &config()), 3);
        // Wants 1, floored at 2.
        assert_eq!(size_service(0.0, 0.1, 10, 2, 100, &config()), 2);
    }

    #[test]
    fn size_service_result_is_inside_band_when_feasible() {
        for &rate in &[5.0, 17.0, 44.0, 123.0, 999.0] {
            let n = size_service(rate, 0.1, 1, 1, 10_000, &config());
            let rho = rate * 0.1 / f64::from(n);
            assert!(rho <= config().rho_target + 1e-9, "rate {rate}: rho {rho}");
        }
    }

    #[test]
    fn coordinated_scaling_sizes_all_tiers_together() {
        let model = ApplicationModel::paper_benchmark();
        // Forecast 100 req/s on a cold 1/1/1 deployment.
        let targets =
            proactive_decisions(&model, 100.0, &[0.059, 0.1, 0.04], &[1, 1, 1], &config());
        // Every tier sized for the full 100 req/s in ONE round:
        // ui: ceil(5.9/0.6)=10, validation: ceil(10/0.6)=17, data: ceil(4/0.6)=7.
        assert_eq!(targets, vec![10, 17, 7]);
    }

    #[test]
    fn no_bottleneck_shifting_in_decisions() {
        // Contrast with the baselines: downstream tiers are NOT throttled
        // to the old upstream capacity (1/0.059 ≈ 17 req/s) but sized for
        // the post-scaling flow.
        let model = ApplicationModel::paper_benchmark();
        let targets =
            proactive_decisions(&model, 100.0, &[0.059, 0.1, 0.04], &[1, 1, 1], &config());
        // If shifting occurred, validation would be sized for ~17 req/s
        // (ceil(1.7/0.6) = 3); it must instead be sized for ~100 req/s.
        assert!(targets[1] >= 17);
    }

    #[test]
    fn overloaded_cap_throttles_downstream() {
        // Entry capped at max 2 instances => completes ≈ 2/0.059 = 33.9;
        // downstream sized for 33.9, not 1000.
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("ui", 0.059, 1, 2, 1)
            .service("validation", 0.1, 1, 200, 1)
            .call("ui", "validation", 1.0)
            .entry("ui")
            .build()
            .unwrap();
        let targets = proactive_decisions(&model, 1000.0, &[0.059, 0.1], &[1, 1], &config());
        assert_eq!(targets[0], 2);
        let expected_val = ((2.0 / 0.059) * 0.1 / 0.6_f64).ceil() as u32;
        assert_eq!(targets[1], expected_val);
    }

    #[test]
    fn backpressure_shrinks_upstream_of_capped_bottleneck() {
        // Data tier capped at 3 instances (75 req/s max); 1000 req/s
        // offered. Without backpressure the UI and validation tiers are
        // sized for the full 1000 req/s they can never usefully serve.
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("ui", 0.059, 1, 500, 1)
            .service("validation", 0.1, 1, 500, 1)
            .service("data", 0.04, 1, 3, 1)
            .call("ui", "validation", 1.0)
            .call("validation", "data", 1.0)
            .entry("ui")
            .build()
            .unwrap();
        let plain = proactive_decisions(
            &model,
            1000.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::default(),
        );
        let aware = proactive_decisions(
            &model,
            1000.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        assert_eq!(plain[2], 3);
        assert_eq!(aware[2], 3);
        // Upstream tiers shrink to the bottleneck's achievable rate
        // (3/0.04 · 0.6 = 45 req/s): ui ceil(45·0.059/0.6) = 5.
        assert!(aware[0] < plain[0], "{aware:?} vs {plain:?}");
        assert!(aware[1] < plain[1]);
        assert_eq!(aware[0], 5);
        assert_eq!(aware[1], 8);
    }

    #[test]
    fn backpressure_is_noop_without_capped_bottleneck() {
        let model = ApplicationModel::paper_benchmark();
        let plain = proactive_decisions(
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::default(),
        );
        let aware = proactive_decisions(
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        assert_eq!(plain, aware);
    }

    #[test]
    fn backpressure_never_violates_min_instances() {
        let model = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("a", 0.1, 4, 100, 4)
            .service("b", 0.1, 1, 2, 1)
            .call("a", "b", 1.0)
            .entry("a")
            .build()
            .unwrap();
        let aware = proactive_decisions(
            &model,
            500.0,
            &[0.1, 0.1],
            &[4, 1],
            &ChamulteonConfig::with_backpressure(),
        );
        assert!(aware[0] >= 4);
        assert_eq!(aware[1], 2);
    }

    #[test]
    fn cached_decisions_match_exact_decisions() {
        let model = ApplicationModel::paper_benchmark();
        let cache = chamulteon_queueing::CapacityCache::new();
        for &rate in &[0.0, 1.0, 33.9, 100.0, 123.456, 999.0] {
            let exact =
                proactive_decisions(&model, rate, &[0.059, 0.1, 0.04], &[1, 1, 1], &config());
            let cached = proactive_decisions_cached(
                &cache,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
            assert_eq!(exact, cached, "rate {rate}");
        }
        // The batched pass answers by corner evaluation: no memo traffic
        // at all, so repeating the sweep still issues zero lookups.
        assert_eq!(cache.stats(), chamulteon_queueing::CacheStats::default());
        for &rate in &[0.0, 1.0, 33.9, 100.0, 123.456, 999.0] {
            let _ = proactive_decisions_cached(
                &cache,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
        }
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn traced_decisions_match_untraced_and_capture_context() {
        let model = ApplicationModel::paper_benchmark();
        let cache = chamulteon_queueing::CapacityCache::new();
        let shadow = chamulteon_queueing::CapacityCache::new();
        for &rate in &[0.0, 1.0, 33.9, 100.0, 123.456, 999.0] {
            let plain = proactive_decisions_cached(
                &cache,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
            let (traced, trace) = proactive_decisions_cached_traced(
                &shadow,
                &model,
                rate,
                &[0.059, 0.1, 0.04],
                &[1, 1, 1],
                &config(),
            );
            assert_eq!(plain, traced, "rate {rate}");
            assert_eq!(trace.offered.len(), 3);
            assert_eq!(trace.cache_hit.len(), 3);
            // The entry's offered rate is the forecast rate itself.
            assert_eq!(trace.offered[model.entry()], rate.max(0.0));
        }
        // The plain batched path answers by corner evaluation and issues
        // no memo lookups; the traced path deliberately routes through the
        // memoized single-query entry so its per-service hit/miss
        // provenance stays meaningful.
        assert_eq!(cache.stats(), chamulteon_queueing::CacheStats::default());
        assert!(shadow.stats().misses > 0);

        // First solve of a fresh cache is a miss; repeating it is a hit.
        let fresh = chamulteon_queueing::CapacityCache::new();
        let (_, first) = proactive_decisions_cached_traced(
            &fresh,
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &config(),
        );
        assert_eq!(first.cache_hit, vec![Some(false); 3]);
        let (_, second) = proactive_decisions_cached_traced(
            &fresh,
            &model,
            100.0,
            &[0.059, 0.1, 0.04],
            &[1, 1, 1],
            &config(),
        );
        assert_eq!(second.cache_hit, vec![Some(true); 3]);
        // A zero-rate degenerate sizing bypasses the cache: solve runs
        // (rho 0 under the band) but no lookup is counted.
        let (_, idle) = proactive_decisions_cached_traced(
            &fresh,
            &model,
            0.0,
            &[0.059, 0.1, 0.04],
            &[50, 80, 30],
            &config(),
        );
        assert_eq!(idle.cache_hit, vec![None; 3]);
    }

    #[test]
    fn idle_forecast_scales_down_everything() {
        let model = ApplicationModel::paper_benchmark();
        let targets =
            proactive_decisions(&model, 0.0, &[0.059, 0.1, 0.04], &[50, 80, 30], &config());
        assert_eq!(targets, vec![1, 1, 1]);
    }

    #[test]
    fn missing_inputs_fall_back_to_model() {
        let model = ApplicationModel::paper_benchmark();
        let targets = proactive_decisions(&model, 50.0, &[], &[], &config());
        assert_eq!(targets.len(), 3);
        assert!(targets.iter().all(|&t| t >= 1));
    }
}
