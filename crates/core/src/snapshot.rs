//! Crash-recovery snapshots of the controller: a versioned, byte-stable,
//! std-only canonical encoding of every piece of state that can influence
//! a future scaling decision.
//!
//! The controller survives a process crash by periodically capturing a
//! [`ControllerSnapshot`] ([`Chamulteon::snapshot`]), persisting its
//! canonical text form ([`ControllerSnapshot::encode`]), and rebuilding an
//! equivalent controller after the restart
//! ([`ControllerSnapshot::decode`] + [`Chamulteon::restore`]). The
//! recovery-equivalence contract — enforced by the `recovery` conformance
//! oracle — is *bit-identity*: a controller restored from a snapshot
//! taken at cycle `k` makes exactly the same decisions (exact `f64`
//! equality, FOX ledger included) from cycle `k + 1` on as the
//! uninterrupted controller would have.
//!
//! # What is captured
//!
//! Per-service demand-estimator windows and smoothed estimates, the entry
//! arrival-rate history, the active forecast and its generation counters,
//! the proactive decision store (in exact vector order — generation ties
//! resolve by position), the FOX lease books with open billing intervals
//! (in exact book order — the cheapest-lease selection observes it),
//! spike-gate and hold-last state, the 1-based cycle counter, and the
//! degradation log.
//!
//! # What is deliberately *not* captured
//!
//! * the **capacity cache** — a memo of pure Algorithm 1 inversions; the
//!   cached path is pinned bit-identical to the exact path by the
//!   `algorithm1` conformance oracle, so a cold cache changes latency,
//!   never a decision;
//! * the **forecaster** and **drift detector** — stateless beyond their
//!   configuration, rebuilt from [`ChamulteonConfig`];
//! * the **obs bundle** — instrumentation never changes a decision
//!   (pinned by the bit-identity tests); the restored controller starts
//!   with a disabled bundle and the caller re-attaches its sink.
//!
//! # Encoding
//!
//! The text form reuses the `chamulteon-obs` JSONL canonicalization
//! idiom: one flat JSON object per line, keys in a fixed schema order,
//! finite `f64`s rendered with Rust's shortest-round-trip `Display`
//! (parse → re-render is the identity), non-finite values as `null`
//! (read back as NaN), optional fields omitted — never `null` — and a
//! hand-rolled tokenizer on the way back in, extended here with `f64` /
//! `u32` arrays for history and lease vectors. The first line is a
//! header carrying [`SNAPSHOT_VERSION`]; any other version is rejected
//! with [`SnapshotError::UnsupportedVersion`] instead of being guessed
//! at. Encoding is byte-stable: `encode ∘ decode ∘ encode` equals
//! `encode`.
//!
//! [`Chamulteon::snapshot`]: crate::controller::Chamulteon::snapshot
//! [`Chamulteon::restore`]: crate::controller::Chamulteon::restore
//! [`ChamulteonConfig`]: crate::config::ChamulteonConfig

use crate::decision::{DecisionOrigin, ScalingDecision};
use crate::degradation::{DegradationEvent, DegradationReason};
use crate::fox::ChargingModel;
use chamulteon_demand::MonitoringSample;
use std::fmt::Write as _;

/// The schema version this build writes and the only one it restores.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The schema identifier on a snapshot's header line.
const SNAPSHOT_SCHEMA: &str = "chamulteon-snapshot";

/// Captured per-service demand-estimator state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EstimatorState {
    pub(crate) capacity: usize,
    pub(crate) smoothing: f64,
    pub(crate) current: f64,
    pub(crate) initialized: bool,
    /// Window samples, oldest first.
    pub(crate) window: Vec<MonitoringSample>,
}

/// Captured entry arrival-rate history.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HistoryState {
    pub(crate) step: f64,
    pub(crate) start: f64,
    pub(crate) values: Vec<f64>,
}

/// Captured active forecast.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ForecastState {
    pub(crate) made_at: usize,
    pub(crate) generation: u64,
    pub(crate) trusted: bool,
    pub(crate) values: Vec<f64>,
}

/// Captured FOX reviewer state, lease books in exact order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FoxState {
    pub(crate) model: ChargingModel,
    pub(crate) release_window: f64,
    pub(crate) billed_released: f64,
    pub(crate) leases: Vec<Vec<f64>>,
}

/// A complete, decision-equivalent capture of a [`Chamulteon`]
/// controller's mutable state.
///
/// Obtain one with [`Chamulteon::snapshot`], persist it with
/// [`encode`](ControllerSnapshot::encode), read it back with
/// [`decode`](ControllerSnapshot::decode) and rebuild the controller with
/// [`Chamulteon::restore`].
///
/// [`Chamulteon`]: crate::controller::Chamulteon
/// [`Chamulteon::snapshot`]: crate::controller::Chamulteon::snapshot
/// [`Chamulteon::restore`]: crate::controller::Chamulteon::restore
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSnapshot {
    pub(crate) services: usize,
    pub(crate) ticks: u64,
    pub(crate) forecast_generation: u64,
    pub(crate) forecasts_made: u64,
    pub(crate) estimators: Vec<EstimatorState>,
    pub(crate) entry_history: Option<HistoryState>,
    pub(crate) active_forecast: Option<ForecastState>,
    /// Proactive decision store contents, exact vector order.
    pub(crate) decisions: Vec<ScalingDecision>,
    pub(crate) fox: Option<FoxState>,
    /// Per-service `(last accepted rate, rejection streak)` gate state.
    pub(crate) spike_gates: Vec<(Option<f64>, u32)>,
    pub(crate) last_good_samples: Vec<Option<MonitoringSample>>,
    pub(crate) last_targets: Option<Vec<u32>>,
    pub(crate) degradation: Vec<DegradationEvent>,
}

/// Why a snapshot could not be decoded or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The header declares a schema version this build does not speak.
    UnsupportedVersion {
        /// The version found in the header.
        found: u64,
    },
    /// The text is not a well-formed snapshot document.
    Malformed {
        /// 1-based line the problem was detected on.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The snapshot disagrees with the model it is being restored into
    /// (or is internally inconsistent).
    Inconsistent {
        /// What disagrees.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build speaks {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Malformed { line, message } => {
                write!(f, "malformed snapshot at line {line}: {message}")
            }
            SnapshotError::Inconsistent { message } => {
                write!(f, "inconsistent snapshot: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// --- canonical line writer (obs JSONL idiom + arrays) -------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// One canonical JSON object line: fixed key order, no whitespace,
/// optional fields omitted.
struct Line {
    out: String,
    first: bool,
}

impl Line {
    fn new(kind: &str) -> Self {
        let mut line = Line {
            out: String::from("{"),
            first: true,
        };
        line.key("kind");
        push_json_str(&mut line.out, kind);
        line
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(&mut self.out, k);
        self.out.push(':');
    }

    fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        push_json_str(&mut self.out, v);
        self
    }

    fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        push_f64(&mut self.out, v);
        self
    }

    fn opt_f64(&mut self, k: &str, v: Option<f64>) -> &mut Self {
        if let Some(v) = v {
            self.f64(k, v);
        }
        self
    }

    fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    fn opt_u64(&mut self, k: &str, v: Option<u64>) -> &mut Self {
        if let Some(v) = v {
            self.u64(k, v);
        }
        self
    }

    fn usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    fn u32(&mut self, k: &str, v: u32) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    fn opt_u32(&mut self, k: &str, v: Option<u32>) -> &mut Self {
        if let Some(v) = v {
            self.u32(k, v);
        }
        self
    }

    fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    fn f64_array(&mut self, k: &str, vs: &[f64]) -> &mut Self {
        self.key(k);
        self.out.push('[');
        for (i, &v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            push_f64(&mut self.out, v);
        }
        self.out.push(']');
        self
    }

    fn u32_array(&mut self, k: &str, vs: &[u32]) -> &mut Self {
        self.key(k);
        self.out.push('[');
        for (i, &v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    fn emit(mut self, out: &mut String) {
        self.out.push('}');
        out.push_str(&self.out);
        out.push('\n');
    }
}

fn sample_line(kind: &str, service: usize, sample: &MonitoringSample) -> Line {
    let mut line = Line::new(kind);
    line.usize("service", service)
        .f64("duration", sample.duration())
        .u64("arrivals", sample.arrivals())
        .opt_u64("completions", sample.explicit_completions())
        .f64("utilization", sample.utilization())
        .u32("instances", sample.instances())
        .opt_f64("rt", sample.mean_response_time());
    line
}

// --- tokenizer (obs JSONL idiom + arrays) -------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    /// Numbers keep their raw text; typed getters parse on demand.
    Num(String),
    Bool(bool),
    Null,
    Arr(Vec<Val>),
}

struct Tokenizer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Tokenizer<'a> {
    fn new(text: &'a str) -> Self {
        Tokenizer {
            chars: text.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t')) {
            self.chars.next();
        }
    }

    fn consume(&mut self, expected: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(format!("expected `{expected}`, found `{c}`")),
            None => Err(format!("expected `{expected}`, found end of line")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match self.chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape: {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        self.skip_ws();
        match self.chars.peek() {
            Some('"') => Ok(Val::Str(self.string()?)),
            Some('t') => self.literal("true").map(|()| Val::Bool(true)),
            Some('f') => self.literal("false").map(|()| Val::Bool(false)),
            Some('n') => self.literal("null").map(|()| Val::Null),
            Some('[') => {
                self.chars.next();
                let mut items = Vec::new();
                self.skip_ws();
                if self.chars.peek() == Some(&']') {
                    self.chars.next();
                    return Ok(Val::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => {}
                        Some(']') => return Ok(Val::Arr(items)),
                        other => return Err(format!("expected `,` or `]`, found {other:?}")),
                    }
                }
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut raw = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c == '-'
                        || c == '+'
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || c.is_ascii_digit()
                    {
                        raw.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                Ok(Val::Num(raw))
            }
            other => Err(format!("unexpected value start: {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for expected in lit.chars() {
            match self.chars.next() {
                Some(c) if c == expected => {}
                other => return Err(format!("bad literal, expected `{lit}`, found {other:?}")),
            }
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Vec<(String, Val)>, String> {
        self.consume('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Ok(pairs);
        }
        loop {
            let key = self.string()?;
            self.consume(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => {}
                Some('}') => return Ok(pairs),
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.chars.peek().is_none()
    }
}

/// Typed field access over one parsed object line.
struct Fields {
    pairs: Vec<(String, Val)>,
}

impl Fields {
    fn get(&self, key: &str) -> Option<&Val> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, what: &str) -> Result<T, String> {
        match self.get(key) {
            Some(Val::Num(raw)) => raw
                .parse()
                .map_err(|_| format!("bad {what} `{key}`: {raw}")),
            Some(other) => Err(format!("field `{key}` is not a {what}: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn req_f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Val::Null) => Ok(f64::NAN),
            _ => self.num(key, "number"),
        }
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(Val::Null) => Ok(Some(f64::NAN)),
            _ => self.num(key, "number").map(Some),
        }
    }

    fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.num(key, "integer")
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            _ => self.num(key, "integer").map(Some),
        }
    }

    fn req_usize(&self, key: &str) -> Result<usize, String> {
        self.num(key, "integer")
    }

    fn opt_usize(&self, key: &str) -> Result<Option<usize>, String> {
        match self.get(key) {
            None => Ok(None),
            _ => self.num(key, "integer").map(Some),
        }
    }

    fn req_u32(&self, key: &str) -> Result<u32, String> {
        self.num(key, "integer")
    }

    fn opt_u32(&self, key: &str) -> Result<Option<u32>, String> {
        match self.get(key) {
            None => Ok(None),
            _ => self.num(key, "integer").map(Some),
        }
    }

    fn req_bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Val::Bool(b)) => Ok(*b),
            Some(other) => Err(format!("field `{key}` is not a bool: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn req_str(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Val::Str(s)) => Ok(s.clone()),
            Some(other) => Err(format!("field `{key}` is not a string: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn f64_array(&self, key: &str) -> Result<Vec<f64>, String> {
        match self.get(key) {
            Some(Val::Arr(items)) => items
                .iter()
                .map(|v| match v {
                    Val::Null => Ok(f64::NAN),
                    Val::Num(raw) => raw
                        .parse()
                        .map_err(|_| format!("bad number in `{key}`: {raw}")),
                    other => Err(format!("non-number in `{key}`: {other:?}")),
                })
                .collect(),
            Some(other) => Err(format!("field `{key}` is not an array: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn u32_array(&self, key: &str) -> Result<Vec<u32>, String> {
        match self.get(key) {
            Some(Val::Arr(items)) => items
                .iter()
                .map(|v| match v {
                    Val::Num(raw) => raw
                        .parse()
                        .map_err(|_| format!("bad integer in `{key}`: {raw}")),
                    other => Err(format!("non-integer in `{key}`: {other:?}")),
                })
                .collect(),
            Some(other) => Err(format!("field `{key}` is not an array: {other:?}")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn sample(&self) -> Result<MonitoringSample, String> {
        let duration = self.req_f64("duration")?;
        let arrivals = self.req_u64("arrivals")?;
        let utilization = self.req_f64("utilization")?;
        let instances = self.req_u32("instances")?;
        let rt = self.opt_f64("rt")?;
        let sample = MonitoringSample::new(duration, arrivals, utilization, instances, rt)
            .map_err(|e| format!("invalid sample: {e}"))?;
        Ok(match self.opt_u64("completions")? {
            Some(completions) => sample.with_completions(completions),
            None => sample,
        })
    }
}

// --- encode / decode ----------------------------------------------------

impl ControllerSnapshot {
    /// Serializes the snapshot to its canonical text form: one JSON
    /// object per line, header first, fixed key and section order.
    /// Byte-stable: decoding and re-encoding reproduces the exact bytes.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        {
            let mut line = Line::new("header");
            line.str("schema", SNAPSHOT_SCHEMA)
                .u64("version", SNAPSHOT_VERSION)
                .usize("services", self.services)
                .u64("ticks", self.ticks)
                .u64("forecast_generation", self.forecast_generation)
                .u64("forecasts_made", self.forecasts_made);
            line.emit(&mut out);
        }
        for (service, est) in self.estimators.iter().enumerate() {
            let mut line = Line::new("estimator");
            line.usize("service", service)
                .usize("capacity", est.capacity)
                .f64("smoothing", est.smoothing)
                .f64("current", est.current)
                .bool("initialized", est.initialized);
            line.emit(&mut out);
            for sample in &est.window {
                sample_line("window_sample", service, sample).emit(&mut out);
            }
        }
        if let Some(history) = &self.entry_history {
            let mut line = Line::new("entry_history");
            line.f64("step", history.step)
                .f64("start", history.start)
                .f64_array("values", &history.values);
            line.emit(&mut out);
        }
        if let Some(forecast) = &self.active_forecast {
            let mut line = Line::new("active_forecast");
            line.usize("made_at", forecast.made_at)
                .u64("generation", forecast.generation)
                .bool("trusted", forecast.trusted)
                .f64_array("values", &forecast.values);
            line.emit(&mut out);
        }
        for decision in &self.decisions {
            let mut line = Line::new("decision");
            line.usize("service", decision.service)
                .u32("target", decision.target)
                .f64("start", decision.start)
                .f64("end", decision.end);
            if let DecisionOrigin::Proactive {
                generation,
                trusted,
            } = decision.origin
            {
                line.u64("generation", generation).bool("trusted", trusted);
            }
            line.emit(&mut out);
        }
        if let Some(fox) = &self.fox {
            let mut line = Line::new("fox");
            line.str("model", &fox.model.name)
                .f64("interval", fox.model.interval)
                .f64("minimum", fox.model.minimum)
                .f64("release_window", fox.release_window)
                .f64("billed_released", fox.billed_released);
            line.emit(&mut out);
            for (service, starts) in fox.leases.iter().enumerate() {
                let mut line = Line::new("fox_leases");
                line.usize("service", service).f64_array("starts", starts);
                line.emit(&mut out);
            }
        }
        for (service, &(last_rate, streak)) in self.spike_gates.iter().enumerate() {
            let mut line = Line::new("spike_gate");
            line.usize("service", service)
                .opt_f64("last_rate", last_rate)
                .u32("streak", streak);
            line.emit(&mut out);
        }
        for (service, sample) in self.last_good_samples.iter().enumerate() {
            if let Some(sample) = sample {
                sample_line("held_sample", service, sample).emit(&mut out);
            }
        }
        if let Some(targets) = &self.last_targets {
            let mut line = Line::new("last_targets");
            line.u32_array("targets", targets);
            line.emit(&mut out);
        }
        for event in &self.degradation {
            let mut line = Line::new("degradation");
            line.f64("time", event.time)
                .str("code", event.reason.as_code());
            if let Some(service) = event.reason.service() {
                line.usize("service", service);
            }
            line.opt_u32("attempt", event.reason.attempt());
            line.emit(&mut out);
        }
        out
    }

    /// Parses a snapshot from its canonical text form.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] when the header declares a
    /// schema version other than [`SNAPSHOT_VERSION`];
    /// [`SnapshotError::Malformed`] for anything that is not a
    /// well-formed snapshot document (bad JSON, unknown record or field
    /// kinds, missing sections, out-of-range service indices).
    pub fn decode(text: &str) -> Result<Self, SnapshotError> {
        let malformed = |line: usize, message: String| SnapshotError::Malformed { line, message };
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());

        // Header first.
        let (header_idx, header_line) = lines
            .next()
            .ok_or_else(|| malformed(1, "empty snapshot".into()))?;
        let header = parse_fields(header_line).map_err(|m| malformed(header_idx + 1, m))?;
        let kind = header
            .req_str("kind")
            .map_err(|m| malformed(header_idx + 1, m))?;
        if kind != "header" {
            return Err(malformed(
                header_idx + 1,
                format!("expected header line, found `{kind}`"),
            ));
        }
        let schema = header
            .req_str("schema")
            .map_err(|m| malformed(header_idx + 1, m))?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(malformed(
                header_idx + 1,
                format!("unknown schema `{schema}`"),
            ));
        }
        let version = header
            .req_u64("version")
            .map_err(|m| malformed(header_idx + 1, m))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let services = header
            .req_usize("services")
            .map_err(|m| malformed(header_idx + 1, m))?;

        let mut snapshot = ControllerSnapshot {
            services,
            ticks: header
                .req_u64("ticks")
                .map_err(|m| malformed(header_idx + 1, m))?,
            forecast_generation: header
                .req_u64("forecast_generation")
                .map_err(|m| malformed(header_idx + 1, m))?,
            forecasts_made: header
                .req_u64("forecasts_made")
                .map_err(|m| malformed(header_idx + 1, m))?,
            estimators: Vec::with_capacity(services),
            entry_history: None,
            active_forecast: None,
            decisions: Vec::new(),
            fox: None,
            spike_gates: Vec::with_capacity(services),
            last_good_samples: vec![None; services],
            last_targets: None,
            degradation: Vec::new(),
        };

        for (idx, raw) in lines {
            let line_no = idx + 1;
            let fields = parse_fields(raw).map_err(|m| malformed(line_no, m))?;
            let kind = fields.req_str("kind").map_err(|m| malformed(line_no, m))?;
            let service_in_range = |fields: &Fields| -> Result<usize, SnapshotError> {
                let service = fields
                    .req_usize("service")
                    .map_err(|m| malformed(line_no, m))?;
                if service >= services {
                    return Err(malformed(
                        line_no,
                        format!("service {service} out of range (services: {services})"),
                    ));
                }
                Ok(service)
            };
            match kind.as_str() {
                "estimator" => {
                    let service = service_in_range(&fields)?;
                    if service != snapshot.estimators.len() {
                        return Err(malformed(
                            line_no,
                            format!(
                                "estimator for service {service} out of order (expected {})",
                                snapshot.estimators.len()
                            ),
                        ));
                    }
                    snapshot.estimators.push(EstimatorState {
                        capacity: fields
                            .req_usize("capacity")
                            .map_err(|m| malformed(line_no, m))?,
                        smoothing: fields
                            .req_f64("smoothing")
                            .map_err(|m| malformed(line_no, m))?,
                        current: fields
                            .req_f64("current")
                            .map_err(|m| malformed(line_no, m))?,
                        initialized: fields
                            .req_bool("initialized")
                            .map_err(|m| malformed(line_no, m))?,
                        window: Vec::new(),
                    });
                }
                "window_sample" => {
                    let service = service_in_range(&fields)?;
                    let sample = fields.sample().map_err(|m| malformed(line_no, m))?;
                    match snapshot.estimators.get_mut(service) {
                        Some(est) => est.window.push(sample),
                        None => {
                            return Err(malformed(
                                line_no,
                                format!("window sample before estimator for service {service}"),
                            ))
                        }
                    }
                }
                "entry_history" => {
                    snapshot.entry_history = Some(HistoryState {
                        step: fields.req_f64("step").map_err(|m| malformed(line_no, m))?,
                        start: fields.req_f64("start").map_err(|m| malformed(line_no, m))?,
                        values: fields
                            .f64_array("values")
                            .map_err(|m| malformed(line_no, m))?,
                    });
                }
                "active_forecast" => {
                    snapshot.active_forecast = Some(ForecastState {
                        made_at: fields
                            .req_usize("made_at")
                            .map_err(|m| malformed(line_no, m))?,
                        generation: fields
                            .req_u64("generation")
                            .map_err(|m| malformed(line_no, m))?,
                        trusted: fields
                            .req_bool("trusted")
                            .map_err(|m| malformed(line_no, m))?,
                        values: fields
                            .f64_array("values")
                            .map_err(|m| malformed(line_no, m))?,
                    });
                }
                "decision" => {
                    let service = service_in_range(&fields)?;
                    let generation = fields
                        .opt_u64("generation")
                        .map_err(|m| malformed(line_no, m))?;
                    let origin = match generation {
                        Some(generation) => DecisionOrigin::Proactive {
                            generation,
                            trusted: fields
                                .req_bool("trusted")
                                .map_err(|m| malformed(line_no, m))?,
                        },
                        None => DecisionOrigin::Reactive,
                    };
                    snapshot.decisions.push(ScalingDecision {
                        service,
                        target: fields
                            .req_u32("target")
                            .map_err(|m| malformed(line_no, m))?,
                        start: fields.req_f64("start").map_err(|m| malformed(line_no, m))?,
                        end: fields.req_f64("end").map_err(|m| malformed(line_no, m))?,
                        origin,
                    });
                }
                "fox" => {
                    snapshot.fox = Some(FoxState {
                        model: ChargingModel {
                            name: fields.req_str("model").map_err(|m| malformed(line_no, m))?,
                            interval: fields
                                .req_f64("interval")
                                .map_err(|m| malformed(line_no, m))?,
                            minimum: fields
                                .req_f64("minimum")
                                .map_err(|m| malformed(line_no, m))?,
                        },
                        release_window: fields
                            .req_f64("release_window")
                            .map_err(|m| malformed(line_no, m))?,
                        billed_released: fields
                            .req_f64("billed_released")
                            .map_err(|m| malformed(line_no, m))?,
                        leases: vec![Vec::new(); services],
                    });
                }
                "fox_leases" => {
                    let service = service_in_range(&fields)?;
                    let starts = fields
                        .f64_array("starts")
                        .map_err(|m| malformed(line_no, m))?;
                    match snapshot.fox.as_mut() {
                        Some(fox) => fox.leases[service] = starts,
                        None => {
                            return Err(malformed(line_no, "fox_leases before fox".into()));
                        }
                    }
                }
                "spike_gate" => {
                    let service = service_in_range(&fields)?;
                    if service != snapshot.spike_gates.len() {
                        return Err(malformed(
                            line_no,
                            format!(
                                "spike_gate for service {service} out of order (expected {})",
                                snapshot.spike_gates.len()
                            ),
                        ));
                    }
                    snapshot.spike_gates.push((
                        fields
                            .opt_f64("last_rate")
                            .map_err(|m| malformed(line_no, m))?,
                        fields
                            .req_u32("streak")
                            .map_err(|m| malformed(line_no, m))?,
                    ));
                }
                "held_sample" => {
                    let service = service_in_range(&fields)?;
                    let sample = fields.sample().map_err(|m| malformed(line_no, m))?;
                    snapshot.last_good_samples[service] = Some(sample);
                }
                "last_targets" => {
                    snapshot.last_targets = Some(
                        fields
                            .u32_array("targets")
                            .map_err(|m| malformed(line_no, m))?,
                    );
                }
                "degradation" => {
                    let time = fields.req_f64("time").map_err(|m| malformed(line_no, m))?;
                    let code = fields.req_str("code").map_err(|m| malformed(line_no, m))?;
                    let service = fields
                        .opt_usize("service")
                        .map_err(|m| malformed(line_no, m))?;
                    let attempt = fields
                        .opt_u32("attempt")
                        .map_err(|m| malformed(line_no, m))?;
                    let reason = DegradationReason::from_parts(&code, service, attempt)
                        .ok_or_else(|| {
                            malformed(line_no, format!("unknown degradation code `{code}`"))
                        })?;
                    snapshot.degradation.push(DegradationEvent { time, reason });
                }
                other => {
                    return Err(malformed(line_no, format!("unknown record kind `{other}`")));
                }
            }
        }

        if snapshot.estimators.len() != services {
            return Err(SnapshotError::Inconsistent {
                message: format!(
                    "{} estimator records for {services} services",
                    snapshot.estimators.len()
                ),
            });
        }
        if snapshot.spike_gates.len() != services {
            return Err(SnapshotError::Inconsistent {
                message: format!(
                    "{} spike_gate records for {services} services",
                    snapshot.spike_gates.len()
                ),
            });
        }
        if let Some(targets) = &snapshot.last_targets {
            if targets.len() != services {
                return Err(SnapshotError::Inconsistent {
                    message: format!("{} last targets for {services} services", targets.len()),
                });
            }
        }
        Ok(snapshot)
    }
}

fn parse_fields(raw: &str) -> Result<Fields, String> {
    let mut tokenizer = Tokenizer::new(raw);
    let pairs = tokenizer.object()?;
    if !tokenizer.at_end() {
        return Err("trailing characters after object".into());
    }
    Ok(Fields { pairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChamulteonConfig;
    use crate::controller::Chamulteon;
    use crate::degradation::Observation;
    use chamulteon_perfmodel::ApplicationModel;

    /// One synthetic cycle's observations: a mild sawtooth with a
    /// monitoring dropout every 9th cycle (so held/degraded state is in
    /// the snapshot) and a corrupt reading every 13th.
    fn observations_at(cycle: u64, services: usize) -> Vec<Observation> {
        (0..services)
            .map(|s| {
                if cycle % 9 == 5 {
                    return Observation::Missing;
                }
                let rate = 12.0 + ((cycle + s as u64) % 7) as f64 * 4.0;
                Observation::Raw {
                    duration: 60.0,
                    arrivals: (rate * 60.0).round(),
                    completions: (rate * 60.0).round(),
                    utilization: if cycle % 13 == 7 { f64::NAN } else { 0.55 },
                    instances: 2,
                    mean_response_time: Some(0.09),
                }
            })
            .collect()
    }

    fn controller_with_state() -> Chamulteon {
        let model = ApplicationModel::paper_benchmark();
        let mut c = Chamulteon::new(model, ChamulteonConfig::default())
            .with_fox(ChargingModel::gcp_per_minute());
        let services = c.model().service_count();
        // Stop at cycle 20: the first forecast lands at cycle 13 and its
        // proactive decisions survive (unpruned) until cycle 21, so the
        // snapshot exercises the decision records too.
        for k in 0..20 {
            let t = 60.0 * (k + 1) as f64;
            let _ = c.tick_observed(t, &observations_at(k, services));
        }
        c
    }

    #[test]
    fn encode_decode_round_trips_and_is_byte_stable() {
        let snapshot = controller_with_state().snapshot();
        assert!(snapshot.forecasts_made > 0, "forecast state must be live");
        assert!(!snapshot.decisions.is_empty(), "decisions must be live");
        assert!(!snapshot.degradation.is_empty(), "dropouts must be logged");
        let text = snapshot.encode();
        let decoded = ControllerSnapshot::decode(&text).expect("decodes");
        assert_eq!(decoded, snapshot, "decode is the inverse of encode");
        assert_eq!(decoded.encode(), text, "encoding is byte-stable");
    }

    #[test]
    fn restored_controller_continues_bit_identically() {
        let model = ApplicationModel::paper_benchmark();
        let config = ChamulteonConfig::default();
        let services = model.service_count();
        let mut reference =
            Chamulteon::new(model.clone(), config.clone()).with_fox(ChargingModel::ec2_hourly());
        let mut crashed =
            Chamulteon::new(model.clone(), config.clone()).with_fox(ChargingModel::ec2_hourly());
        // Crash cycle 23 lands right after the cycle-23 dropout (23 % 9 ==
        // 5), i.e. immediately after a degraded/held cycle, and 23·60 s is
        // mid-way through an EC2 billing hour.
        for k in 0..23 {
            let t = 60.0 * (k + 1) as f64;
            let a = reference.tick_observed(t, &observations_at(k, services));
            let b = crashed.tick_observed(t, &observations_at(k, services));
            assert_eq!(a, b);
        }
        let text = crashed.snapshot().encode();
        drop(crashed); // the crash
        let decoded = ControllerSnapshot::decode(&text).expect("decodes");
        let mut restored = Chamulteon::restore(model, config, &decoded).expect("restores");
        let mut last = 0.0;
        for k in 23..60 {
            let t = 60.0 * (k + 1) as f64;
            last = t;
            let a = reference.tick_observed(t, &observations_at(k, services));
            let b = restored.tick_observed(t, &observations_at(k, services));
            assert_eq!(a, b, "cycle {k} diverged after restore");
        }
        let billed_ref = reference.billed_instance_seconds(last);
        let billed_restored = restored.billed_instance_seconds(last);
        assert_eq!(
            billed_ref.map(f64::to_bits),
            billed_restored.map(f64::to_bits),
            "FOX ledgers diverged: {billed_ref:?} vs {billed_restored:?}"
        );
        assert_eq!(reference.forecasts_made(), restored.forecasts_made());
        assert_eq!(
            reference.degradation().events(),
            restored.degradation().events()
        );
    }

    #[test]
    fn unknown_versions_are_rejected_explicitly() {
        let text = controller_with_state().snapshot().encode();
        let future = text.replacen("\"version\":1", "\"version\":2", 1);
        assert_eq!(
            ControllerSnapshot::decode(&future),
            Err(SnapshotError::UnsupportedVersion { found: 2 })
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let good = controller_with_state().snapshot().encode();
        // Not JSON at all.
        assert!(matches!(
            ControllerSnapshot::decode("not json"),
            Err(SnapshotError::Malformed { .. })
        ));
        // Empty document.
        assert!(matches!(
            ControllerSnapshot::decode(""),
            Err(SnapshotError::Malformed { .. })
        ));
        // Unknown record kind.
        let with_junk = format!("{good}{{\"kind\":\"mystery\"}}\n");
        assert!(matches!(
            ControllerSnapshot::decode(&with_junk),
            Err(SnapshotError::Malformed { .. })
        ));
        // First line must be the header.
        let headless: String = good.lines().skip(1).flat_map(|l| [l, "\n"]).collect();
        assert!(matches!(
            ControllerSnapshot::decode(&headless),
            Err(SnapshotError::Malformed { .. })
        ));
        // Out-of-range service index.
        let shifted = good.replacen(
            "\"kind\":\"estimator\",\"service\":0",
            "\"kind\":\"estimator\",\"service\":99",
            1,
        );
        assert!(matches!(
            ControllerSnapshot::decode(&shifted),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn restore_rejects_mismatched_models() {
        let snapshot = controller_with_state().snapshot();
        let wrong = chamulteon_perfmodel::ApplicationModelBuilder::new()
            .service("solo", 0.05, 1, 50, 1)
            .entry("solo")
            .build()
            .expect("valid single-service model");
        assert!(matches!(
            Chamulteon::restore(wrong, ChamulteonConfig::default(), &snapshot),
            Err(SnapshotError::Inconsistent { .. })
        ));
    }

    #[test]
    fn snapshot_is_a_pure_read() {
        // Same tick sequence with and without snapshots interleaved.
        let mut with_snapshots = controller_with_state();
        let mut without = controller_with_state();
        let services = with_snapshots.model().service_count();
        for k in 24..32 {
            let t = 60.0 * (k + 1) as f64;
            let _ = with_snapshots.snapshot().encode();
            let a = with_snapshots.tick_observed(t, &observations_at(k, services));
            let b = without.tick_observed(t, &observations_at(k, services));
            assert_eq!(a, b, "snapshotting changed behavior at cycle {k}");
        }
    }
}
