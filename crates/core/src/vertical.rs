//! Hybrid vertical + horizontal scaling — the paper's first future-work
//! item (§VI): "The vertical scaling could be combined with horizontal
//! scaling, where a decision logic can evaluate which scaling direction is
//! more efficient. Therefore, a separate cost function needs to be added."
//!
//! This module supplies exactly those two pieces:
//!
//! * [`InstanceSize`] / [`VerticalPolicy`] — the discrete instance-size
//!   ladder of a cloud provider with its **cost function** (price per
//!   size, typically sublinear or superlinear in speed, plus a fixed
//!   per-instance overhead for memory/daemons that makes a few big
//!   instances beat many small ones at equal total speed),
//! * [`HybridDecision`] / [`VerticalPolicy::decide`] — the decision logic:
//!   for a required service rate, enumerate the ladder, compute the
//!   instance count each size needs, and pick the cheapest feasible
//!   combination.
//!
//! The simulator supports the vertical knob via
//! `chamulteon_sim::Simulation::scale_vertical`; see the
//! `hybrid_scaling` example for the end-to-end loop.

use crate::config::ChamulteonConfig;
use chamulteon_perfmodel::ApplicationModel;
use chamulteon_queueing::capacity::saturating_f64_to_u32;

/// One rung of a provider's instance-size ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSize {
    /// Display name, e.g. `"m.large"`.
    pub name: String,
    /// Speed multiplier relative to the nominal (1.0) size: an instance of
    /// this size processes requests `speed` times faster.
    pub speed: f64,
    /// Cost per instance-hour in arbitrary currency units.
    pub cost_per_hour: f64,
}

/// The instance ladder plus the fixed per-instance overhead cost that the
/// decision logic weighs horizontal against vertical scaling with.
#[derive(Debug, Clone, PartialEq)]
pub struct VerticalPolicy {
    sizes: Vec<InstanceSize>,
    overhead_per_instance_hour: f64,
}

/// One hybrid scaling decision: how many instances of which size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridDecision {
    /// Number of instances.
    pub instances: u32,
    /// Index into the policy's size ladder.
    pub size_index: usize,
    /// The decision's cost per hour under the policy.
    pub cost_per_hour: f64,
}

impl VerticalPolicy {
    /// Creates a policy from an instance ladder and a per-instance fixed
    /// overhead (≥ 0, cost units per instance-hour). Sizes with
    /// non-positive speed or cost are dropped; an empty ladder falls back
    /// to a single nominal size of cost 1.
    pub fn new(sizes: Vec<InstanceSize>, overhead_per_instance_hour: f64) -> Self {
        let mut sizes: Vec<InstanceSize> = sizes
            .into_iter()
            .filter(|s| s.speed > 0.0 && s.speed.is_finite() && s.cost_per_hour > 0.0)
            .collect();
        if sizes.is_empty() {
            sizes.push(InstanceSize {
                name: "nominal".into(),
                speed: 1.0,
                cost_per_hour: 1.0,
            });
        }
        VerticalPolicy {
            sizes,
            overhead_per_instance_hour: overhead_per_instance_hour.max(0.0),
        }
    }

    /// An EC2-like ladder: each doubling of speed costs slightly less than
    /// 2× (economies of scale), with a noticeable per-instance overhead.
    pub fn ec2_like() -> Self {
        VerticalPolicy::new(
            vec![
                InstanceSize {
                    name: "small".into(),
                    speed: 1.0,
                    cost_per_hour: 1.0,
                },
                InstanceSize {
                    name: "large".into(),
                    speed: 2.0,
                    cost_per_hour: 1.9,
                },
                InstanceSize {
                    name: "xlarge".into(),
                    speed: 4.0,
                    cost_per_hour: 3.7,
                },
            ],
            0.15,
        )
    }

    /// A ladder where bigger instances carry a price *premium* (burstable
    /// markets): horizontal scaling should win except at instance-count
    /// limits.
    pub fn premium_vertical() -> Self {
        VerticalPolicy::new(
            vec![
                InstanceSize {
                    name: "small".into(),
                    speed: 1.0,
                    cost_per_hour: 1.0,
                },
                InstanceSize {
                    name: "large".into(),
                    speed: 2.0,
                    cost_per_hour: 2.4,
                },
                InstanceSize {
                    name: "xlarge".into(),
                    speed: 4.0,
                    cost_per_hour: 5.5,
                },
            ],
            0.0,
        )
    }

    /// The size ladder.
    pub fn sizes(&self) -> &[InstanceSize] {
        &self.sizes
    }

    /// The decision logic: the cheapest `(instances, size)` combination
    /// whose total capacity `n·speed/demand` serves `arrival_rate` at the
    /// target utilization, with `n` within `[min_instances,
    /// max_instances]`.
    ///
    /// When no size fits within `max_instances`, the largest size at
    /// `max_instances` is returned (the best infeasible effort, mirroring
    /// Algorithm 1's clamping).
    pub fn decide(
        &self,
        arrival_rate: f64,
        service_demand: f64,
        target_utilization: f64,
        min_instances: u32,
        max_instances: u32,
    ) -> HybridDecision {
        let target = if target_utilization.is_finite() && target_utilization > 0.0 {
            target_utilization.min(1.0)
        } else {
            1.0
        };
        let load = arrival_rate.max(0.0) * service_demand.max(0.0) / target;
        let mut best: Option<HybridDecision> = None;
        for (idx, size) in self.sizes.iter().enumerate() {
            let raw = load / size.speed;
            let snapped = if (raw - raw.round()).abs() < 1e-9 {
                raw.round()
            } else {
                raw.ceil()
            };
            let needed = saturating_f64_to_u32(snapped).max(1);
            let n = needed.clamp(min_instances.max(1), max_instances.max(1));
            let feasible = needed <= max_instances.max(1);
            let cost = f64::from(n) * (size.cost_per_hour + self.overhead_per_instance_hour);
            let candidate = HybridDecision {
                instances: n,
                size_index: idx,
                cost_per_hour: cost,
            };
            best = match best {
                None => Some(candidate),
                Some(b) => {
                    let b_feasible = self.is_feasible(&b, load, max_instances);
                    let better = match (feasible, b_feasible) {
                        (true, false) => true,
                        (false, true) => false,
                        // Both feasible: cheaper wins, then fewer instances.
                        (true, true) => {
                            cost < b.cost_per_hour - 1e-12
                                || ((cost - b.cost_per_hour).abs() <= 1e-12 && n < b.instances)
                        }
                        // Both infeasible: more capacity wins.
                        (false, false) => self.capacity(&candidate) > self.capacity(&b),
                    };
                    Some(if better { candidate } else { b })
                }
            };
        }
        // The constructor guarantees a non-empty ladder, so `best` is
        // always set; the fallback keeps the path panic-free regardless.
        best.unwrap_or(HybridDecision {
            instances: min_instances.max(1),
            size_index: 0,
            cost_per_hour: 0.0,
        })
    }

    /// Total speed units a decision provides.
    fn capacity(&self, d: &HybridDecision) -> f64 {
        f64::from(d.instances) * self.sizes[d.size_index].speed
    }

    fn is_feasible(&self, d: &HybridDecision, load: f64, max_instances: u32) -> bool {
        d.instances <= max_instances.max(1) && self.capacity(d) + 1e-9 >= load
    }
}

/// Hybrid counterpart of
/// [`proactive_decisions`](crate::algorithm::proactive_decisions): walks
/// the invocation graph in topological order, choosing an
/// (instances, size) pair per service and forwarding each tier's
/// post-decision capacity downstream.
pub fn hybrid_decisions(
    model: &ApplicationModel,
    entry_rate: f64,
    estimated_demands: &[f64],
    policy: &VerticalPolicy,
    config: &ChamulteonConfig,
) -> Vec<HybridDecision> {
    let n = model.service_count();
    let demands: Vec<f64> = (0..n)
        .map(|i| {
            estimated_demands
                .get(i)
                .copied()
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| model.service(i).nominal_demand())
        })
        .collect();
    // A validated model is acyclic; fall back to index order if a cycle
    // ever slips through so every service still receives a decision.
    let order = model
        .graph()
        .topological_order()
        .unwrap_or_else(|| (0..n).collect());
    let mut offered = vec![0.0; n];
    offered[model.entry()] = entry_rate.max(0.0);
    let mut out = vec![
        HybridDecision {
            instances: 1,
            size_index: 0,
            cost_per_hour: 0.0,
        };
        n
    ];
    for &node in &order {
        let spec = model.service(node);
        let decision = policy.decide(
            offered[node],
            demands[node],
            config.rho_target,
            spec.min_instances(),
            spec.max_instances(),
        );
        let capacity = f64::from(decision.instances) * policy.sizes()[decision.size_index].speed
            / demands[node];
        let completed = offered[node].min(capacity);
        for &(to, multiplicity) in model.graph().calls_from(node) {
            offered[to] += completed * multiplicity;
        }
        out[node] = decision;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_or_invalid_ladder_falls_back() {
        let p = VerticalPolicy::new(vec![], 0.0);
        assert_eq!(p.sizes().len(), 1);
        let p = VerticalPolicy::new(
            vec![InstanceSize {
                name: "bad".into(),
                speed: 0.0,
                cost_per_hour: 1.0,
            }],
            0.0,
        );
        assert_eq!(p.sizes().len(), 1);
        assert_eq!(p.sizes()[0].name, "nominal");
    }

    #[test]
    fn cheap_big_instances_win_with_overhead() {
        // EC2-like: big instances are per-speed-unit cheaper AND avoid
        // per-instance overhead — vertical wins at meaningful load.
        let p = VerticalPolicy::ec2_like();
        let d = p.decide(100.0, 0.1, 0.8, 1, 1000);
        // 100·0.1/0.8 = 12.5 speed units: small => 13·1.15 = 14.95,
        // large => 7·2.05 = 14.35, xlarge => 4·3.85 = 15.40.
        assert_eq!(p.sizes()[d.size_index].name, "large");
        assert_eq!(d.instances, 7);
    }

    #[test]
    fn premium_vertical_prefers_horizontal() {
        let p = VerticalPolicy::premium_vertical();
        let d = p.decide(100.0, 0.1, 0.8, 1, 1000);
        assert_eq!(p.sizes()[d.size_index].name, "small");
        assert_eq!(d.instances, 13);
    }

    #[test]
    fn instance_limit_forces_vertical() {
        // Even under premium pricing, a cap of 5 instances forces bigger
        // sizes at high load.
        let p = VerticalPolicy::premium_vertical();
        let d = p.decide(100.0, 0.1, 0.8, 1, 5);
        assert!(p.sizes()[d.size_index].speed > 1.0, "chose {:?}", d);
        // Capacity must cover the load: n·speed ≥ 12.5.
        assert!(f64::from(d.instances) * p.sizes()[d.size_index].speed >= 12.5);
    }

    #[test]
    fn infeasible_load_returns_biggest_effort() {
        let p = VerticalPolicy::premium_vertical();
        let d = p.decide(10_000.0, 0.1, 0.8, 1, 3);
        assert_eq!(d.instances, 3);
        // Picks the largest size when nothing fits.
        assert_eq!(p.sizes()[d.size_index].name, "xlarge");
    }

    #[test]
    fn idle_service_gets_one_small_instance() {
        let p = VerticalPolicy::ec2_like();
        let d = p.decide(0.0, 0.1, 0.8, 1, 100);
        assert_eq!(d.instances, 1);
        assert_eq!(p.sizes()[d.size_index].speed, 1.0);
    }

    #[test]
    fn min_instances_respected() {
        let p = VerticalPolicy::ec2_like();
        let d = p.decide(0.0, 0.1, 0.8, 3, 100);
        assert_eq!(d.instances, 3);
    }

    #[test]
    fn cost_accounts_for_overhead() {
        let p = VerticalPolicy::new(
            vec![InstanceSize {
                name: "s".into(),
                speed: 1.0,
                cost_per_hour: 1.0,
            }],
            0.5,
        );
        let d = p.decide(40.0, 0.1, 0.8, 1, 100);
        assert_eq!(d.instances, 5);
        assert!((d.cost_per_hour - 5.0 * 1.5).abs() < 1e-12);
    }

    #[test]
    fn hybrid_decisions_cover_the_chain() {
        let model = ApplicationModel::paper_benchmark();
        let policy = VerticalPolicy::ec2_like();
        let config = ChamulteonConfig::default();
        let decisions = hybrid_decisions(&model, 200.0, &[0.059, 0.1, 0.04], &policy, &config);
        assert_eq!(decisions.len(), 3);
        // Every tier's capacity covers 200 req/s at the target utilization.
        for (i, d) in decisions.iter().enumerate() {
            let demand = [0.059, 0.1, 0.04][i];
            let capacity = f64::from(d.instances) * policy.sizes()[d.size_index].speed / demand;
            assert!(
                capacity * config.rho_target >= 200.0 * 0.99,
                "tier {i}: capacity {capacity}"
            );
        }
    }

    #[test]
    fn hybrid_cheaper_than_pure_horizontal_on_ec2_ladder() {
        let model = ApplicationModel::paper_benchmark();
        let config = ChamulteonConfig::default();
        let ladder = VerticalPolicy::ec2_like();
        // Pure horizontal = the same ladder restricted to the small size.
        let horizontal_only = VerticalPolicy::new(vec![ladder.sizes()[0].clone()], 0.15);
        let hybrid = hybrid_decisions(&model, 300.0, &[0.059, 0.1, 0.04], &ladder, &config);
        let horizontal = hybrid_decisions(
            &model,
            300.0,
            &[0.059, 0.1, 0.04],
            &horizontal_only,
            &config,
        );
        let cost = |ds: &[HybridDecision]| ds.iter().map(|d| d.cost_per_hour).sum::<f64>();
        assert!(
            cost(&hybrid) < cost(&horizontal),
            "hybrid {} vs horizontal {}",
            cost(&hybrid),
            cost(&horizontal)
        );
    }
}
