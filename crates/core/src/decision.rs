//! Scaling decisions and the conflict resolution of §III-C.

/// Which cycle produced a decision, and — for proactive decisions — which
/// forecast generation it came from and whether that forecast was deemed
/// trustable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionOrigin {
    /// Produced by the reactive cycle from measured data.
    Reactive,
    /// Produced by the proactive cycle from a forecast.
    Proactive {
        /// Monotonically increasing forecast counter; newer forecasts
        /// supersede older ones for the same period (time resolution).
        generation: u64,
        /// Whether the underlying forecast's accuracy was at or below the
        /// trust threshold (scope resolution).
        trusted: bool,
    },
}

/// A scaling decision: a target instance count for one service, valid for
/// a time window. "Each decision for a service has a valid period in which
/// no other decision is executed" (§III-C1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingDecision {
    /// The service the decision applies to.
    pub service: usize,
    /// The target instance count.
    pub target: u32,
    /// Start of the validity window, seconds.
    pub start: f64,
    /// End of the validity window, seconds (exclusive).
    pub end: f64,
    /// Which cycle produced it.
    pub origin: DecisionOrigin,
}

impl ScalingDecision {
    /// Whether the decision's validity window covers time `t`.
    pub fn covers(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether this is a trusted proactive decision.
    pub fn is_trusted_proactive(&self) -> bool {
        matches!(self.origin, DecisionOrigin::Proactive { trusted: true, .. })
    }
}

/// Stores proactive decisions and implements both resolution rules of
/// §III-C:
///
/// * **Time resolution**: "there may be proactive decisions with different
///   underlying forecasts for the same time period. Assuming that
///   decisions based on the newest forecast contain more up-to-date
///   information, all proactive events for the same time period [from
///   older forecasts] are skipped" — adding a newer generation evicts
///   overlapping older-generation decisions per service.
/// * **Scope resolution**: "If the proactive decision is trustable and
///   wants to scale up or down, the reactive decision is omitted.
///   Otherwise, the proactive decision is skipped" — implemented by
///   [`DecisionStore::resolve`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionStore {
    proactive: Vec<ScalingDecision>,
}

impl DecisionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DecisionStore::default()
    }

    /// The stored proactive decisions (for inspection).
    pub fn proactive(&self) -> &[ScalingDecision] {
        &self.proactive
    }

    /// Rebuilds a store from a previously captured decision list,
    /// preserving the exact vector order (ties between equal generations
    /// resolve by position, so order is observable state). Used by the
    /// controller's crash-recovery snapshot.
    pub(crate) fn restore(proactive: Vec<ScalingDecision>) -> Self {
        DecisionStore { proactive }
    }

    /// Adds a batch of proactive decisions, applying time resolution:
    /// stored decisions of an *older* generation whose window overlaps a
    /// new decision for the same service are evicted.
    pub fn add_proactive(&mut self, decisions: &[ScalingDecision]) {
        for new in decisions {
            let DecisionOrigin::Proactive {
                generation: new_gen,
                ..
            } = new.origin
            else {
                continue; // only proactive decisions are stored
            };
            self.proactive.retain(|old| {
                let DecisionOrigin::Proactive { generation, .. } = old.origin else {
                    return true;
                };
                let overlaps =
                    old.service == new.service && old.start < new.end && new.start < old.end;
                !(overlaps && generation < new_gen)
            });
            self.proactive.push(*new);
        }
    }

    /// Drops decisions whose validity ended before `t`.
    pub fn evict_expired(&mut self, t: f64) {
        self.proactive.retain(|d| d.end > t);
    }

    /// The proactive decision covering time `t` for `service` from the
    /// newest generation, if any.
    pub fn proactive_at(&self, service: usize, t: f64) -> Option<ScalingDecision> {
        self.proactive
            .iter()
            .filter(|d| d.service == service && d.covers(t))
            .max_by_key(|d| match d.origin {
                DecisionOrigin::Proactive { generation, .. } => generation,
                DecisionOrigin::Reactive => 0,
            })
            .copied()
    }

    /// Scope resolution: picks between the stored proactive decision for
    /// `(service, t)` and the given reactive decision.
    ///
    /// The proactive decision wins iff it exists, is trustable, and *wants
    /// to scale* (its target differs from `current_instances`); otherwise
    /// the reactive decision wins. When no reactive decision exists (the
    /// reactive cycle is disabled, as in the proactive-only ablation), the
    /// proactive decision applies regardless of trust — there is nothing
    /// to fall back to and stale supply is strictly worse.
    pub fn resolve(
        &self,
        service: usize,
        t: f64,
        current_instances: u32,
        reactive: Option<ScalingDecision>,
    ) -> Option<ScalingDecision> {
        let proactive = self.proactive_at(service, t);
        match (proactive, reactive) {
            (Some(p), Some(r)) => {
                if p.is_trusted_proactive() && p.target != current_instances {
                    Some(p)
                } else {
                    Some(r)
                }
            }
            (Some(p), None) => Some(p),
            (None, r) => r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proactive(
        service: usize,
        target: u32,
        start: f64,
        end: f64,
        generation: u64,
        trusted: bool,
    ) -> ScalingDecision {
        ScalingDecision {
            service,
            target,
            start,
            end,
            origin: DecisionOrigin::Proactive {
                generation,
                trusted,
            },
        }
    }

    fn reactive(service: usize, target: u32, start: f64, end: f64) -> ScalingDecision {
        ScalingDecision {
            service,
            target,
            start,
            end,
            origin: DecisionOrigin::Reactive,
        }
    }

    #[test]
    fn covers_is_half_open() {
        let d = reactive(0, 2, 10.0, 20.0);
        assert!(!d.covers(9.9));
        assert!(d.covers(10.0));
        assert!(d.covers(19.99));
        assert!(!d.covers(20.0));
    }

    #[test]
    fn trusted_proactive_that_scales_overrides_reactive() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 5, 0.0, 60.0, 1, true)]);
        let r = reactive(0, 3, 0.0, 60.0);
        let chosen = store.resolve(0, 30.0, 2, Some(r)).unwrap();
        assert_eq!(chosen.target, 5);
        assert!(chosen.is_trusted_proactive());
    }

    #[test]
    fn untrusted_proactive_is_skipped() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 5, 0.0, 60.0, 1, false)]);
        let r = reactive(0, 3, 0.0, 60.0);
        let chosen = store.resolve(0, 30.0, 2, Some(r)).unwrap();
        assert_eq!(chosen.target, 3);
        assert_eq!(chosen.origin, DecisionOrigin::Reactive);
    }

    #[test]
    fn proactive_noop_defers_to_reactive() {
        // Trusted but target == current: it does not "want to scale".
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 2, 0.0, 60.0, 1, true)]);
        let r = reactive(0, 4, 0.0, 60.0);
        let chosen = store.resolve(0, 30.0, 2, Some(r)).unwrap();
        assert_eq!(chosen.target, 4);
    }

    #[test]
    fn newer_generation_evicts_overlapping_older() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 5, 0.0, 120.0, 1, true)]);
        store.add_proactive(&[proactive(0, 8, 60.0, 180.0, 2, true)]);
        // The gen-1 decision overlapped [60, 120) and is gone entirely.
        assert_eq!(store.proactive().len(), 1);
        assert_eq!(store.proactive_at(0, 70.0).unwrap().target, 8);
        assert!(store.proactive_at(0, 10.0).is_none());
    }

    #[test]
    fn non_overlapping_generations_coexist() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 5, 0.0, 60.0, 1, true)]);
        store.add_proactive(&[proactive(0, 8, 60.0, 120.0, 2, true)]);
        assert_eq!(store.proactive().len(), 2);
        assert_eq!(store.proactive_at(0, 30.0).unwrap().target, 5);
        assert_eq!(store.proactive_at(0, 90.0).unwrap().target, 8);
    }

    #[test]
    fn different_services_do_not_conflict() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 5, 0.0, 60.0, 1, true)]);
        store.add_proactive(&[proactive(1, 9, 0.0, 60.0, 2, true)]);
        assert_eq!(store.proactive().len(), 2);
        assert_eq!(store.proactive_at(0, 10.0).unwrap().target, 5);
        assert_eq!(store.proactive_at(1, 10.0).unwrap().target, 9);
    }

    #[test]
    fn evict_expired_drops_past_decisions() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[
            proactive(0, 5, 0.0, 60.0, 1, true),
            proactive(0, 6, 60.0, 120.0, 1, true),
        ]);
        store.evict_expired(90.0);
        assert_eq!(store.proactive().len(), 1);
        assert_eq!(store.proactive()[0].target, 6);
    }

    #[test]
    fn resolve_without_reactive_uses_proactive_regardless_of_trust() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[proactive(0, 5, 0.0, 60.0, 1, true)]);
        assert_eq!(store.resolve(0, 30.0, 2, None).unwrap().target, 5);
        // Untrusted but no alternative: still applied.
        let mut store2 = DecisionStore::new();
        store2.add_proactive(&[proactive(0, 5, 0.0, 60.0, 1, false)]);
        assert_eq!(store2.resolve(0, 30.0, 2, None).unwrap().target, 5);
        // Nothing at all: no decision.
        assert!(DecisionStore::new().resolve(0, 30.0, 2, None).is_none());
    }

    #[test]
    fn reactive_decisions_not_stored() {
        let mut store = DecisionStore::new();
        store.add_proactive(&[reactive(0, 3, 0.0, 60.0)]);
        assert!(store.proactive().is_empty());
    }
}
