//! Chamulteon configuration.

/// All tunables of the Chamulteon controller.
///
/// The defaults reflect the paper's configuration notes: utilization
/// thresholds that keep the system *slightly over-provisioned* ("Due to the
/// configuration of Chamulteon, the system is always allocated slightly
/// more than the required amount of resources", §V-A), a reactive cycle
/// every scaling interval, a proactive cycle forecasting a window of future
/// intervals, and a MASE-based trust threshold for the conflict
/// resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChamulteonConfig {
    /// Scale up when the (predicted) utilization reaches this value
    /// (`ρ_upper` of Algorithm 1).
    pub rho_upper: f64,
    /// Scale down when the (predicted) utilization falls below this value
    /// (`ρ_lower`).
    pub rho_lower: f64,
    /// Target utilization used when computing the new instance count —
    /// sits between the thresholds so fresh decisions land inside the band.
    pub rho_target: f64,
    /// Number of future scaling intervals the proactive cycle plans for.
    pub forecast_horizon: usize,
    /// Minimum observations before the proactive cycle trusts any forecast
    /// (the paper requires seasonal history; with too little history
    /// "forecasts contain only trend and noise components", §III-D).
    pub min_history: usize,
    /// Proactive decisions are *trustable* when the forecast's holdout MASE
    /// is at or below this threshold (§III-C1).
    pub trust_threshold: f64,
    /// MASE drift threshold that triggers an early re-forecast (§III-A1).
    pub drift_threshold: f64,
    /// Enable the reactive cycle (disable for the proactive-only ablation).
    pub reactive_enabled: bool,
    /// Enable the proactive cycle (disable for the reactive-only ablation).
    pub proactive_enabled: bool,
    /// EWMA smoothing factor for the demand estimates.
    pub demand_smoothing: f64,
    /// Number of monitoring windows the demand estimator keeps.
    pub demand_window: usize,
    /// Return-path awareness (the paper's second future-work item, §VI):
    /// when a *downstream* service is pinned at its maximum capacity,
    /// scale upstream services down to the rate the bottleneck can
    /// actually serve instead of provisioning them for traffic that will
    /// only queue behind it — "the auto-scaler could scale down to the
    /// maximum capacity of the bottleneck resource and save instance
    /// time". Off by default, matching the published system.
    pub backpressure_enabled: bool,
}

impl Default for ChamulteonConfig {
    fn default() -> Self {
        ChamulteonConfig {
            rho_upper: 0.75,
            rho_lower: 0.45,
            rho_target: 0.6,
            forecast_horizon: 8,
            min_history: 12,
            trust_threshold: 1.0,
            drift_threshold: 1.5,
            reactive_enabled: true,
            proactive_enabled: true,
            demand_smoothing: 0.4,
            demand_window: 5,
            backpressure_enabled: false,
        }
    }
}

impl ChamulteonConfig {
    /// Validates and sanitizes the configuration: thresholds are forced
    /// into `0 < ρ_lower < ρ_target ≤ ρ_upper ≤ 1`, horizons and windows to
    /// at least 1. Invalid fields fall back to the defaults.
    pub fn sanitized(mut self) -> Self {
        let d = ChamulteonConfig::default();
        if !(self.rho_upper > 0.0 && self.rho_upper <= 1.0) {
            self.rho_upper = d.rho_upper;
        }
        if !(self.rho_lower > 0.0 && self.rho_lower < self.rho_upper) {
            self.rho_lower = (self.rho_upper / 2.0).min(d.rho_lower);
        }
        if !(self.rho_target > self.rho_lower && self.rho_target <= self.rho_upper) {
            self.rho_target = (self.rho_lower + self.rho_upper) / 2.0;
        }
        if self.forecast_horizon == 0 {
            self.forecast_horizon = d.forecast_horizon;
        }
        if self.min_history < 4 {
            self.min_history = 4;
        }
        if !(self.trust_threshold > 0.0) || !self.trust_threshold.is_finite() {
            self.trust_threshold = d.trust_threshold;
        }
        if !(self.drift_threshold > 0.0) || !self.drift_threshold.is_finite() {
            self.drift_threshold = d.drift_threshold;
        }
        if !(self.demand_smoothing > 0.0 && self.demand_smoothing <= 1.0) {
            self.demand_smoothing = d.demand_smoothing;
        }
        if self.demand_window == 0 {
            self.demand_window = d.demand_window;
        }
        self
    }

    /// The reactive-only ablation configuration.
    pub fn reactive_only() -> Self {
        ChamulteonConfig {
            proactive_enabled: false,
            ..ChamulteonConfig::default()
        }
    }

    /// The proactive-only ablation configuration.
    pub fn proactive_only() -> Self {
        ChamulteonConfig {
            reactive_enabled: false,
            ..ChamulteonConfig::default()
        }
    }

    /// The return-path-aware extension configuration (§VI future work).
    pub fn with_backpressure() -> Self {
        ChamulteonConfig {
            backpressure_enabled: true,
            ..ChamulteonConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_self_consistent() {
        let c = ChamulteonConfig::default();
        assert!(c.rho_lower < c.rho_target);
        assert!(c.rho_target <= c.rho_upper);
        assert!(c.rho_upper <= 1.0);
        assert_eq!(c.clone().sanitized(), c);
    }

    #[test]
    fn sanitize_fixes_inverted_thresholds() {
        let c = ChamulteonConfig {
            rho_upper: 0.5,
            rho_lower: 0.9,
            rho_target: 2.0,
            ..ChamulteonConfig::default()
        }
        .sanitized();
        assert!(c.rho_lower < c.rho_target && c.rho_target <= c.rho_upper);
    }

    #[test]
    fn sanitize_fixes_degenerate_numbers() {
        let c = ChamulteonConfig {
            rho_upper: f64::NAN,
            forecast_horizon: 0,
            min_history: 0,
            trust_threshold: -1.0,
            drift_threshold: f64::INFINITY,
            demand_smoothing: 0.0,
            demand_window: 0,
            ..ChamulteonConfig::default()
        }
        .sanitized();
        assert_eq!(c.rho_upper, 0.75);
        assert!(c.forecast_horizon >= 1);
        assert!(c.min_history >= 4);
        assert!(c.trust_threshold > 0.0);
        assert!(c.drift_threshold.is_finite());
        assert!(c.demand_smoothing > 0.0);
        assert!(c.demand_window >= 1);
    }

    #[test]
    fn ablation_presets() {
        assert!(!ChamulteonConfig::reactive_only().proactive_enabled);
        assert!(ChamulteonConfig::reactive_only().reactive_enabled);
        assert!(!ChamulteonConfig::proactive_only().reactive_enabled);
        assert!(ChamulteonConfig::proactive_only().proactive_enabled);
    }
}
