//! FOX — the cost-awareness component (Lesch et al., ICPE 2018; §III-A3).
//!
//! FOX "leverages knowledge of the charging model of the public cloud and
//! reviews the scaling decisions proposed by the auto-scaler in order to
//! reduce the charged costs to a minimum. More precisely, FOX delays or
//! omits releasing resources to avoid additional charging costs if the
//! resources will be required again within the charging interval."
//!
//! The paper names two implemented charging strategies — Amazon EC2
//! (hourly) and the Google Cloud (per-minute with a minimum) — modeled
//! here as [`ChargingModel`]s.

/// A public-cloud charging model: instances are billed in fixed intervals
/// from their individual start times, with a minimum billed duration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargingModel {
    /// Model name for reports.
    pub name: String,
    /// Billing granularity in seconds (each started interval is charged in
    /// full).
    pub interval: f64,
    /// Minimum billed duration per instance in seconds.
    pub minimum: f64,
}

impl ChargingModel {
    /// Amazon EC2 classic hourly billing.
    pub fn ec2_hourly() -> Self {
        ChargingModel {
            name: "ec2-hourly".into(),
            interval: 3600.0,
            minimum: 3600.0,
        }
    }

    /// Google Cloud per-minute billing with a 10-minute minimum.
    pub fn gcp_per_minute() -> Self {
        ChargingModel {
            name: "gcp-per-minute".into(),
            interval: 60.0,
            minimum: 600.0,
        }
    }

    /// The billed duration for an instance that ran `elapsed` seconds.
    ///
    /// An elapsed time of exactly `k` charging intervals bills exactly `k`
    /// intervals. Because `elapsed` is usually formed as a difference of
    /// accumulated simulation times, a run of exactly one hour can land a
    /// few ulps *above* 3600 s; without compensation the `ceil` would then
    /// charge a whole phantom interval. Interval counts within a relative
    /// `1e-9` of an integer are therefore snapped to that integer — the
    /// same boundary-snap policy the capacity solvers apply.
    pub fn billed_duration(&self, elapsed: f64) -> f64 {
        let elapsed = elapsed.max(0.0).max(self.minimum);
        let intervals = elapsed / self.interval;
        let snapped = if (intervals - intervals.round()).abs() <= 1e-9 * intervals.abs().max(1.0) {
            intervals.round()
        } else {
            intervals.ceil()
        };
        snapped * self.interval
    }

    /// Seconds of already-paid time remaining for an instance started at
    /// `start` when observed at `now`, never negative.
    ///
    /// At `now - start` exactly `k` intervals (up to float drift, see
    /// [`billed_duration`](ChargingModel::billed_duration)) the paid window
    /// is exhausted: the remaining time is 0, not a phantom full interval.
    pub fn paid_time_remaining(&self, start: f64, now: f64) -> f64 {
        let elapsed = (now - start).max(0.0);
        (self.billed_duration(elapsed) - elapsed).max(0.0)
    }
}

/// The FOX reviewer: tracks per-service instance leases and vetoes
/// releases that would waste already-paid instance time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fox {
    model: ChargingModel,
    /// Release an instance only when at most this fraction of its current
    /// charging interval remains paid (default 10%).
    release_window: f64,
    /// Per-service start times of currently leased instances.
    leases: Vec<Vec<f64>>,
    /// Total seconds of billed instance time already incurred by released
    /// instances.
    billed_released: f64,
}

impl Fox {
    /// Creates a FOX reviewer for `service_count` services under the given
    /// charging model.
    pub fn new(model: ChargingModel, service_count: usize) -> Self {
        Fox {
            model,
            release_window: 0.1,
            leases: vec![Vec::new(); service_count],
            billed_released: 0.0,
        }
    }

    /// The charging model in use.
    pub fn model(&self) -> &ChargingModel {
        &self.model
    }

    /// Currently leased instances of a service (as far as FOX knows).
    pub fn leased(&self, service: usize) -> usize {
        self.leases.get(service).map(Vec::len).unwrap_or(0)
    }

    /// The release-window fraction of the charging interval.
    pub(crate) fn release_window(&self) -> f64 {
        self.release_window
    }

    /// The per-service lease books: one start time per open lease, in the
    /// exact internal order (observable via the cheapest-lease selection,
    /// so snapshots must preserve it verbatim).
    pub(crate) fn lease_books(&self) -> &[Vec<f64>] {
        &self.leases
    }

    /// Instance-seconds already billed for *released* instances.
    pub(crate) fn billed_released(&self) -> f64 {
        self.billed_released
    }

    /// Rebuilds a reviewer from previously captured state, verbatim —
    /// lease-book order included. Used by the controller's crash-recovery
    /// snapshot.
    pub(crate) fn restore(
        model: ChargingModel,
        release_window: f64,
        leases: Vec<Vec<f64>>,
        billed_released: f64,
    ) -> Self {
        Fox {
            model,
            release_window,
            leases,
            billed_released,
        }
    }

    /// Reviews a proposed target for `service` at time `now`, given the
    /// currently provisioned count, and returns the (possibly raised)
    /// target: scale-downs are limited to instances whose paid interval is
    /// nearly exhausted; scale-ups pass through and open new leases.
    pub fn review(&mut self, service: usize, now: f64, current: u32, proposed: u32) -> u32 {
        self.sync_leases(service, now, current);
        if proposed >= current {
            return proposed;
        }
        let leases = &mut self.leases[service];
        // Candidates for release: instances nearest the end of their paid
        // interval. Sort so the cheapest-to-release (least remaining paid
        // time) come last.
        leases.sort_by(|a, b| {
            let ra = self.model.paid_time_remaining(*a, now);
            let rb = self.model.paid_time_remaining(*b, now);
            // Equal remaining paid time: release the earliest-started lease
            // first (sort its start towards the tail) so the outcome is a
            // deterministic policy rather than sort-order luck.
            rb.total_cmp(&ra).then_with(|| b.total_cmp(a))
        });
        let want_release = current - proposed;
        let window = self.model.interval * self.release_window;
        let mut released = 0u32;
        while released < want_release {
            let Some(&start) = leases.last() else { break };
            if self.model.paid_time_remaining(start, now) <= window {
                leases.pop();
                self.billed_released += self.model.billed_duration(now - start);
                released += 1;
            } else {
                break; // still-paid instance: keep it ("delays or omits releasing")
            }
        }
        current - released
    }

    /// The smallest remaining paid fraction of the charging interval
    /// across the service's leases at `now` — FOX's release criterion
    /// (an instance may go once this drops to the release window).
    /// `None` when the service holds no leases or the model's interval
    /// is degenerate.
    pub fn min_paid_fraction(&self, service: usize, now: f64) -> Option<f64> {
        if self.model.interval <= 0.0 || !self.model.interval.is_finite() {
            return None;
        }
        self.leases
            .get(service)?
            .iter()
            .map(|&start| self.model.paid_time_remaining(start, now) / self.model.interval)
            .min_by(f64::total_cmp)
    }

    /// Total billed instance-seconds so far: every released lease's billed
    /// duration plus the running leases billed as of `now`.
    pub fn billed_instance_seconds(&self, now: f64) -> f64 {
        let running: f64 = self
            .leases
            .iter()
            .flatten()
            .map(|&start| self.model.billed_duration(now - start))
            .sum();
        self.billed_released + running
    }

    /// Aligns the lease book with the externally observed instance count
    /// (instances may have been added without FOX involvement, e.g. the
    /// initial deployment).
    fn sync_leases(&mut self, service: usize, now: f64, current: u32) {
        if service >= self.leases.len() {
            self.leases.resize(service + 1, Vec::new());
        }
        let leases = &mut self.leases[service];
        let current = usize::try_from(current).unwrap_or(usize::MAX);
        while leases.len() < current {
            leases.push(now);
        }
        while leases.len() > current {
            // Instances went away without review (drained): close the
            // leases with the least remaining paid time — the same
            // cheapest-first criterion `review` uses — so the outcome is
            // deterministic policy, not an artifact of whatever order a
            // previous review's sort left the vector in.
            let Some(idx) = cheapest_lease(leases, &self.model, now) else {
                break;
            };
            let start = leases.swap_remove(idx);
            self.billed_released += self.model.billed_duration(now - start);
        }
    }
}

/// Index of the lease with the least remaining paid time at `now` (ties
/// broken towards the earliest start, for determinism).
fn cheapest_lease(leases: &[f64], model: &ChargingModel, now: f64) -> Option<usize> {
    leases
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            model
                .paid_time_remaining(**a, now)
                .total_cmp(&model.paid_time_remaining(**b, now))
                .then_with(|| a.total_cmp(b))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billed_duration_rounds_up_with_minimum() {
        let ec2 = ChargingModel::ec2_hourly();
        assert_eq!(ec2.billed_duration(1.0), 3600.0);
        assert_eq!(ec2.billed_duration(3600.0), 3600.0);
        assert_eq!(ec2.billed_duration(3601.0), 7200.0);
        let gcp = ChargingModel::gcp_per_minute();
        assert_eq!(gcp.billed_duration(30.0), 600.0);
        assert_eq!(gcp.billed_duration(600.0), 600.0);
        assert_eq!(gcp.billed_duration(601.0), 660.0);
    }

    #[test]
    fn paid_time_remaining_decreases() {
        let ec2 = ChargingModel::ec2_hourly();
        assert!((ec2.paid_time_remaining(0.0, 600.0) - 3000.0).abs() < 1e-9);
        assert!((ec2.paid_time_remaining(0.0, 3599.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_interval_boundary_is_not_a_phantom_paid_window_ec2() {
        let ec2 = ChargingModel::ec2_hourly();
        // Start/observation times formed by accumulation: `now - start`
        // lands a few ulps above exactly one hour. This must bill one
        // hour (not two) and leave no phantom paid window.
        let (start, now) = (0.1, 3600.1);
        let elapsed = now - start;
        assert!(elapsed >= 3600.0, "drift direction assumed by this test");
        assert_eq!(ec2.billed_duration(elapsed), 3600.0);
        assert!(
            ec2.paid_time_remaining(start, now) < 1e-6,
            "phantom paid window: {} s remain at the exact boundary",
            ec2.paid_time_remaining(start, now)
        );
        // A real margin past the boundary still bills the next interval.
        assert_eq!(ec2.billed_duration(3601.0), 7200.0);
        // Exactly k intervals bills exactly k intervals.
        assert_eq!(ec2.billed_duration(7200.0), 7200.0);
    }

    #[test]
    fn exact_interval_boundary_is_not_a_phantom_paid_window_gcp() {
        let gcp = ChargingModel::gcp_per_minute();
        // Past the 10-minute minimum, on an exact per-minute boundary
        // (with accumulation drift): 11 minutes bills 11 minutes.
        let (start, now) = (0.1, 660.1);
        let elapsed = now - start;
        assert_eq!(gcp.billed_duration(elapsed), 660.0);
        assert!(
            gcp.paid_time_remaining(start, now) < 1e-6,
            "phantom paid minute: {} s remain",
            gcp.paid_time_remaining(start, now)
        );
        assert_eq!(gcp.billed_duration(661.0), 720.0);
    }

    #[test]
    fn paid_time_remaining_is_never_negative() {
        for model in [ChargingModel::ec2_hourly(), ChargingModel::gcp_per_minute()] {
            for k in 1..200u32 {
                let now = f64::from(k) * 36.1;
                let r = model.paid_time_remaining(0.05, now);
                assert!(r >= 0.0, "{} at now={now}: {r}", model.name);
                assert!(r <= model.interval.max(model.minimum), "{now}: {r}");
            }
        }
    }

    #[test]
    fn review_releases_at_exact_boundary_instant() {
        // Leases opened at t = 0.1; reviewed exactly one hour later at a
        // float-drifted boundary instant. The paid hour is exhausted, so
        // the release must go through and bill exactly one hour per lease.
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        fox.review(0, 0.1, 3, 3);
        assert_eq!(fox.review(0, 3600.1, 3, 1), 1);
        assert!(
            (fox.billed_instance_seconds(3600.1) - 3.0 * 3600.0).abs() < 1e-6,
            "billed {}",
            fox.billed_instance_seconds(3600.1)
        );
    }

    #[test]
    fn scale_up_passes_through() {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        assert_eq!(fox.review(0, 0.0, 2, 5), 5);
    }

    #[test]
    fn early_release_is_vetoed() {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        fox.review(0, 0.0, 4, 4); // open 4 leases at t = 0
                                  // 10 minutes in: 50 paid minutes remain — keep everything.
        assert_eq!(fox.review(0, 600.0, 4, 1), 4);
    }

    #[test]
    fn release_allowed_near_interval_end() {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        fox.review(0, 0.0, 4, 4);
        // 59 minutes in: 60 s of paid time remain (< 10% of 3600 s).
        assert_eq!(fox.review(0, 3540.0, 4, 1), 1);
    }

    #[test]
    fn partial_release_when_leases_differ() {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        fox.review(0, 0.0, 2, 2); // two leases at t = 0
        fox.review(0, 1800.0, 3, 3); // one more at t = 1800
                                     // At t = 3550 the two old leases are nearly exhausted, the newer
                                     // one has ~30 min paid: only the old two may go.
        assert_eq!(fox.review(0, 3550.0, 3, 0), 1);
    }

    #[test]
    fn billing_accumulates() {
        let mut fox = Fox::new(ChargingModel::gcp_per_minute(), 1);
        fox.review(0, 0.0, 1, 1);
        // Near the end of the 10-minute minimum the instance can go.
        let target = fox.review(0, 599.0, 1, 0);
        assert_eq!(target, 0);
        assert!((fox.billed_instance_seconds(599.0) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn min_paid_fraction_tracks_the_oldest_lease() {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        assert_eq!(fox.min_paid_fraction(0, 0.0), None, "no leases yet");
        fox.review(0, 0.0, 2, 2);
        fox.review(0, 1800.0, 3, 3);
        // At t = 3240 the two t = 0 leases have 360 s paid left (10% of
        // the hour); the t = 1800 lease has 2160 s (60%).
        let frac = fox.min_paid_fraction(0, 3240.0).unwrap();
        assert!((frac - 0.1).abs() < 1e-9, "{frac}");
        assert_eq!(fox.min_paid_fraction(9, 3240.0), None, "unknown service");
    }

    #[test]
    fn external_shrink_closes_cheapest_leases_first() {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        fox.review(0, 0.0, 2, 2); // two leases at t = 0
        fox.review(0, 1800.0, 3, 3); // a third lease, appended unsorted
                                     // Two instances vanish externally at t = 3550: the policy must
                                     // close the two t = 0 leases (50 s of paid time remain) and keep
                                     // the t = 1800 one (1850 s remain) — not whichever lease happened
                                     // to sit at the vector tail.
        fox.review(0, 3550.0, 1, 1);
        assert_eq!(fox.leased(0), 1);
        let frac = fox.min_paid_fraction(0, 3590.0).unwrap();
        assert!((frac - 1810.0 / 3600.0).abs() < 1e-9, "{frac}");
        // The survivor still has ~30 paid minutes: scale-to-zero is vetoed.
        // (Pre-fix the survivor was a t = 0 lease and the release went
        // through.)
        assert_eq!(fox.review(0, 3590.0, 1, 0), 1);
    }

    #[test]
    fn sync_handles_external_changes() {
        let mut fox = Fox::new(ChargingModel::gcp_per_minute(), 1);
        // Instances appeared without FOX: leases opened on sight.
        fox.review(0, 100.0, 5, 5);
        assert_eq!(fox.leased(0), 5);
        // Instances vanished without review: leases closed and billed.
        fox.review(0, 200.0, 2, 2);
        assert_eq!(fox.leased(0), 2);
        assert!(fox.billed_instance_seconds(200.0) > 0.0);
    }
}
