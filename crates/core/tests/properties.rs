//! Property-based tests for the Chamulteon controller and its components.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon::{
    proactive_decisions, Chamulteon, ChamulteonConfig, ChargingModel, DecisionOrigin,
    DecisionStore, Fox, RetryPolicy, ScalingDecision, VerticalPolicy,
};
use chamulteon_demand::MonitoringSample;
use chamulteon_perfmodel::ApplicationModel;
use proptest::prelude::*;

fn sample_for(rate: f64, demand: f64, n: u32) -> MonitoringSample {
    let n = n.max(1);
    let util = (rate * demand / f64::from(n)).min(1.0);
    let capacity = f64::from(n) / demand;
    MonitoringSample::new(60.0, (rate * 60.0).round() as u64, util, n, None)
        .unwrap()
        .with_completions((rate.min(capacity) * 60.0).round() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Controller targets always respect the model bounds, under arbitrary
    /// load sequences.
    #[test]
    fn targets_always_within_bounds(loads in prop::collection::vec(0.0f64..2000.0, 1..25)) {
        let model = ApplicationModel::paper_benchmark();
        let mut c = Chamulteon::new(model.clone(), ChamulteonConfig::default());
        let mut n = [1u32, 1, 1];
        let demands = [0.059, 0.1, 0.04];
        for (k, &rate) in loads.iter().enumerate() {
            let samples: Vec<MonitoringSample> = (0..3)
                .map(|i| sample_for(rate, demands[i], n[i]))
                .collect();
            let targets = c.tick(60.0 * (k as f64 + 1.0), &samples);
            prop_assert_eq!(targets.len(), 3);
            for (i, &t) in targets.iter().enumerate() {
                prop_assert!(t >= model.service(i).min_instances());
                prop_assert!(t <= model.service(i).max_instances());
                n[i] = t;
            }
        }
    }

    /// At steady load the controller converges and then holds: after
    /// convergence the targets stop changing (no oscillation).
    #[test]
    fn no_oscillation_at_steady_load(rate in 5.0f64..400.0) {
        let model = ApplicationModel::paper_benchmark();
        let mut c = Chamulteon::new(model, ChamulteonConfig::reactive_only());
        let demands = [0.059, 0.1, 0.04];
        let mut n = [1u32, 1, 1];
        let mut history = Vec::new();
        for k in 0..25 {
            let samples: Vec<MonitoringSample> = (0..3)
                .map(|i| sample_for(rate, demands[i], n[i]))
                .collect();
            let targets = c.tick(60.0 * (k as f64 + 1.0), &samples);
            n = [targets[0], targets[1], targets[2]];
            history.push(n);
        }
        // The last 10 rounds must be identical.
        let last = history[history.len() - 1];
        for round in &history[history.len() - 10..] {
            prop_assert_eq!(*round, last);
        }
        // And the settled capacity serves the load at every tier.
        for i in 0..3 {
            prop_assert!(f64::from(last[i]) / demands[i] >= rate * 0.99);
        }
    }

    /// Algorithm 1 output capacity covers the offered (possibly throttled)
    /// rate at the target utilization, for every tier.
    #[test]
    fn algorithm1_capacity_sufficient(
        rate in 0.0f64..3000.0,
        n1 in 1u32..100, n2 in 1u32..100, n3 in 1u32..100,
    ) {
        let model = ApplicationModel::paper_benchmark();
        let config = ChamulteonConfig::default();
        let demands = [0.059, 0.1, 0.04];
        let targets = proactive_decisions(&model, rate, &demands, &[n1, n2, n3], &config);
        // Effective rates after the *new* sizing.
        let mut upstream = rate;
        for i in 0..3 {
            let capacity = f64::from(targets[i]) / demands[i];
            // Either the tier covers its offered rate at rho_upper, or it
            // is pinned at the model maximum.
            prop_assert!(
                capacity * config.rho_upper >= upstream - 1e-6 || targets[i] == 200,
                "tier {i}: capacity {capacity} for offered {upstream}"
            );
            upstream = upstream.min(capacity);
        }
    }

    /// Decision-store resolution never invents targets: the resolved
    /// decision is always one of the inputs.
    #[test]
    fn resolution_picks_an_input(
        p_target in 1u32..50,
        r_target in 1u32..50,
        current in 1u32..50,
        trusted in any::<bool>(),
    ) {
        let mut store = DecisionStore::new();
        store.add_proactive(&[ScalingDecision {
            service: 0,
            target: p_target,
            start: 0.0,
            end: 60.0,
            origin: DecisionOrigin::Proactive { generation: 1, trusted },
        }]);
        let reactive = ScalingDecision {
            service: 0,
            target: r_target,
            start: 0.0,
            end: 60.0,
            origin: DecisionOrigin::Reactive,
        };
        let chosen = store.resolve(0, 30.0, current, Some(reactive)).unwrap();
        prop_assert!(chosen.target == p_target || chosen.target == r_target);
        // Trusted + wants-to-scale must pick proactive; otherwise reactive.
        if trusted && p_target != current {
            prop_assert_eq!(chosen.target, p_target);
        } else {
            prop_assert_eq!(chosen.target, r_target);
        }
    }

    /// FOX review never lowers a scale-up and never raises a target above
    /// the current count during a scale-down.
    #[test]
    fn fox_review_sandwiched(
        current in 1u32..50,
        proposed in 1u32..50,
        elapsed in 0.0f64..7200.0,
    ) {
        let mut fox = Fox::new(ChargingModel::ec2_hourly(), 1);
        fox.review(0, 0.0, current, current); // open leases at t = 0
        let reviewed = fox.review(0, elapsed, current, proposed);
        if proposed >= current {
            prop_assert_eq!(reviewed, proposed);
        } else {
            prop_assert!(reviewed >= proposed);
            prop_assert!(reviewed <= current);
        }
    }

    /// The hybrid vertical policy always returns a decision whose capacity
    /// covers the load when any feasible option exists.
    #[test]
    fn vertical_policy_feasible_when_possible(
        rate in 0.0f64..500.0,
        demand in 0.01f64..0.3,
        max_n in 1u32..200,
    ) {
        let policy = VerticalPolicy::ec2_like();
        let d = policy.decide(rate, demand, 0.8, 1, max_n);
        prop_assert!(d.instances >= 1 && d.instances <= max_n.max(1));
        let speed = policy.sizes()[d.size_index].speed;
        let needed_units = rate * demand / 0.8;
        let best_possible = f64::from(max_n) * 4.0; // biggest rung is 4x
        if needed_units <= best_possible {
            prop_assert!(
                f64::from(d.instances) * speed + 1e-6 >= needed_units,
                "infeasible pick: {d:?} for {needed_units} units"
            );
        }
        prop_assert!(d.cost_per_hour > 0.0);
    }

    /// The sanitized backoff sequence is finite, non-negative, capped at
    /// `max_backoff` and monotone non-decreasing — including attempt
    /// numbers far past the `2^1023` overflow point and an extreme
    /// `max_attempts` budget.
    #[test]
    fn backoff_sequence_is_monotone_capped_and_finite(
        max_attempts in 1u32..=u32::MAX,
        base in -1.0f64..1e305,
        cap in -1.0f64..1e305,
        attempt in 0u32..=u32::MAX,
        step in 1u32..2000,
    ) {
        let policy = RetryPolicy::new(max_attempts, base, cap);
        prop_assert!(policy.max_attempts >= 1);
        let here = policy.backoff(attempt);
        let later = policy.backoff(attempt.saturating_add(step));
        for b in [here, later] {
            prop_assert!(b.is_finite(), "non-finite backoff: {b}");
            prop_assert!(b >= 0.0, "negative backoff: {b}");
            prop_assert!(b <= policy.max_backoff, "{b} above cap {}", policy.max_backoff);
        }
        prop_assert!(later >= here, "backoff not monotone: {here} then {later}");
    }

    /// The backoff guarantees hold even when the public fields are set
    /// directly to degenerate values (NaN, infinities, negatives) without
    /// going through the sanitizing constructor.
    #[test]
    fn backoff_survives_degenerate_fields(
        base_pick in 0usize..6,
        cap_pick in 0usize..6,
        attempt in 0u32..=u32::MAX,
    ) {
        let degenerate = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 0.0, 1.0e308];
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: degenerate[base_pick],
            max_backoff: degenerate[cap_pick],
        };
        let b0 = policy.backoff(attempt);
        let b1 = policy.backoff(attempt.saturating_add(1));
        prop_assert!(b0.is_finite() && b0 >= 0.0, "degenerate fields leaked: {b0}");
        prop_assert!(b1.is_finite() && b1 >= 0.0, "degenerate fields leaked: {b1}");
        prop_assert!(b1 >= b0);
    }
}
