//! Property tests pinning the arena-compiled hot path to an independent
//! reimplementation written directly against the public graph API.
//!
//! The arena (cached topological order, CSR edge arrays, stage partition)
//! exists purely as a faster *representation* — it must never change what
//! is computed. These properties sweep all four synthetic topology
//! families plus hand-rolled edge lists with degenerate multiplicities
//! (duplicate edges that accumulate, near-denormal weights) and assert
//! bit-identical agreement with a deliberately naive reference that shares
//! no code with the arena.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use chamulteon_perfmodel::{
    topology, ApplicationModel, InvocationGraph, ServiceSpec, TopologyFamily,
};
use proptest::prelude::*;

/// Reference propagation over the public graph API: per-call topological
/// sort, Vec-of-Vec adjacency, spec lookups through `model.service(i)`.
/// Deliberately shares nothing with `ModelArena::propagate_arrivals_into`
/// so a CSR layout or cached-order bug cannot hide in common code.
fn reference_propagation(
    model: &ApplicationModel,
    entry_rate: f64,
    instances: &[u32],
    demands: &[f64],
) -> Vec<f64> {
    let n = model.service_count();
    let mut offered = vec![0.0; n];
    if n == 0 {
        return offered;
    }
    offered[model.entry()] = entry_rate.max(0.0);
    let order = model
        .graph()
        .topological_order()
        .expect("validated models are acyclic");
    for node in order {
        let inst = instances
            .get(node)
            .copied()
            .unwrap_or_else(|| model.service(node).initial_instances());
        let demand = demands
            .get(node)
            .copied()
            .filter(|d| d.is_finite() && *d > 0.0)
            .unwrap_or_else(|| model.service(node).nominal_demand());
        let completed = offered[node].min(f64::from(inst) / demand);
        for &(to, multiplicity) in model.graph().calls_from(node) {
            offered[to] += completed * multiplicity;
        }
    }
    offered
}

/// Decodes a `(healthy value, selector)` pair into a demand estimate
/// mixing in every degenerate class the sanitizer must catch.
fn decode_demand((value, selector): (f64, usize)) -> f64 {
    match selector {
        0 => f64::NAN,
        1 => 0.0,
        2 => -1.0,
        3 => f64::INFINITY,
        _ => value,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena propagation is bit-identical to the graph-API reference over
    /// every topology family, including short/degenerate instance and
    /// demand slices (which must fall back to spec values identically).
    #[test]
    fn arena_propagation_matches_reference(
        fam_index in 0usize..4,
        n in 1usize..60,
        seed in 0u64..1_000,
        entry_rate in -5.0f64..5_000.0,
        instances in prop::collection::vec(0u32..50, 0..60),
        raw_demands in prop::collection::vec((0.001f64..0.5, 0usize..8), 0..60),
    ) {
        let fam = TopologyFamily::ALL[fam_index];
        let demands: Vec<f64> = raw_demands.into_iter().map(decode_demand).collect();
        let model = topology::model(fam, n, seed).expect("generated model is valid");
        let expected = reference_propagation(&model, entry_rate, &instances, &demands);
        let got = model.propagate_arrivals(entry_rate, &instances, &demands);
        prop_assert_eq!(got, expected);
    }

    /// Bulk `from_edges` construction is indistinguishable from the
    /// incremental `add_call` loop: same adjacency (order and accumulated
    /// multiplicities) and same canonical topological order.
    #[test]
    fn from_edges_matches_add_call_loop(
        fam_index in 0usize..4,
        n in 1usize..48,
        seed in 0u64..1_000,
    ) {
        let fam = TopologyFamily::ALL[fam_index];
        let edges = topology::edges(fam, n, seed);
        let bulk = InvocationGraph::from_edges(n, edges.clone()).expect("acyclic");
        let mut incremental = InvocationGraph::new(n);
        for (from, to, multiplicity) in edges {
            incremental.add_call(from, to, multiplicity).expect("valid edge");
        }
        for node in 0..n {
            prop_assert_eq!(bulk.calls_from(node), incremental.calls_from(node));
        }
        prop_assert_eq!(bulk.topological_order(), incremental.topological_order());
    }

    /// The arena's cached visit ratios agree with the graph's on-demand
    /// computation for every family.
    #[test]
    fn cached_visit_ratios_match_graph(
        fam_index in 0usize..4,
        n in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let fam = TopologyFamily::ALL[fam_index];
        let model = topology::model(fam, n, seed).expect("generated model is valid");
        prop_assert_eq!(model.visit_ratios(), model.graph().visit_ratios(model.entry()));
    }

    /// The stage partition is a partition: stages concatenate to exactly
    /// the canonical topological order, and no stage contains an edge
    /// between two of its own members (the property that makes batched
    /// stage-at-a-time sizing equivalent to the sequential walk).
    #[test]
    fn stages_concatenate_to_canonical_order(
        fam_index in 0usize..4,
        n in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let fam = TopologyFamily::ALL[fam_index];
        let model = topology::model(fam, n, seed).expect("generated model is valid");
        let arena = model.arena();
        let flattened: Vec<usize> = (0..arena.stage_count())
            .flat_map(|s| arena.stage(s).iter().copied())
            .collect();
        prop_assert_eq!(flattened.as_slice(), arena.topo_order());
        prop_assert_eq!(
            Some(arena.topo_order().to_vec()),
            model.graph().topological_order()
        );
        for s in 0..arena.stage_count() {
            let members = arena.stage(s);
            for &node in members {
                for (to, _) in arena.calls_from(node) {
                    prop_assert!(
                        !members.contains(&to),
                        "stage {} has internal edge {}->{}", s, node, to
                    );
                }
            }
        }
    }

    /// Degenerate multiplicities: duplicate edges accumulate, and
    /// near-denormal weights survive propagation identically in arena and
    /// reference form.
    #[test]
    fn degenerate_multiplicities_propagate_identically(
        n in 2usize..24,
        seed in 0u64..1_000,
        entry_rate in 0.0f64..2_000.0,
        raw_edges in prop::collection::vec((0usize..24, 0usize..24, 0usize..4), 1..64),
    ) {
        const PALETTE: [f64; 4] = [1e-300, 0.25, 0.5, 1.0];
        // Force index-topological edges (from < to) so the set is acyclic;
        // duplicates are kept so accumulation is exercised.
        let edges: Vec<(usize, usize, f64)> = raw_edges
            .into_iter()
            .filter_map(|(a, b, m)| {
                let (from, to) = ((a.min(b)) % n, (a.max(b)) % n);
                (from < to).then_some((from, to, PALETTE[m]))
            })
            .collect();
        let graph = InvocationGraph::from_edges(n, edges).expect("index-topological is acyclic");
        let mut rng = seed;
        let services: Vec<ServiceSpec> = (0..n)
            .map(|i| {
                rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let demand = 0.01 + f64::from(u32::try_from(rng >> 40).unwrap_or(0) % 100) / 400.0;
                ServiceSpec::new(format!("s{i}"), demand, 1, 10_000, 1).expect("valid spec")
            })
            .collect();
        let model = ApplicationModel::new(services, graph, 0).expect("valid model");
        let expected = reference_propagation(&model, entry_rate, &[], &[]);
        prop_assert_eq!(model.propagate_arrivals(entry_rate, &[], &[]), expected);
    }
}
