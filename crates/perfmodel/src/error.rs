//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

/// Error returned when building or validating an application model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Two services share the same name.
    DuplicateService {
        /// The duplicated name.
        name: String,
    },
    /// A call edge references a service name that does not exist.
    UnknownService {
        /// The unknown name.
        name: String,
    },
    /// The invocation graph contains a cycle, so arrival rates cannot be
    /// propagated.
    CyclicInvocation,
    /// The model has no services.
    Empty,
    /// A numeric field is out of range.
    InvalidField {
        /// Name of the offending field.
        field: &'static str,
        /// The value that was passed.
        value: f64,
    },
    /// The JSON representation could not be parsed.
    Parse {
        /// Parser message.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateService { name } => {
                write!(f, "duplicate service name `{name}`")
            }
            ModelError::UnknownService { name } => {
                write!(f, "unknown service name `{name}`")
            }
            ModelError::CyclicInvocation => write!(f, "invocation graph contains a cycle"),
            ModelError::Empty => write!(f, "model has no services"),
            ModelError::InvalidField { field, value } => {
                write!(f, "invalid field `{field}`: {value}")
            }
            ModelError::Parse { message } => write!(f, "model parse error: {message}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::DuplicateService { name: "ui".into() }
            .to_string()
            .contains("ui"));
        assert!(ModelError::CyclicInvocation.to_string().contains("cycle"));
        assert!(!ModelError::Empty.to_string().is_empty());
    }
}
