//! The invocation graph: who calls whom, how many times per request.

use crate::error::ModelError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A directed acyclic invocation graph over service indices.
///
/// Edge `(from, to, multiplicity)` means: every request processed by
/// service `from` issues `multiplicity` calls to service `to` (1.0 for the
/// paper's plain chain; fractional values model conditional control flow,
/// values above 1 model fan-out).
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationGraph {
    service_count: usize,
    /// Adjacency list: `edges[from] = [(to, multiplicity), …]`.
    edges: Vec<Vec<(usize, f64)>>,
}

impl InvocationGraph {
    /// Creates a graph over `service_count` services with no edges.
    pub fn new(service_count: usize) -> Self {
        InvocationGraph {
            service_count,
            edges: vec![Vec::new(); service_count],
        }
    }

    /// Creates the plain chain `0 → 1 → … → n−1` with multiplicity 1 — the
    /// paper's benchmark topology.
    pub fn chain(service_count: usize) -> Self {
        let mut g = InvocationGraph::new(service_count);
        for i in 1..service_count {
            // Indices are in range and a chain is acyclic by construction,
            // so this edge insertion cannot fail.
            let _ = g.add_call(i - 1, i, 1.0);
        }
        g
    }

    /// The number of services the graph spans.
    #[inline]
    pub fn service_count(&self) -> usize {
        self.service_count
    }

    /// Adds (or accumulates onto) a call edge.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownService`] for out-of-range indices,
    /// [`ModelError::InvalidField`] for a non-positive multiplicity or a
    /// self-call, and [`ModelError::CyclicInvocation`] if the edge would
    /// close a cycle.
    pub fn add_call(
        &mut self,
        from: usize,
        to: usize,
        multiplicity: f64,
    ) -> Result<(), ModelError> {
        // Tentatively add, then verify acyclicity.
        if self.push_edge(from, to, multiplicity)? {
            return Ok(()); // accumulating cannot create a cycle
        }
        if self.topological_order().is_none() {
            self.edges[from].pop();
            return Err(ModelError::CyclicInvocation);
        }
        Ok(())
    }

    /// Builds a graph from a bulk edge list with **one** acyclicity check
    /// at the end, instead of [`add_call`](InvocationGraph::add_call)'s
    /// per-edge re-validation — O(V + E) total instead of O(E·(V + E)),
    /// which is what makes thousand-service graph construction cheap.
    /// Duplicate `(from, to)` edges accumulate their multiplicities onto
    /// the first occurrence, exactly as repeated `add_call`s would.
    ///
    /// # Errors
    ///
    /// Returns the same per-edge errors as
    /// [`add_call`](InvocationGraph::add_call)
    /// ([`ModelError::UnknownService`], [`ModelError::InvalidField`]) and
    /// [`ModelError::CyclicInvocation`] if the finished edge set contains
    /// a cycle.
    pub fn from_edges(
        service_count: usize,
        edges: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, ModelError> {
        let mut graph = InvocationGraph::new(service_count);
        for (from, to, multiplicity) in edges {
            graph.push_edge(from, to, multiplicity)?;
        }
        if graph.topological_order().is_none() {
            return Err(ModelError::CyclicInvocation);
        }
        Ok(graph)
    }

    /// Validates one edge and inserts it (or accumulates onto an existing
    /// one) WITHOUT checking acyclicity. Returns `true` when the edge
    /// accumulated onto an existing one (which cannot create a cycle).
    fn push_edge(&mut self, from: usize, to: usize, multiplicity: f64) -> Result<bool, ModelError> {
        if from >= self.service_count {
            return Err(ModelError::UnknownService {
                name: format!("#{from}"),
            });
        }
        if to >= self.service_count {
            return Err(ModelError::UnknownService {
                name: format!("#{to}"),
            });
        }
        if from == to {
            // audit:allow(lossy-cast): small index reported in a diagnostic
            #[allow(clippy::cast_precision_loss)]
            let value = from as f64;
            return Err(ModelError::InvalidField {
                field: "self_call",
                value,
            });
        }
        if !(multiplicity > 0.0) || !multiplicity.is_finite() {
            return Err(ModelError::InvalidField {
                field: "multiplicity",
                value: multiplicity,
            });
        }
        if let Some(existing) = self.edges[from].iter_mut().find(|(t, _)| *t == to) {
            existing.1 += multiplicity;
            return Ok(true);
        }
        self.edges[from].push((to, multiplicity));
        Ok(false)
    }

    /// The outgoing calls of a service.
    #[inline]
    pub fn calls_from(&self, service: usize) -> &[(usize, f64)] {
        self.edges.get(service).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The incoming calls of a service as `(caller, multiplicity)` pairs.
    pub fn calls_into(&self, service: usize) -> Vec<(usize, f64)> {
        let mut result = Vec::new();
        for (from, outs) in self.edges.iter().enumerate() {
            for &(to, m) in outs {
                if to == service {
                    result.push((from, m));
                }
            }
        }
        result
    }

    /// The **canonical** topological order of the services, or `None` if
    /// the graph has a cycle.
    ///
    /// Kahn's algorithm with a smallest-index-first frontier, which makes
    /// the result the lexicographically smallest topological order. Every
    /// consumer that folds floats along the graph (arrival propagation,
    /// visit ratios, Algorithm 1) walks this one order, so their
    /// accumulation order — and therefore their bit-exact results — never
    /// depends on edge insertion history. For an *index-topological* graph
    /// (every edge `from < to`, which all generated topology families
    /// guarantee) the canonical order is exactly `0, 1, …, n−1`.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indegree = vec![0usize; self.service_count];
        for outs in &self.edges {
            for &(to, _) in outs {
                indegree[to] += 1;
            }
        }
        let mut ready: BinaryHeap<Reverse<usize>> = (0..self.service_count)
            .filter(|&i| indegree[i] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.service_count);
        while let Some(Reverse(node)) = ready.pop() {
            order.push(node);
            for &(to, _) in &self.edges[node] {
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    ready.push(Reverse(to));
                }
            }
        }
        if order.len() == self.service_count {
            Some(order)
        } else {
            None
        }
    }

    /// Visit ratios per external request entering at `entry`: how many
    /// times each service is invoked per external request, ignoring
    /// capacity limits. The entry itself has ratio 1.
    pub fn visit_ratios(&self, entry: usize) -> Vec<f64> {
        let mut ratios = vec![0.0; self.service_count];
        if entry >= self.service_count {
            return ratios;
        }
        ratios[entry] = 1.0;
        if let Some(order) = self.topological_order() {
            for &node in &order {
                let flow = ratios[node];
                if flow == 0.0 {
                    continue;
                }
                for &(to, m) in &self.edges[node] {
                    ratios[to] += flow * m;
                }
            }
        }
        ratios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let g = InvocationGraph::chain(3);
        assert_eq!(g.calls_from(0), &[(1, 1.0)]);
        assert_eq!(g.calls_from(1), &[(2, 1.0)]);
        assert!(g.calls_from(2).is_empty());
        assert_eq!(g.calls_into(1), vec![(0, 1.0)]);
    }

    #[test]
    fn topological_order_of_chain() {
        let g = InvocationGraph::chain(4);
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|&x| x == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_rejected() {
        let mut g = InvocationGraph::chain(3);
        assert_eq!(g.add_call(2, 0, 1.0), Err(ModelError::CyclicInvocation));
        // Graph unchanged after the rejected insert.
        assert!(g.calls_from(2).is_empty());
    }

    #[test]
    fn self_call_rejected() {
        let mut g = InvocationGraph::new(2);
        assert!(matches!(
            g.add_call(0, 0, 1.0),
            Err(ModelError::InvalidField { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = InvocationGraph::new(2);
        assert!(matches!(
            g.add_call(0, 5, 1.0),
            Err(ModelError::UnknownService { .. })
        ));
        assert!(matches!(
            g.add_call(5, 0, 1.0),
            Err(ModelError::UnknownService { .. })
        ));
    }

    #[test]
    fn invalid_multiplicity_rejected() {
        let mut g = InvocationGraph::new(2);
        assert!(g.add_call(0, 1, 0.0).is_err());
        assert!(g.add_call(0, 1, -1.0).is_err());
        assert!(g.add_call(0, 1, f64::INFINITY).is_err());
    }

    #[test]
    fn duplicate_edge_accumulates() {
        let mut g = InvocationGraph::new(2);
        g.add_call(0, 1, 1.0).unwrap();
        g.add_call(0, 1, 0.5).unwrap();
        assert_eq!(g.calls_from(0), &[(1, 1.5)]);
    }

    #[test]
    fn visit_ratios_chain() {
        let g = InvocationGraph::chain(3);
        assert_eq!(g.visit_ratios(0), vec![1.0, 1.0, 1.0]);
        // Entering at the middle service, the UI is never visited.
        assert_eq!(g.visit_ratios(1), vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn visit_ratios_fan_out() {
        // 0 calls 1 twice and 2 once; 1 calls 2 three times.
        let mut g = InvocationGraph::new(3);
        g.add_call(0, 1, 2.0).unwrap();
        g.add_call(0, 2, 1.0).unwrap();
        g.add_call(1, 2, 3.0).unwrap();
        let r = g.visit_ratios(0);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 2.0);
        // 2 is reached once directly and 2·3 times via 1.
        assert_eq!(r[2], 7.0);
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut g = InvocationGraph::new(4);
        g.add_call(0, 1, 1.0).unwrap();
        g.add_call(0, 2, 1.0).unwrap();
        g.add_call(1, 3, 1.0).unwrap();
        g.add_call(2, 3, 1.0).unwrap();
        assert!(g.topological_order().is_some());
        assert_eq!(g.visit_ratios(0)[3], 2.0);
    }
}
