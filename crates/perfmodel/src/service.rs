//! Per-service static specification.

use crate::error::ModelError;

/// Static description of one micro-service in the application model.
///
/// Carries the paper's per-service constraints: the nominal service demand
/// (which the demand estimator refines at runtime), and the minimum and
/// maximum allowed instance counts that bound every scaling decision
/// (Algorithm 1, lines 10 and 14).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    name: String,
    nominal_demand: f64,
    min_instances: u32,
    max_instances: u32,
    initial_instances: u32,
}

impl ServiceSpec {
    /// Creates a validated service spec.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidField`] when the demand is not
    /// positive, `min_instances` is zero, the bounds are inverted, or the
    /// initial count lies outside the bounds.
    pub fn new(
        name: impl Into<String>,
        nominal_demand: f64,
        min_instances: u32,
        max_instances: u32,
        initial_instances: u32,
    ) -> Result<Self, ModelError> {
        if !(nominal_demand > 0.0) || !nominal_demand.is_finite() {
            return Err(ModelError::InvalidField {
                field: "nominal_demand",
                value: nominal_demand,
            });
        }
        if min_instances == 0 {
            return Err(ModelError::InvalidField {
                field: "min_instances",
                value: 0.0,
            });
        }
        if max_instances < min_instances {
            return Err(ModelError::InvalidField {
                field: "max_instances",
                value: f64::from(max_instances),
            });
        }
        if !(min_instances..=max_instances).contains(&initial_instances) {
            return Err(ModelError::InvalidField {
                field: "initial_instances",
                value: f64::from(initial_instances),
            });
        }
        Ok(ServiceSpec {
            name: name.into(),
            nominal_demand,
            min_instances,
            max_instances,
            initial_instances,
        })
    }

    /// The service name (unique within a model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nominal (design-time) service demand in seconds per request.
    pub fn nominal_demand(&self) -> f64 {
        self.nominal_demand
    }

    /// The minimum allowed instance count (≥ 1).
    pub fn min_instances(&self) -> u32 {
        self.min_instances
    }

    /// The maximum allowed instance count.
    pub fn max_instances(&self) -> u32 {
        self.max_instances
    }

    /// The instance count the service starts with.
    pub fn initial_instances(&self) -> u32 {
        self.initial_instances
    }

    /// Clamps an instance count into `[min_instances, max_instances]`.
    pub fn clamp_instances(&self, n: u32) -> u32 {
        n.clamp(self.min_instances, self.max_instances)
    }

    /// Saturation throughput of `n` instances at the nominal demand, in
    /// requests per second.
    pub fn capacity(&self, n: u32) -> f64 {
        f64::from(n) / self.nominal_demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_spec() {
        let s = ServiceSpec::new("ui", 0.059, 1, 120, 2).unwrap();
        assert_eq!(s.name(), "ui");
        assert_eq!(s.nominal_demand(), 0.059);
        assert_eq!(s.min_instances(), 1);
        assert_eq!(s.max_instances(), 120);
        assert_eq!(s.initial_instances(), 2);
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(ServiceSpec::new("s", 0.0, 1, 10, 1).is_err());
        assert!(ServiceSpec::new("s", -0.1, 1, 10, 1).is_err());
        assert!(ServiceSpec::new("s", f64::NAN, 1, 10, 1).is_err());
        assert!(ServiceSpec::new("s", 0.1, 0, 10, 1).is_err());
        assert!(ServiceSpec::new("s", 0.1, 5, 4, 5).is_err());
        assert!(ServiceSpec::new("s", 0.1, 2, 10, 1).is_err());
        assert!(ServiceSpec::new("s", 0.1, 2, 10, 11).is_err());
    }

    #[test]
    fn clamp_respects_bounds() {
        let s = ServiceSpec::new("s", 0.1, 2, 10, 2).unwrap();
        assert_eq!(s.clamp_instances(0), 2);
        assert_eq!(s.clamp_instances(5), 5);
        assert_eq!(s.clamp_instances(99), 10);
    }

    #[test]
    fn capacity_scales_linearly() {
        let s = ServiceSpec::new("s", 0.1, 1, 100, 1).unwrap();
        assert!((s.capacity(1) - 10.0).abs() < 1e-12);
        assert!((s.capacity(10) - 100.0).abs() < 1e-12);
    }
}
