//! The complete application model: services + invocation graph + entry.

use crate::arena::ModelArena;
use crate::error::ModelError;
use crate::graph::InvocationGraph;
use crate::service::ServiceSpec;

/// The descriptive application model Chamulteon operates on — the stand-in
/// for a DML instance.
///
/// Construct with [`ApplicationModelBuilder`](crate::ApplicationModelBuilder)
/// or deserialize from JSON via [`ApplicationModel::from_json`].
///
/// Validation compiles the model into a [`ModelArena`] — precomputed
/// canonical topological order, CSR edge arrays, cached visit ratios and a
/// stage partition — so every hot-path walk (propagation, sizing,
/// backpressure) is allocation-free and never re-sorts the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationModel {
    services: Vec<ServiceSpec>,
    graph: InvocationGraph,
    entry: usize,
    arena: ModelArena,
}

impl ApplicationModel {
    /// Assembles and validates a model. Prefer the builder for ergonomic
    /// construction by name.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Empty`] for zero services,
    /// [`ModelError::DuplicateService`] for repeated names,
    /// [`ModelError::UnknownService`] when the entry index or the graph
    /// size does not match, and [`ModelError::CyclicInvocation`] for a
    /// cyclic graph.
    pub fn new(
        services: Vec<ServiceSpec>,
        graph: InvocationGraph,
        entry: usize,
    ) -> Result<Self, ModelError> {
        if services.is_empty() {
            return Err(ModelError::Empty);
        }
        // Sort-based duplicate detection: O(n log n) on index permutations
        // instead of the former all-pairs scan, which dominated validation
        // time at a thousand services.
        let mut by_name: Vec<usize> = (0..services.len()).collect();
        by_name.sort_unstable_by(|&a, &b| services[a].name().cmp(services[b].name()));
        for pair in by_name.windows(2) {
            if services[pair[0]].name() == services[pair[1]].name() {
                return Err(ModelError::DuplicateService {
                    name: services[pair[0]].name().to_owned(),
                });
            }
        }
        if entry >= services.len() {
            return Err(ModelError::UnknownService {
                name: format!("#{entry}"),
            });
        }
        if graph.service_count() != services.len() {
            return Err(ModelError::UnknownService {
                name: format!("graph size {}", graph.service_count()),
            });
        }
        let Some(arena) = ModelArena::compile(&services, &graph, entry) else {
            // The size/entry checks above passed, so the only way compile
            // can fail is a cyclic graph.
            return Err(ModelError::CyclicInvocation);
        };
        Ok(ApplicationModel {
            services,
            graph,
            entry,
            arena,
        })
    }

    /// The paper's benchmark application (§IV-B): a chain of a UI service
    /// (0.059 s), a validation service (0.1 s) and a data service (0.04 s),
    /// each allowed 1–200 instances and starting at 1.
    #[allow(clippy::expect_used)] // constants in try_paper_benchmark are statically valid
    pub fn paper_benchmark() -> Self {
        // audit:allow(panic-freedom): constants below are statically valid
        Self::try_paper_benchmark().expect("benchmark model is valid")
    }

    /// Fallible construction of the benchmark model, kept separate so the
    /// public constructor carries the only (statically unreachable) panic.
    fn try_paper_benchmark() -> Result<Self, ModelError> {
        let services = vec![
            ServiceSpec::new("ui", 0.059, 1, 200, 1)?,
            ServiceSpec::new("validation", 0.1, 1, 200, 1)?,
            ServiceSpec::new("data", 0.04, 1, 200, 1)?,
        ];
        let graph = InvocationGraph::chain(3);
        ApplicationModel::new(services, graph, 0)
    }

    /// The services in index order.
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// The service at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn service(&self, index: usize) -> &ServiceSpec {
        &self.services[index]
    }

    /// Index of the service with the given name.
    pub fn service_index(&self, name: &str) -> Option<usize> {
        self.services.iter().position(|s| s.name() == name)
    }

    /// The invocation graph.
    pub fn graph(&self) -> &InvocationGraph {
        &self.graph
    }

    /// The compiled arena form of this model (precomputed topological
    /// order, CSR edges, cached visit ratios, stage partition).
    pub fn arena(&self) -> &ModelArena {
        &self.arena
    }

    /// Index of the user-facing (entry) service.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Visit ratios per external request (see
    /// [`InvocationGraph::visit_ratios`]) — served from the arena's cache,
    /// no recomputation.
    pub fn visit_ratios(&self) -> Vec<f64> {
        self.arena.visit_ratios().to_vec()
    }

    /// Propagates an external arrival rate through the invocation graph
    /// with capacity throttling — the paper's `estimateArrivals`
    /// (Algorithm 1, line 5) generalized to DAGs.
    ///
    /// `instances[i]` and `demands[i]` describe the current deployment of
    /// service `i`. A service that receives more than it can complete
    /// (`n/D` req/s) forwards only its saturation throughput downstream —
    /// this is exactly the mechanism behind bottleneck shifting.
    ///
    /// Returns the arrival rate *offered to* each service (which may exceed
    /// its capacity). Slices shorter than the service count are treated as
    /// missing data and the nominal demand / initial instances are used.
    pub fn propagate_arrivals(
        &self,
        entry_rate: f64,
        instances: &[u32],
        demands: &[f64],
    ) -> Vec<f64> {
        let mut offered = Vec::new();
        self.arena
            .propagate_arrivals_into(entry_rate, instances, demands, &mut offered);
        offered
    }

    /// Allocation-free variant of
    /// [`propagate_arrivals`](ApplicationModel::propagate_arrivals): writes
    /// the offered rates into a caller-owned buffer (cleared and resized to
    /// the service count). Bit-identical results; use this in per-cycle hot
    /// loops.
    pub fn propagate_arrivals_into(
        &self,
        entry_rate: f64,
        instances: &[u32],
        demands: &[f64],
        offered: &mut Vec<f64>,
    ) {
        self.arena
            .propagate_arrivals_into(entry_rate, instances, demands, offered);
    }

    /// Serializes the model to pretty JSON — the on-disk format standing in
    /// for a DML instance file.
    pub fn to_json(&self) -> String {
        crate::json::encode_model(self)
    }

    /// Loads a model from its JSON representation and re-validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] for malformed JSON and any validation
    /// error of [`ApplicationModel::new`] for a structurally invalid model —
    /// decoding rebuilds the model through the validating constructors, so
    /// an inconsistent document is never materialized.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        crate::json::decode_model(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_benchmark_shape() {
        let m = ApplicationModel::paper_benchmark();
        assert_eq!(m.service_count(), 3);
        assert_eq!(m.entry(), 0);
        assert_eq!(m.service(0).name(), "ui");
        assert_eq!(m.service_index("validation"), Some(1));
        assert_eq!(m.service_index("nope"), None);
        assert_eq!(m.visit_ratios(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn validation_catches_duplicates_and_bad_entry() {
        let dup = vec![
            ServiceSpec::new("a", 0.1, 1, 10, 1).unwrap(),
            ServiceSpec::new("a", 0.1, 1, 10, 1).unwrap(),
        ];
        assert!(matches!(
            ApplicationModel::new(dup, InvocationGraph::chain(2), 0),
            Err(ModelError::DuplicateService { .. })
        ));

        let one = vec![ServiceSpec::new("a", 0.1, 1, 10, 1).unwrap()];
        assert!(matches!(
            ApplicationModel::new(one.clone(), InvocationGraph::new(1), 5),
            Err(ModelError::UnknownService { .. })
        ));
        assert!(matches!(
            ApplicationModel::new(one, InvocationGraph::new(2), 0),
            Err(ModelError::UnknownService { .. })
        ));
        assert!(matches!(
            ApplicationModel::new(vec![], InvocationGraph::new(0), 0),
            Err(ModelError::Empty)
        ));
    }

    #[test]
    fn propagation_without_overload_is_identity_on_chain() {
        let m = ApplicationModel::paper_benchmark();
        let rates = m.propagate_arrivals(50.0, &[10, 10, 10], &[0.059, 0.1, 0.04]);
        assert_eq!(rates, vec![50.0, 50.0, 50.0]);
    }

    #[test]
    fn propagation_throttles_at_bottleneck() {
        let m = ApplicationModel::paper_benchmark();
        // Validation capacity: 5 / 0.1 = 50 req/s.
        let rates = m.propagate_arrivals(100.0, &[20, 5, 10], &[0.059, 0.1, 0.04]);
        assert_eq!(rates[0], 100.0);
        // UI capacity 20/0.059 = 339: passes everything.
        assert!((rates[1] - 100.0).abs() < 1e-9);
        // Data service only sees what validation completes.
        assert!((rates[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn propagation_cascades_bottlenecks() {
        let m = ApplicationModel::paper_benchmark();
        // UI capacity 1/0.059 ≈ 16.9 is the first bottleneck.
        let rates = m.propagate_arrivals(100.0, &[1, 1, 1], &[0.059, 0.1, 0.04]);
        assert_eq!(rates[0], 100.0);
        assert!((rates[1] - 1.0 / 0.059).abs() < 1e-9);
        // Validation capacity 10 < incoming 16.9.
        assert!((rates[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn propagation_uses_nominal_fallbacks() {
        let m = ApplicationModel::paper_benchmark();
        // Missing slices: initial instances (1 each) and nominal demands.
        let rates = m.propagate_arrivals(100.0, &[], &[]);
        assert!((rates[1] - 1.0 / 0.059).abs() < 1e-9);
        // Invalid demand entries also fall back.
        let rates2 = m.propagate_arrivals(100.0, &[1, 1, 1], &[f64::NAN, -1.0, 0.0]);
        assert_eq!(rates, rates2);
    }

    #[test]
    fn propagation_negative_rate_clamped() {
        let m = ApplicationModel::paper_benchmark();
        let rates = m.propagate_arrivals(-5.0, &[1, 1, 1], &[0.059, 0.1, 0.04]);
        assert_eq!(rates, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn json_round_trip() {
        let m = ApplicationModel::paper_benchmark();
        let json = m.to_json();
        let back = ApplicationModel::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn json_parse_error_reported() {
        assert!(matches!(
            ApplicationModel::from_json("{not json"),
            Err(ModelError::Parse { .. })
        ));
    }

    #[test]
    fn json_revalidates_structure() {
        // A hand-crafted JSON with an out-of-range entry must be rejected
        // even though it deserializes.
        let m = ApplicationModel::paper_benchmark();
        let json = m.to_json().replace("\"entry\": 0", "\"entry\": 9");
        assert!(ApplicationModel::from_json(&json).is_err());
    }
}
