//! Ergonomic, name-based model construction.

use crate::error::ModelError;
use crate::graph::InvocationGraph;
use crate::model::ApplicationModel;
use crate::service::ServiceSpec;

/// Non-consuming builder for [`ApplicationModel`].
///
/// Services are referenced by name; validation happens at
/// [`build`](ApplicationModelBuilder::build).
///
/// # Examples
///
/// ```
/// use chamulteon_perfmodel::ApplicationModelBuilder;
///
/// let model = ApplicationModelBuilder::new()
///     .service("ui", 0.059, 1, 120, 1)
///     .service("validation", 0.1, 1, 120, 1)
///     .service("data", 0.04, 1, 120, 1)
///     .call("ui", "validation", 1.0)
///     .call("validation", "data", 1.0)
///     .entry("ui")
///     .build()?;
/// assert_eq!(model.service_count(), 3);
/// # Ok::<(), chamulteon_perfmodel::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ApplicationModelBuilder {
    services: Vec<(String, f64, u32, u32, u32)>,
    calls: Vec<(String, String, f64)>,
    entry: Option<String>,
}

impl ApplicationModelBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ApplicationModelBuilder::default()
    }

    /// Adds a service with its nominal demand (seconds/request) and
    /// instance bounds.
    pub fn service(
        mut self,
        name: impl Into<String>,
        nominal_demand: f64,
        min_instances: u32,
        max_instances: u32,
        initial_instances: u32,
    ) -> Self {
        self.services.push((
            name.into(),
            nominal_demand,
            min_instances,
            max_instances,
            initial_instances,
        ));
        self
    }

    /// Declares that `from` calls `to` with the given multiplicity per
    /// request.
    pub fn call(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        multiplicity: f64,
    ) -> Self {
        self.calls.push((from.into(), to.into(), multiplicity));
        self
    }

    /// Declares the user-facing entry service. Defaults to the first
    /// declared service.
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entry = Some(name.into());
        self
    }

    /// Validates and assembles the model.
    ///
    /// # Errors
    ///
    /// Propagates all validation errors of [`ServiceSpec::new`],
    /// [`InvocationGraph::from_edges`] and [`ApplicationModel::new`], plus
    /// [`ModelError::UnknownService`] for call or entry names that were
    /// never declared.
    pub fn build(self) -> Result<ApplicationModel, ModelError> {
        if self.services.is_empty() {
            return Err(ModelError::Empty);
        }
        let mut specs = Vec::with_capacity(self.services.len());
        for (name, demand, min, max, initial) in &self.services {
            specs.push(ServiceSpec::new(
                name.clone(),
                *demand,
                *min,
                *max,
                *initial,
            )?);
        }
        let index_of = |name: &str| -> Result<usize, ModelError> {
            specs
                .iter()
                .position(|s| s.name() == name)
                .ok_or_else(|| ModelError::UnknownService {
                    name: name.to_owned(),
                })
        };
        let mut edges = Vec::with_capacity(self.calls.len());
        for (from, to, m) in &self.calls {
            edges.push((index_of(from)?, index_of(to)?, *m));
        }
        // Bulk construction: one acyclicity check for the whole edge set
        // instead of per-edge re-validation.
        let graph = InvocationGraph::from_edges(specs.len(), edges)?;
        let entry = match &self.entry {
            Some(name) => index_of(name)?,
            None => 0,
        };
        ApplicationModel::new(specs, graph, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_chain_model() {
        let m = ApplicationModelBuilder::new()
            .service("a", 0.1, 1, 10, 1)
            .service("b", 0.2, 1, 10, 1)
            .call("a", "b", 1.0)
            .entry("a")
            .build()
            .unwrap();
        assert_eq!(m.service_count(), 2);
        assert_eq!(m.entry(), 0);
        assert_eq!(m.graph().calls_from(0), &[(1, 1.0)]);
    }

    #[test]
    fn entry_defaults_to_first_service() {
        let m = ApplicationModelBuilder::new()
            .service("a", 0.1, 1, 10, 1)
            .build()
            .unwrap();
        assert_eq!(m.entry(), 0);
    }

    #[test]
    fn unknown_names_rejected() {
        let err = ApplicationModelBuilder::new()
            .service("a", 0.1, 1, 10, 1)
            .call("a", "ghost", 1.0)
            .build();
        assert!(matches!(err, Err(ModelError::UnknownService { name }) if name == "ghost"));

        let err = ApplicationModelBuilder::new()
            .service("a", 0.1, 1, 10, 1)
            .entry("ghost")
            .build();
        assert!(matches!(err, Err(ModelError::UnknownService { .. })));
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(matches!(
            ApplicationModelBuilder::new().build(),
            Err(ModelError::Empty)
        ));
    }

    #[test]
    fn cycle_rejected_at_build() {
        let err = ApplicationModelBuilder::new()
            .service("a", 0.1, 1, 10, 1)
            .service("b", 0.1, 1, 10, 1)
            .call("a", "b", 1.0)
            .call("b", "a", 1.0)
            .build();
        assert!(matches!(err, Err(ModelError::CyclicInvocation)));
    }

    #[test]
    fn invalid_service_spec_rejected_at_build() {
        let err = ApplicationModelBuilder::new()
            .service("a", -0.1, 1, 10, 1)
            .build();
        assert!(matches!(err, Err(ModelError::InvalidField { .. })));
    }
}
