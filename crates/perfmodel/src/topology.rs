//! Synthetic topology generators for graph-scale evaluation.
//!
//! The paper evaluates Chamulteon on a 3-tier chain; production
//! applications are DAGs of hundreds to thousands of services. These
//! generators produce the four structural families the graph-scale
//! benchmark and the conformance oracle sweep:
//!
//! * **chain** — the paper's shape stretched to `n` tiers,
//! * **fan** — a shallow root fanning out to independent leaves,
//! * **diamond** — repeated branch/join blocks (the bottleneck-shifting
//!   stressor),
//! * **scale-free** — preferential attachment, the long-tailed in-degree
//!   profile of real microservice traces.
//!
//! Every generated edge satisfies `from < to` (the graphs are
//! *index-topological*), so the canonical topological order is exactly
//! `0, 1, …, n−1` and the brute-force conformance oracle's index-order
//! walk agrees bit-for-bit with the optimized paths.
//!
//! Generation is fully deterministic from `(family, n, seed)` via an
//! internal splitmix64 stream — no external randomness, no global state.

use crate::error::ModelError;
use crate::graph::InvocationGraph;
use crate::model::ApplicationModel;
use crate::service::ServiceSpec;

/// The structural families the generators cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyFamily {
    /// Linear chain `0 → 1 → … → n−1`, multiplicity 1 — the paper's shape.
    Chain,
    /// Service 0 calls every other service directly (width = n−1).
    Fan,
    /// Repeated 4-node branch/join diamonds chained end to end.
    Diamond,
    /// Preferential attachment: each new service is called by 1–3 earlier
    /// services chosen with probability proportional to degree + 1.
    ScaleFree,
}

impl TopologyFamily {
    /// All families, in a fixed order (for sweeps).
    pub const ALL: [TopologyFamily; 4] = [
        TopologyFamily::Chain,
        TopologyFamily::Fan,
        TopologyFamily::Diamond,
        TopologyFamily::ScaleFree,
    ];

    /// Stable lowercase name, used in benchmark reports and case labels.
    pub fn name(self) -> &'static str {
        match self {
            TopologyFamily::Chain => "chain",
            TopologyFamily::Fan => "fan",
            TopologyFamily::Diamond => "diamond",
            TopologyFamily::ScaleFree => "scale_free",
        }
    }
}

/// Deterministic splitmix64 stream — the same tiny generator the sim crate
/// uses for fault rolls; kept private so perfmodel stays dependency-free.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform pick in `0..len` (`len` must be non-zero).
    fn pick(&mut self, len: usize) -> usize {
        let len64 = u64::try_from(len).unwrap_or(u64::MAX).max(1);
        usize::try_from(self.next_u64() % len64).unwrap_or(0)
    }
}

/// Call multiplicities drawn for non-chain edges. All values are ≤ 1.0 so
/// visit ratios stay bounded on deep or high-in-degree graphs (a palette
/// above 1 would overflow to `inf` within a few hundred tiers).
const MULTIPLICITY_PALETTE: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Service-demand palette (seconds). Deliberately small — about 8 classes —
/// so large graphs repeat (rate, demand) pairs and capacity-solve
/// deduplication has something to merge, mirroring how real fleets share a
/// handful of service archetypes.
const DEMAND_PALETTE: [f64; 8] = [0.02, 0.04, 0.059, 0.08, 0.1, 0.15, 0.2, 0.25];

/// Generates the edge list of `family` over `n` services.
///
/// Every edge satisfies `from < to`; the list is valid input for
/// [`InvocationGraph::from_edges`]. `n == 0` or `n == 1` yields no edges.
pub fn edges(family: TopologyFamily, n: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = SplitMix64::new(seed ^ 0xC0A1_E5CA_1E00_0001_u64.rotate_left(17));
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    match family {
        TopologyFamily::Chain => {
            for i in 1..n {
                out.push((i - 1, i, 1.0));
            }
        }
        TopologyFamily::Fan => {
            for i in 1..n {
                let m = MULTIPLICITY_PALETTE[rng.pick(MULTIPLICITY_PALETTE.len())];
                out.push((0, i, m));
            }
        }
        TopologyFamily::Diamond => {
            // Blocks of entry → {left, right} → join, chained: the join of
            // one block is the entry of the next. The fork splits requests
            // evenly (0.5/0.5, conditional control flow) and the join sees
            // both halves, so each block conserves the offered rate —
            // chaining hundreds of blocks neither inflates nor underflows
            // the deep-node rates. A tail shorter than a full block
            // degrades to a chain.
            let mut head = 0usize;
            while head + 3 < n {
                out.push((head, head + 1, 0.5));
                out.push((head, head + 2, 0.5));
                out.push((head + 1, head + 3, 1.0));
                out.push((head + 2, head + 3, 1.0));
                head += 3;
            }
            for i in (head + 1)..n {
                out.push((i - 1, i, 1.0));
            }
        }
        TopologyFamily::ScaleFree => {
            // Preferential attachment: service i is called by 1–3 earlier
            // services chosen with probability ∝ degree + 1. Edges always
            // point old → new, so the graph is index-topological.
            let mut degree = vec![0usize; n];
            for i in 1..n {
                let parents = 1 + rng.pick(3.min(i));
                let mut chosen: Vec<usize> = Vec::with_capacity(parents);
                while chosen.len() < parents {
                    let total: usize = degree[..i].iter().map(|d| d + 1).sum();
                    let mut ticket = rng.pick(total);
                    let mut parent = 0usize;
                    for (candidate, &d) in degree[..i].iter().enumerate() {
                        let weight = d + 1;
                        if ticket < weight {
                            parent = candidate;
                            break;
                        }
                        ticket -= weight;
                    }
                    if chosen.contains(&parent) {
                        // Collision: fall back to the lowest unchosen index
                        // so the loop always terminates.
                        parent = (0..i).find(|c| !chosen.contains(c)).unwrap_or(parent);
                        if chosen.contains(&parent) {
                            break;
                        }
                    }
                    chosen.push(parent);
                }
                chosen.sort_unstable();
                for parent in chosen {
                    let m = MULTIPLICITY_PALETTE[rng.pick(MULTIPLICITY_PALETTE.len())];
                    out.push((parent, i, m));
                    degree[parent] += 1;
                    degree[i] += 1;
                }
            }
        }
    }
    out
}

/// Generates a complete validated [`ApplicationModel`] of `family` over
/// `n` services: names `s0…s{n−1}`, demands drawn from a small palette,
/// bounds 1–10 000 starting at 1 instance, entry at service 0.
///
/// # Errors
///
/// Returns [`ModelError::Empty`] for `n == 0`; generation itself cannot
/// produce an invalid model for `n ≥ 1`.
pub fn model(family: TopologyFamily, n: usize, seed: u64) -> Result<ApplicationModel, ModelError> {
    let mut rng = SplitMix64::new(seed.rotate_left(32) ^ 0x5EED_5EED_5EED_5EED);
    let mut services = Vec::with_capacity(n);
    for i in 0..n {
        let demand = DEMAND_PALETTE[rng.pick(DEMAND_PALETTE.len())];
        services.push(ServiceSpec::new(format!("s{i}"), demand, 1, 10_000, 1)?);
    }
    let graph = InvocationGraph::from_edges(n, edges(family, n, seed))?;
    ApplicationModel::new(services, graph, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_index_topological_and_deterministic() {
        for family in TopologyFamily::ALL {
            for n in [1usize, 2, 5, 17, 64] {
                let a = edges(family, n, 42);
                let b = edges(family, n, 42);
                assert_eq!(a, b, "{} n={n} not deterministic", family.name());
                for &(from, to, m) in &a {
                    assert!(
                        from < to,
                        "{} edge {from}->{to} not index-topological",
                        family.name()
                    );
                    assert!(m > 0.0 && m <= 1.0);
                }
                let graph = InvocationGraph::from_edges(n, a).expect("acyclic");
                // Index-topological ⇒ canonical order is identity.
                if n > 0 {
                    let order = graph.topological_order().expect("acyclic");
                    let identity: Vec<usize> = (0..n).collect();
                    assert_eq!(order, identity);
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ_for_random_families() {
        let a = edges(TopologyFamily::ScaleFree, 32, 1);
        let b = edges(TopologyFamily::ScaleFree, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn every_service_is_reachable_from_entry() {
        for family in TopologyFamily::ALL {
            let m = model(family, 40, 7).expect("valid model");
            let ratios = m.visit_ratios();
            for (i, r) in ratios.iter().enumerate() {
                assert!(
                    r.is_finite() && *r > 0.0,
                    "{} service {i} unreachable or unbounded (ratio {r})",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn deep_graphs_keep_finite_ratios() {
        for family in TopologyFamily::ALL {
            let m = model(family, 1000, 3).expect("valid model");
            assert!(m.visit_ratios().iter().all(|r| r.is_finite()));
        }
    }

    #[test]
    fn model_rejects_zero_services() {
        assert!(model(TopologyFamily::Chain, 0, 1).is_err());
    }

    #[test]
    fn family_names_are_stable() {
        let names: Vec<&str> = TopologyFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["chain", "fan", "diamond", "scale_free"]);
    }
}
