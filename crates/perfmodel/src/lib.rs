//! Descriptive software performance model for the Chamulteon reproduction.
//!
//! Chamulteon keeps "an instance of a descriptive performance model of the
//! dynamically scaled application based on the Descartes Modeling Language
//! (DML)" (§III-A). The model carries exactly the structural knowledge the
//! controller needs:
//!
//! * the **services** with their instance bounds ([`ServiceSpec`]),
//! * the **invocation graph** — which service calls which, how many times
//!   per request ([`InvocationGraph`]),
//! * the **entry (user-facing) service** whose arrival rate is the only one
//!   monitored and forecast,
//! * **arrival-rate propagation** along the graph with capacity throttling
//!   (`estimateArrivals` of Algorithm 1): an overloaded upstream service
//!   forwards at most its saturation throughput.
//!
//! Models are plain data (JSON round-trippable), built with
//! [`ApplicationModelBuilder`] or loaded from JSON — the stand-in for the
//! paper's externally provided DML instance.
//!
//! # Example
//!
//! The paper's three-service benchmark application:
//!
//! ```
//! use chamulteon_perfmodel::ApplicationModel;
//!
//! let model = ApplicationModel::paper_benchmark();
//! assert_eq!(model.services().len(), 3);
//! assert_eq!(model.entry(), 0);
//! // Arrival propagation with ample capacity passes rates through 1:1.
//! let rates = model.propagate_arrivals(100.0, &[20, 20, 20], &[0.059, 0.1, 0.04]);
//! assert_eq!(rates, vec![100.0, 100.0, 100.0]);
//! ```

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod error;
pub mod graph;
mod json;
pub mod model;
pub mod service;
pub mod topology;

pub use arena::ModelArena;
pub use builder::ApplicationModelBuilder;
pub use error::ModelError;
pub use graph::InvocationGraph;
pub use model::ApplicationModel;
pub use service::ServiceSpec;
pub use topology::TopologyFamily;
