//! Minimal JSON encode/decode for [`ApplicationModel`].
//!
//! The build environment resolves no third-party crates, so the DML-instance
//! stand-in format is read and written by this small, std-only module
//! instead of serde. The grammar is full JSON; the document schema is
//! exactly what [`encode_model`] emits:
//!
//! ```json
//! {
//!   "services": [ { "name", "nominal_demand", "min_instances",
//!                   "max_instances", "initial_instances" }, … ],
//!   "graph": { "service_count": N, "edges": [[[to, multiplicity], …], …] },
//!   "entry": 0
//! }
//! ```
//!
//! Decoding rebuilds the model through the validating constructors
//! ([`ServiceSpec::new`], [`InvocationGraph::add_call`],
//! [`ApplicationModel::new`]), so a well-formed document describing an
//! inconsistent model is rejected, never materialized.

use crate::error::ModelError;
use crate::graph::InvocationGraph;
use crate::model::ApplicationModel;
use crate::service::ServiceSpec;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // `write!` to a String cannot fail; ignore the Ok.
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // Rust's `Display` for f64 is shortest-round-trip, so `parse` recovers
    // the exact value. Model validation guarantees finiteness.
    let _ = write!(out, "{v}");
}

/// Serializes a model to pretty JSON (2-space indent, `": "` separators).
pub(crate) fn encode_model(model: &ApplicationModel) -> String {
    let mut out = String::with_capacity(256 * model.service_count().max(1));
    out.push_str("{\n  \"services\": [\n");
    let services = model.services();
    for (i, s) in services.iter().enumerate() {
        out.push_str("    {\n      \"name\": ");
        push_escaped(&mut out, s.name());
        out.push_str(",\n      \"nominal_demand\": ");
        push_f64(&mut out, s.nominal_demand());
        let _ = write!(
            out,
            ",\n      \"min_instances\": {},\n      \"max_instances\": {},\n      \"initial_instances\": {}\n    }}",
            s.min_instances(),
            s.max_instances(),
            s.initial_instances(),
        );
        out.push_str(if i + 1 < services.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"graph\": {{\n    \"service_count\": {},\n    \"edges\": [",
        model.service_count()
    );
    for from in 0..model.service_count() {
        if from > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (j, &(to, mult)) in model.graph().calls_from(from).iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{to}, ");
            push_f64(&mut out, mult);
            out.push(']');
        }
        out.push(']');
    }
    let _ = write!(out, "]\n  }},\n  \"entry\": {}\n}}", model.entry());
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(b))))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, String> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u16::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u16::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u16::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let scalar = 0x10000
                                    + (u32::from(hi) - 0xD800) * 0x400
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(scalar)
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // parse_hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar (input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    } else {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("invalid number")),
        }
    }
}

fn parse_document(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

fn parse_error(message: impl Into<String>) -> ModelError {
    ModelError::Parse {
        message: message.into(),
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, ModelError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| parse_error(format!("missing field `{key}`")))
}

fn as_obj<'a>(v: &'a Json, what: &str) -> Result<&'a [(String, Json)], ModelError> {
    match v {
        Json::Obj(fields) => Ok(fields),
        _ => Err(parse_error(format!("`{what}` must be an object"))),
    }
}

fn as_arr<'a>(v: &'a Json, what: &str) -> Result<&'a [Json], ModelError> {
    match v {
        Json::Arr(items) => Ok(items),
        _ => Err(parse_error(format!("`{what}` must be an array"))),
    }
}

fn as_f64(v: &Json, what: &str) -> Result<f64, ModelError> {
    match v {
        Json::Num(n) => Ok(*n),
        _ => Err(parse_error(format!("`{what}` must be a number"))),
    }
}

fn as_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, ModelError> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(parse_error(format!("`{what}` must be a string"))),
    }
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // range-checked above the cast
fn as_usize(v: &Json, what: &str) -> Result<usize, ModelError> {
    let n = as_f64(v, what)?;
    if n.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&n) {
        return Err(parse_error(format!(
            "`{what}` must be a small non-negative integer"
        )));
    }
    // In [0, u32::MAX] and integral by the check above.
    Ok(n as usize)
}

#[allow(clippy::cast_possible_truncation)] // bounded by u32::MAX in as_usize
fn as_u32(v: &Json, what: &str) -> Result<u32, ModelError> {
    Ok(as_usize(v, what)? as u32)
}

/// Parses and re-validates a model from its JSON representation.
pub(crate) fn decode_model(text: &str) -> Result<ApplicationModel, ModelError> {
    let doc = parse_document(text).map_err(parse_error)?;
    let root = as_obj(&doc, "document root")?;

    let mut services = Vec::new();
    for (i, item) in as_arr(get(root, "services")?, "services")?
        .iter()
        .enumerate()
    {
        let fields = as_obj(item, "service")?;
        let spec = ServiceSpec::new(
            as_str(get(fields, "name")?, "name")?,
            as_f64(get(fields, "nominal_demand")?, "nominal_demand")?,
            as_u32(get(fields, "min_instances")?, "min_instances")?,
            as_u32(get(fields, "max_instances")?, "max_instances")?,
            as_u32(get(fields, "initial_instances")?, "initial_instances")?,
        )
        .map_err(|e| parse_error(format!("service #{i}: {e}")))?;
        services.push(spec);
    }

    let graph_fields = as_obj(get(root, "graph")?, "graph")?;
    let service_count = as_usize(get(graph_fields, "service_count")?, "service_count")?;
    let edges = as_arr(get(graph_fields, "edges")?, "edges")?;
    if edges.len() != service_count {
        return Err(parse_error("`edges` length must equal `service_count`"));
    }
    let mut edge_list = Vec::new();
    for (from, outs) in edges.iter().enumerate() {
        for edge in as_arr(outs, "edges[from]")? {
            let pair = as_arr(edge, "edge")?;
            if pair.len() != 2 {
                return Err(parse_error("edge must be a `[to, multiplicity]` pair"));
            }
            let to = as_usize(&pair[0], "edge target")?;
            let mult = as_f64(&pair[1], "edge multiplicity")?;
            edge_list.push((from, to, mult));
        }
    }
    // Bulk construction: per-edge field validation plus a single
    // acyclicity check for the whole document.
    let graph = InvocationGraph::from_edges(service_count, edge_list).map_err(|e| match e {
        ModelError::CyclicInvocation => ModelError::CyclicInvocation,
        other => parse_error(format!("graph: {other}")),
    })?;

    let entry = as_usize(get(root, "entry")?, "entry")?;
    // Final structural validation (duplicate names, entry range, acyclicity).
    ApplicationModel::new(services, graph, entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc =
            parse_document(r#" {"a": [1, -2.5e1, "x\né"], "b": {"c": true, "d": null}} "#).unwrap();
        let root = match &doc {
            Json::Obj(f) => f,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(
            get(root, "a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Str("x\né".to_owned()),
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "1e999",
            "nul",
            "{\"a\": 0x1}",
        ] {
            assert!(parse_document(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let doc = parse_document(r#""😀""#).unwrap();
        assert_eq!(doc, Json::Str("😀".to_owned()));
        assert!(parse_document(r#""\ud83d""#).is_err());
    }

    #[test]
    fn escaped_names_round_trip() {
        let spec = ServiceSpec::new("a\"b\\c\nd", 0.1, 1, 5, 1).unwrap();
        let model = ApplicationModel::new(vec![spec], InvocationGraph::new(1), 0).unwrap();
        let back = decode_model(&encode_model(&model)).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn decode_rejects_inconsistent_documents() {
        let model = ApplicationModel::paper_benchmark();
        let json = encode_model(&model);
        // Edge list length disagreeing with service_count.
        let bad = json.replace("\"service_count\": 3", "\"service_count\": 2");
        assert!(decode_model(&bad).is_err());
        // Non-integral instance count.
        let bad = json.replace("\"min_instances\": 1", "\"min_instances\": 1.5");
        assert!(decode_model(&bad).is_err());
    }
}
