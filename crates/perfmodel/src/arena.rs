//! Arena-compiled application model: flat, index-based, allocation-free hot
//! paths for thousand-service graphs.
//!
//! [`ApplicationModel`](crate::ApplicationModel) keeps the validated,
//! JSON-round-trippable description; [`ModelArena`] is its compiled form:
//!
//! * the **canonical topological order** precomputed once (no per-call
//!   Kahn re-sort),
//! * the edge set flattened into **CSR-style arrays** (`edge_offsets` /
//!   `edge_targets` / `edge_multiplicities`) preserving per-caller
//!   insertion order, so every float fold visits edges in exactly the
//!   order the nested-`Vec` graph would,
//! * **visit ratios cached** (the per-node demand-multiplier prefix),
//! * per-service bounds and demands in flat arrays for cache locality,
//! * a **stage partition** of the canonical order into maximal prefixes of
//!   mutually independent services, which is what lets Algorithm 1 size a
//!   whole stage in parallel and still merge deterministically.
//!
//! Everything here is a pure re-indexing of the validated model: compiling
//! never changes a result bit, only where the bytes live.

use crate::graph::InvocationGraph;
use crate::service::ServiceSpec;

/// Compiled, index-based form of a validated application model.
///
/// Built by [`ModelArena::compile`]; owned by
/// [`ApplicationModel`](crate::ApplicationModel) and exposed through
/// [`ApplicationModel::arena`](crate::ApplicationModel::arena).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArena {
    node_count: usize,
    entry: usize,
    /// The canonical (smallest-index-first Kahn) topological order.
    topo: Vec<usize>,
    /// CSR row offsets: edges of caller `i` live at
    /// `edge_offsets[i]..edge_offsets[i + 1]`.
    edge_offsets: Vec<usize>,
    /// Flattened callee indices, per-caller insertion order preserved.
    edge_targets: Vec<usize>,
    /// Call multiplicities parallel to `edge_targets`.
    edge_multiplicities: Vec<f64>,
    /// Stage boundaries into `topo`: stage `s` is
    /// `topo[stage_offsets[s]..stage_offsets[s + 1]]`. Stages are maximal
    /// prefixes of the canonical order in which no service calls another
    /// service of the same stage.
    stage_offsets: Vec<usize>,
    /// Cached visit ratios from the entry (capacity-ignoring call counts
    /// per external request).
    visit_ratios: Vec<f64>,
    nominal_demands: Vec<f64>,
    min_instances: Vec<u32>,
    max_instances: Vec<u32>,
    initial_instances: Vec<u32>,
}

impl ModelArena {
    /// Compiles the validated `(services, graph, entry)` triple into its
    /// arena form. Returns `None` when the inputs are inconsistent (cyclic
    /// graph, size mismatch, entry out of range) — the validating
    /// [`ApplicationModel::new`](crate::ApplicationModel::new) rejects all
    /// of those before ever calling this.
    pub fn compile(
        services: &[ServiceSpec],
        graph: &InvocationGraph,
        entry: usize,
    ) -> Option<Self> {
        let n = services.len();
        if graph.service_count() != n || entry >= n {
            return None;
        }
        let topo = graph.topological_order()?;

        // CSR flattening, per-caller insertion order preserved.
        let mut edge_offsets = Vec::with_capacity(n + 1);
        let mut edge_targets = Vec::new();
        let mut edge_multiplicities = Vec::new();
        edge_offsets.push(0);
        for from in 0..n {
            for &(to, m) in graph.calls_from(from) {
                edge_targets.push(to);
                edge_multiplicities.push(m);
            }
            edge_offsets.push(edge_targets.len());
        }

        // Stage partition: walk the canonical order, closing the current
        // stage as soon as a service depends on a member of that stage.
        // `stage_of[p]` is the stage index assigned to predecessor `p`
        // (every predecessor precedes its successor in topological order,
        // so it is always assigned by the time we look).
        let mut stage_of = vec![0usize; n];
        let mut pred_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        for from in 0..n {
            for &(to, _) in graph.calls_from(from) {
                pred_lists[to].push(from);
            }
        }
        let mut stage_offsets = vec![0usize];
        let mut current_stage = 0usize;
        for (position, &node) in topo.iter().enumerate() {
            let conflicts = pred_lists[node]
                .iter()
                .any(|&p| stage_of[p] == current_stage);
            if conflicts {
                stage_offsets.push(position);
                current_stage += 1;
            }
            stage_of[node] = current_stage;
        }
        stage_offsets.push(n);

        // Visit ratios along the canonical order — same fold, same order,
        // same bits as `InvocationGraph::visit_ratios`.
        let mut visit_ratios = vec![0.0; n];
        visit_ratios[entry] = 1.0;
        for &node in &topo {
            let flow = visit_ratios[node];
            if flow == 0.0 {
                continue;
            }
            for e in edge_offsets[node]..edge_offsets[node + 1] {
                visit_ratios[edge_targets[e]] += flow * edge_multiplicities[e];
            }
        }

        let nominal_demands = services.iter().map(ServiceSpec::nominal_demand).collect();
        let min_instances = services.iter().map(ServiceSpec::min_instances).collect();
        let max_instances = services.iter().map(ServiceSpec::max_instances).collect();
        let initial_instances = services
            .iter()
            .map(ServiceSpec::initial_instances)
            .collect();

        Some(ModelArena {
            node_count: n,
            entry,
            topo,
            edge_offsets,
            edge_targets,
            edge_multiplicities,
            stage_offsets,
            visit_ratios,
            nominal_demands,
            min_instances,
            max_instances,
            initial_instances,
        })
    }

    /// Number of services in the compiled model.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Index of the entry (user-facing) service.
    #[inline]
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// The canonical topological order the arena was compiled with.
    #[inline]
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Total number of call edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_targets.len()
    }

    /// Number of stages in the independent-prefix partition.
    #[inline]
    pub fn stage_count(&self) -> usize {
        self.stage_offsets.len().saturating_sub(1)
    }

    /// The service indices of stage `stage` (a slice of the canonical
    /// order). Empty for an out-of-range stage.
    #[inline]
    pub fn stage(&self, stage: usize) -> &[usize] {
        match (
            self.stage_offsets.get(stage),
            self.stage_offsets.get(stage + 1),
        ) {
            (Some(&lo), Some(&hi)) => &self.topo[lo..hi],
            _ => &[],
        }
    }

    /// The outgoing calls of `node` as `(callee, multiplicity)` pairs, in
    /// the same per-caller order as
    /// [`InvocationGraph::calls_from`](crate::InvocationGraph::calls_from).
    #[inline]
    pub fn calls_from(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.edge_offsets.get(node).copied().unwrap_or(0);
        let hi = self.edge_offsets.get(node + 1).copied().unwrap_or(lo);
        self.edge_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.edge_multiplicities[lo..hi].iter().copied())
    }

    /// Cached visit ratios from the entry — bit-identical to
    /// [`InvocationGraph::visit_ratios`](crate::InvocationGraph::visit_ratios)
    /// at the entry, without recomputation.
    #[inline]
    pub fn visit_ratios(&self) -> &[f64] {
        &self.visit_ratios
    }

    /// Nominal (profiled) service demand of `node` in seconds.
    #[inline]
    pub fn nominal_demand(&self, node: usize) -> f64 {
        self.nominal_demands.get(node).copied().unwrap_or(f64::NAN)
    }

    /// All nominal service demands, indexed by node. Every entry is
    /// finite and positive ([`ServiceSpec`] validates demands at
    /// construction), so a decision pass with no demand estimates can
    /// borrow this slice directly instead of copying it.
    #[inline]
    pub fn nominal_demands(&self) -> &[f64] {
        &self.nominal_demands
    }

    /// Minimum allowed instances of `node`.
    #[inline]
    pub fn min_instances(&self, node: usize) -> u32 {
        self.min_instances.get(node).copied().unwrap_or(1)
    }

    /// Maximum allowed instances of `node`.
    #[inline]
    pub fn max_instances(&self, node: usize) -> u32 {
        self.max_instances.get(node).copied().unwrap_or(u32::MAX)
    }

    /// Initially deployed instances of `node`.
    #[inline]
    pub fn initial_instances(&self, node: usize) -> u32 {
        self.initial_instances.get(node).copied().unwrap_or(1)
    }

    /// Arrival-rate propagation with capacity throttling, written into a
    /// caller-owned buffer so the per-cycle hot loop allocates nothing.
    ///
    /// Semantics are exactly those of
    /// [`ApplicationModel::propagate_arrivals`](crate::ApplicationModel::propagate_arrivals):
    /// short `instances`/`demands` slices and non-finite or non-positive
    /// demand entries fall back to the spec's initial instances / nominal
    /// demand, the entry rate is clamped at zero, and a service forwards at
    /// most its saturation throughput `n/D`. The walk follows the canonical
    /// topological order, so results are bit-identical to the legacy path.
    ///
    /// `offered` is cleared and resized to the node count; on return
    /// `offered[i]` is the arrival rate *offered to* service `i`.
    pub fn propagate_arrivals_into(
        &self,
        entry_rate: f64,
        instances: &[u32],
        demands: &[f64],
        offered: &mut Vec<f64>,
    ) {
        offered.clear();
        offered.resize(self.node_count, 0.0);
        if self.node_count == 0 {
            return;
        }
        offered[self.entry] = entry_rate.max(0.0);
        for &node in &self.topo {
            let inst = instances
                .get(node)
                .copied()
                .unwrap_or_else(|| self.initial_instances(node));
            let demand = demands
                .get(node)
                .copied()
                .filter(|d| d.is_finite() && *d > 0.0)
                .unwrap_or_else(|| self.nominal_demand(node));
            let capacity = f64::from(inst) / demand;
            let completed = offered[node].min(capacity);
            for e in self.edge_offsets[node]..self.edge_offsets[node + 1] {
                offered[self.edge_targets[e]] += completed * self.edge_multiplicities[e];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApplicationModel;

    fn paper_arena() -> (ApplicationModel, ModelArena) {
        let model = ApplicationModel::paper_benchmark();
        let arena = ModelArena::compile(model.services(), model.graph(), model.entry())
            .expect("benchmark model compiles");
        (model, arena)
    }

    #[test]
    fn compile_rejects_inconsistent_inputs() {
        let model = ApplicationModel::paper_benchmark();
        // Entry out of range.
        assert!(ModelArena::compile(model.services(), model.graph(), 9).is_none());
        // Graph size mismatch.
        assert!(ModelArena::compile(model.services(), &InvocationGraph::new(7), 0).is_none());
    }

    #[test]
    fn csr_preserves_edge_order() {
        let (model, arena) = paper_arena();
        for node in 0..model.service_count() {
            let flat: Vec<(usize, f64)> = arena.calls_from(node).collect();
            assert_eq!(flat.as_slice(), model.graph().calls_from(node));
        }
        assert_eq!(arena.edge_count(), 2);
    }

    #[test]
    fn chain_stages_are_singletons() {
        let (_, arena) = paper_arena();
        assert_eq!(arena.stage_count(), 3);
        assert_eq!(arena.stage(0), &[0]);
        assert_eq!(arena.stage(1), &[1]);
        assert_eq!(arena.stage(2), &[2]);
        assert!(arena.stage(3).is_empty());
    }

    #[test]
    fn diamond_stages_group_independent_services() {
        let graph =
            InvocationGraph::from_edges(4, [(0, 1, 1.0), (0, 2, 0.5), (1, 3, 1.0), (2, 3, 1.0)])
                .expect("diamond is acyclic");
        let services: Vec<_> = (0..4)
            .map(|i| crate::ServiceSpec::new(format!("s{i}"), 0.1, 1, 10, 1).expect("valid"))
            .collect();
        let arena = ModelArena::compile(&services, &graph, 0).expect("compiles");
        assert_eq!(arena.stage_count(), 3);
        assert_eq!(arena.stage(0), &[0]);
        // The two branch services are independent → one shared stage.
        assert_eq!(arena.stage(1), &[1, 2]);
        assert_eq!(arena.stage(2), &[3]);
        // Stages concatenate back to the canonical order.
        let concat: Vec<usize> = (0..arena.stage_count())
            .flat_map(|s| arena.stage(s).iter().copied())
            .collect();
        assert_eq!(concat.as_slice(), arena.topo_order());
    }

    #[test]
    fn visit_ratios_match_graph() {
        let (model, arena) = paper_arena();
        assert_eq!(arena.visit_ratios(), model.visit_ratios().as_slice());
    }

    #[test]
    fn propagation_matches_legacy_bitwise() {
        let (model, arena) = paper_arena();
        let cases: [(f64, &[u32], &[f64]); 4] = [
            (50.0, &[10, 10, 10], &[0.059, 0.1, 0.04]),
            (100.0, &[20, 5, 10], &[0.059, 0.1, 0.04]),
            (100.0, &[], &[]),
            (100.0, &[1, 1, 1], &[f64::NAN, -1.0, 0.0]),
        ];
        let mut buffer = Vec::new();
        for (rate, instances, demands) in cases {
            let legacy = model.propagate_arrivals(rate, instances, demands);
            arena.propagate_arrivals_into(rate, instances, demands, &mut buffer);
            let legacy_bits: Vec<u64> = legacy.iter().map(|v| v.to_bits()).collect();
            let arena_bits: Vec<u64> = buffer.iter().map(|v| v.to_bits()).collect();
            assert_eq!(legacy_bits, arena_bits);
        }
    }

    #[test]
    fn spec_arrays_mirror_services() {
        let (model, arena) = paper_arena();
        for (i, spec) in model.services().iter().enumerate() {
            assert_eq!(
                arena.nominal_demand(i).to_bits(),
                spec.nominal_demand().to_bits()
            );
            assert_eq!(arena.min_instances(i), spec.min_instances());
            assert_eq!(arena.max_instances(i), spec.max_instances());
            assert_eq!(arena.initial_instances(i), spec.initial_instances());
        }
        // Out-of-range accessors fall back instead of panicking.
        assert!(arena.nominal_demand(99).is_nan());
        assert_eq!(arena.min_instances(99), 1);
        assert_eq!(arena.max_instances(99), u32::MAX);
        assert_eq!(arena.initial_instances(99), 1);
    }
}
