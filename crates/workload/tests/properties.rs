//! Property-based tests for the workload crate.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]

use chamulteon_workload::LoadTrace;
use proptest::prelude::*;

proptest! {
    /// Resampling conserves total load mass (`mean_rate × duration`) for
    /// any positive new step — including steps that do not divide the
    /// duration, where the partial final window must keep the tail.
    #[test]
    fn resample_conserves_mass(
        step in 0.5f64..120.0,
        rates in prop::collection::vec(0.0f64..5_000.0, 1..60),
        new_step in 0.5f64..400.0,
    ) {
        let t = LoadTrace::new(step, rates).unwrap();
        let r = t.resample(new_step).unwrap();
        let mass_before = t.mean_rate() * t.duration();
        let mass_after = r.mean_rate() * r.duration();
        let tolerance = 1e-9 * mass_before.max(1.0);
        prop_assert!(
            (mass_after - mass_before).abs() <= tolerance,
            "mass {mass_before} -> {mass_after} (step {step} -> {new_step})"
        );
        // The resampled grid always covers at least the original span.
        prop_assert!(r.duration() >= t.duration() - 1e-9 * t.duration());
        // And overshoots by less than one full window.
        prop_assert!(r.duration() < t.duration() + new_step + 1e-9 * t.duration());
    }

    /// Resampling onto the same step is the identity up to float noise.
    #[test]
    fn resample_identity_on_same_step(
        step in 0.5f64..120.0,
        rates in prop::collection::vec(0.0f64..5_000.0, 1..40),
    ) {
        let t = LoadTrace::new(step, rates).unwrap();
        let r = t.resample(step).unwrap();
        prop_assert_eq!(r.len(), t.len());
        for (a, b) in r.rates().iter().zip(t.rates()) {
            prop_assert!((a - b).abs() < 1e-6 * b.max(1.0));
        }
    }
}
