//! The piecewise-constant load-intensity trace.

use crate::error::WorkloadError;

/// A load-intensity profile: request rates (req/s) sampled on an
/// equidistant grid, interpreted as piecewise constant between samples.
///
/// Supports the paper's two trace transformations — time compression
/// ("accelerate them to last either an hour or six hours") and peak
/// rescaling ("change the scale of peak demand") — plus CSV I/O compatible
/// with the common `timestamp,rate` dump format of real traces.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrace {
    step: f64,
    rates: Vec<f64>,
}

impl LoadTrace {
    /// Creates a trace from rates sampled every `step` seconds, starting at
    /// time 0.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidStep`] for a non-positive step,
    /// [`WorkloadError::Empty`] for no samples, and
    /// [`WorkloadError::InvalidRate`] for negative or non-finite rates.
    pub fn new(step: f64, rates: Vec<f64>) -> Result<Self, WorkloadError> {
        if !(step > 0.0) || !step.is_finite() {
            return Err(WorkloadError::InvalidStep { step });
        }
        if rates.is_empty() {
            return Err(WorkloadError::Empty);
        }
        if let Some(index) = rates.iter().position(|r| !r.is_finite() || *r < 0.0) {
            return Err(WorkloadError::InvalidRate {
                index,
                value: rates[index],
            });
        }
        Ok(LoadTrace { step, rates })
    }

    /// The sampling step in seconds.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The sampled rates in req/s.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration(&self) -> f64 {
        self.step * self.rates.len() as f64
    }

    /// The rate in effect at time `t` (piecewise constant; times past the
    /// end return the last rate, negative times the first).
    pub fn rate_at(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.rates[0];
        }
        let idx = crate::convert::usize_from_f64(t / self.step);
        self.rates[idx.min(self.rates.len() - 1)]
    }

    /// The largest sampled rate.
    pub fn peak_rate(&self) -> f64 {
        self.rates.iter().cloned().fold(0.0, f64::max)
    }

    /// The mean sampled rate.
    pub fn mean_rate(&self) -> f64 {
        self.rates.iter().sum::<f64>() / self.rates.len() as f64
    }

    /// Compresses (or stretches) the trace to the given total duration by
    /// shrinking the step while keeping every sample — the paper's
    /// acceleration of a one-day trace into a 1 h or 6 h experiment.
    ///
    /// Rates are unchanged: acceleration replays the same intensity profile
    /// faster, it does not multiply the load.
    pub fn compress_to(&self, target_duration: f64) -> LoadTrace {
        let target = if target_duration.is_finite() && target_duration > 0.0 {
            target_duration
        } else {
            self.duration()
        };
        LoadTrace {
            step: target / self.rates.len() as f64,
            rates: self.rates.clone(),
        }
    }

    /// Rescales all rates so the peak equals `target_peak` req/s — the
    /// paper's change of "the scale of the demanded resources".
    ///
    /// A zero trace stays zero.
    pub fn scale_to_peak(&self, target_peak: f64) -> LoadTrace {
        let peak = self.peak_rate();
        if peak <= 0.0 || !(target_peak >= 0.0) {
            return self.clone();
        }
        let factor = target_peak / peak;
        LoadTrace {
            step: self.step,
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }

    /// Resamples the trace onto a different step by averaging (when
    /// coarsening) or repeating (when refining) samples.
    ///
    /// When the duration is not an exact multiple of `new_step`, a partial
    /// final window captures the trace tail; its mass is spread over the
    /// full synthetic window, so total load mass (`mean_rate × duration`)
    /// is conserved rather than truncated.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidStep`] for a non-positive step.
    pub fn resample(&self, new_step: f64) -> Result<LoadTrace, WorkloadError> {
        if !(new_step > 0.0) || !new_step.is_finite() {
            return Err(WorkloadError::InvalidStep { step: new_step });
        }
        let duration = self.duration();
        // Ceil so the tail is kept; snap near-integral ratios first so
        // float noise (e.g. 3.0000000000000004) does not fabricate an
        // empty extra window.
        let ratio = duration / new_step;
        let windows = if (ratio - ratio.round()).abs() < 1e-9 {
            ratio.round()
        } else {
            ratio.ceil()
        };
        let count = crate::convert::usize_from_f64(windows).max(1);
        let mut rates = Vec::with_capacity(count);
        for i in 0..count {
            let lo = i as f64 * new_step;
            let hi = (lo + new_step).min(duration);
            // Average the original piecewise-constant function over [lo, hi).
            // The segment index advances monotonically instead of being
            // re-derived from `t`: for non-dyadic steps, `(idx+1)*step / step`
            // can floor back to `idx` and a re-derived index never moves.
            let mut acc = 0.0;
            let mut t = lo;
            let mut idx = crate::convert::usize_from_f64(lo / self.step).min(self.rates.len() - 1);
            while t < hi - 1e-12 {
                let seg_end = ((idx + 1) as f64 * self.step).min(hi);
                if seg_end > t {
                    acc += self.rates[idx] * (seg_end - t);
                    t = seg_end;
                }
                if seg_end >= hi || idx + 1 >= self.rates.len() {
                    break;
                }
                idx += 1;
            }
            // Divide by the full window length (not the clamped span): a
            // partial tail window dilutes its mass over the whole window,
            // which is exactly what conserves total mass.
            rates.push(acc / new_step);
        }
        LoadTrace::new(new_step, rates)
    }

    /// Serializes as `time,rate` CSV lines with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,rate_rps\n");
        for (i, r) in self.rates.iter().enumerate() {
            out.push_str(&format!("{},{}\n", i as f64 * self.step, r));
        }
        out
    }

    /// Parses `time,rate` CSV (header optional). The step is inferred from
    /// the first two timestamps (60 s for a single-line trace).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Parse`] for malformed lines and the
    /// constructor errors for invalid data.
    pub fn from_csv(text: &str) -> Result<Self, WorkloadError> {
        let mut times = Vec::new();
        let mut rates = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let time_part = parts.next().unwrap_or("");
            // A first line whose time column is not numeric is a header.
            if lineno == 0 && time_part.trim().parse::<f64>().is_err() {
                continue;
            }
            let rate_part = parts.next().ok_or(WorkloadError::Parse {
                line: lineno + 1,
                message: "missing rate column".into(),
            })?;
            let time: f64 = time_part.trim().parse().map_err(|e| WorkloadError::Parse {
                line: lineno + 1,
                message: format!("bad time: {e}"),
            })?;
            let rate: f64 = rate_part.trim().parse().map_err(|e| WorkloadError::Parse {
                line: lineno + 1,
                message: format!("bad rate: {e}"),
            })?;
            times.push(time);
            rates.push(rate);
        }
        if rates.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let step = if times.len() >= 2 {
            times[1] - times[0]
        } else {
            60.0
        };
        LoadTrace::new(step, rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rates: Vec<f64>) -> LoadTrace {
        LoadTrace::new(60.0, rates).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(LoadTrace::new(0.0, vec![1.0]).is_err());
        assert!(LoadTrace::new(60.0, vec![]).is_err());
        assert!(matches!(
            LoadTrace::new(60.0, vec![1.0, -2.0]),
            Err(WorkloadError::InvalidRate { index: 1, .. })
        ));
        assert!(LoadTrace::new(60.0, vec![f64::NAN]).is_err());
    }

    #[test]
    fn rate_at_piecewise_constant() {
        let t = trace(vec![10.0, 20.0, 30.0]);
        assert_eq!(t.rate_at(-5.0), 10.0);
        assert_eq!(t.rate_at(0.0), 10.0);
        assert_eq!(t.rate_at(59.9), 10.0);
        assert_eq!(t.rate_at(60.0), 20.0);
        assert_eq!(t.rate_at(179.0), 30.0);
        assert_eq!(t.rate_at(9999.0), 30.0);
    }

    #[test]
    fn summary_statistics() {
        let t = trace(vec![10.0, 20.0, 30.0]);
        assert_eq!(t.peak_rate(), 30.0);
        assert_eq!(t.mean_rate(), 20.0);
        assert_eq!(t.duration(), 180.0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn compression_keeps_rates_shrinks_step() {
        let day = trace(vec![1.0; 1440]); // 24 h at 60 s
        let hour = day.compress_to(3600.0);
        assert_eq!(hour.len(), 1440);
        assert!((hour.step() - 2.5).abs() < 1e-12);
        assert!((hour.duration() - 3600.0).abs() < 1e-9);
        assert_eq!(hour.peak_rate(), 1.0);
    }

    #[test]
    fn compression_invalid_duration_is_identity() {
        let t = trace(vec![1.0, 2.0]);
        assert_eq!(t.compress_to(0.0), t);
        assert_eq!(t.compress_to(f64::NAN), t);
    }

    #[test]
    fn scaling_hits_target_peak() {
        let t = trace(vec![10.0, 50.0, 25.0]);
        let s = t.scale_to_peak(500.0);
        assert!((s.peak_rate() - 500.0).abs() < 1e-9);
        // Shape preserved.
        assert!((s.rates()[0] - 100.0).abs() < 1e-9);
        assert!((s.rates()[2] - 250.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_zero_trace_is_noop() {
        let t = trace(vec![0.0, 0.0]);
        assert_eq!(t.scale_to_peak(100.0), t);
    }

    #[test]
    fn resample_coarsen_averages() {
        let t = trace(vec![10.0, 20.0, 30.0, 40.0]);
        let r = t.resample(120.0).unwrap();
        assert_eq!(r.len(), 2);
        assert!((r.rates()[0] - 15.0).abs() < 1e-9);
        assert!((r.rates()[1] - 35.0).abs() < 1e-9);
    }

    #[test]
    fn resample_refine_repeats() {
        let t = trace(vec![10.0, 20.0]);
        let r = t.resample(30.0).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.rates(), &[10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn resample_preserves_mean_load() {
        let t = trace(vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        let r = t.resample(90.0).unwrap();
        assert!((r.mean_rate() - t.mean_rate()).abs() < 1e-9);
    }

    #[test]
    fn resample_keeps_tail_mass() {
        // 10 s of trace at step 4.9 used to round to 2 windows (9.8 s),
        // dropping the tail. Ceil keeps a partial third window and the
        // total load mass is conserved.
        let t = LoadTrace::new(1.0, vec![5.0; 10]).unwrap();
        let r = t.resample(4.9).unwrap();
        assert_eq!(r.len(), 3);
        let mass_before = t.mean_rate() * t.duration();
        let mass_after = r.mean_rate() * r.duration();
        assert!((mass_after - mass_before).abs() < 1e-9 * mass_before.max(1.0));
    }

    #[test]
    fn resample_near_integral_ratio_has_no_ghost_window() {
        // 3 × 0.1 s resampled at 0.1 s: duration / new_step is 3 up to
        // float noise; the snap must not fabricate a fourth window.
        let t = LoadTrace::new(0.1, vec![1.0, 2.0, 3.0]).unwrap();
        let r = t.resample(0.1).unwrap();
        assert_eq!(r.len(), 3);
        assert!((r.rates()[0] - 1.0).abs() < 1e-9);
        assert!((r.rates()[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn csv_round_trip() {
        let t = trace(vec![10.0, 20.5, 30.0]);
        let csv = t.to_csv();
        let back = LoadTrace::from_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_without_header() {
        let back = LoadTrace::from_csv("0,5\n30,7\n60,9\n").unwrap();
        assert_eq!(back.step(), 30.0);
        assert_eq!(back.rates(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn csv_errors() {
        assert!(matches!(
            LoadTrace::from_csv("time_s,rate_rps\n"),
            Err(WorkloadError::Empty)
        ));
        assert!(matches!(
            LoadTrace::from_csv("0\n"),
            Err(WorkloadError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            LoadTrace::from_csv("0,abc\n"),
            Err(WorkloadError::Parse { .. })
        ));
    }
}
