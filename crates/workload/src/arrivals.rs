//! Realization of a load trace as a Poisson arrival process.

use crate::trace::LoadTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An iterator over arrival timestamps drawn from a non-homogeneous Poisson
/// process whose rate follows a [`LoadTrace`] (piecewise constant).
///
/// Within each trace segment the inter-arrival times are exponential with
/// the segment's rate; segments with rate 0 produce no arrivals. The
/// iterator ends at the trace's duration. Deterministic in its seed.
///
/// # Examples
///
/// ```
/// use chamulteon_workload::{LoadTrace, PoissonArrivals};
///
/// let trace = LoadTrace::new(10.0, vec![100.0, 0.0, 100.0])?;
/// let times: Vec<f64> = PoissonArrivals::new(&trace, 1).collect();
/// // Roughly 2000 arrivals in the two active 10 s segments.
/// assert!(times.len() > 1500 && times.len() < 2500);
/// // No arrivals in the silent middle segment.
/// assert!(times.iter().all(|&t| !(10.0..20.0).contains(&t)));
/// # Ok::<(), chamulteon_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    step: f64,
    rates: Vec<f64>,
    duration: f64,
    now: f64,
    /// Monotone lower bound on the current segment index. Guards against
    /// a float pathology with fractional steps: `(idx + 1) · step / step`
    /// can floor back to `idx`, so deriving the segment from `now` alone
    /// after a jump to the boundary could re-enter the segment just left
    /// and never advance.
    segment: usize,
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates the arrival process for `trace`, seeded deterministically.
    pub fn new(trace: &LoadTrace, seed: u64) -> Self {
        PoissonArrivals {
            step: trace.step(),
            rates: trace.rates().to_vec(),
            duration: trace.duration(),
            now: 0.0,
            segment: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates the arrival process resumed mid-trace: the first arrival is
    /// drawn after `start` (clamped into `[0, duration]`, NaN treated as
    /// `0`) instead of after time zero.
    ///
    /// Because the exponential is memoryless, a process started at `start`
    /// with a fresh seed is distributed exactly like the tail of a process
    /// that ran from zero — this is what lets the hybrid simulation core
    /// re-materialize its arrival stream in O(1) when it leaves the fluid
    /// regime, instead of fast-forwarding through every skipped draw.
    pub fn starting_at(trace: &LoadTrace, seed: u64, start: f64) -> Self {
        let mut arrivals = PoissonArrivals::new(trace, seed);
        arrivals.now = if start.is_nan() {
            0.0
        } else {
            start.clamp(0.0, arrivals.duration)
        };
        arrivals
    }

    /// Samples an exponential inter-arrival gap at `rate` req/s via inverse
    /// transform.
    fn exp_gap(&mut self, rate: f64) -> f64 {
        // 1 − U ∈ (0, 1] avoids ln(0).
        let u: f64 = self.rng.gen();
        -(1.0 - u).ln() / rate
    }

    fn rate_index(&self, t: f64) -> usize {
        crate::convert::usize_from_f64(t / self.step)
            .max(self.segment)
            .min(self.rates.len() - 1)
    }
}

impl Iterator for PoissonArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            if self.now >= self.duration {
                return None;
            }
            let idx = self.rate_index(self.now);
            let rate = self.rates[idx];
            let segment_end = ((idx + 1) as f64 * self.step).min(self.duration);
            if rate <= 0.0 {
                // Skip the silent segment entirely.
                self.now = segment_end;
                self.segment = idx + 1;
                continue;
            }
            let gap = self.exp_gap(rate);
            let candidate = self.now + gap;
            if candidate < segment_end {
                self.now = candidate;
                return Some(candidate);
            }
            // The draw overshot this segment: restart from the boundary.
            // (Memorylessness of the exponential makes this exact.)
            self.now = segment_end;
            self.segment = idx + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(step: f64, rates: Vec<f64>) -> LoadTrace {
        LoadTrace::new(step, rates).unwrap()
    }

    #[test]
    fn deterministic_in_seed() {
        let t = trace(10.0, vec![50.0, 80.0]);
        let a: Vec<f64> = PoissonArrivals::new(&t, 9).collect();
        let b: Vec<f64> = PoissonArrivals::new(&t, 9).collect();
        let c: Vec<f64> = PoissonArrivals::new(&t, 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fractional_steps_always_terminate() {
        // Regression: with a fractional step, `(idx + 1)·step / step` can
        // floor back to `idx`, so a draw that overshot a segment boundary
        // used to re-enter the segment it just left and spin forever.
        // 60/86 400-compressed steps are exactly the shape that triggered
        // it.
        let step = 60.0 * 60.0 / 86_400.0;
        let rates: Vec<f64> = (0..1440).map(|i| 50.0 + (i % 7) as f64 * 40.0).collect();
        let t = trace(step, rates);
        let times: Vec<f64> = PoissonArrivals::new(&t, 3).collect();
        assert!(times.len() > 3000, "{}", times.len());
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|&x| x >= 0.0 && x < t.duration()));
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let t = trace(5.0, vec![200.0, 100.0, 300.0]);
        let times: Vec<f64> = PoissonArrivals::new(&t, 3).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|&x| x >= 0.0 && x < t.duration()));
    }

    #[test]
    fn count_matches_expected_load() {
        // 100 req/s for 100 s => ~10_000 arrivals; Poisson sd = 100.
        let t = trace(100.0, vec![100.0]);
        let count = PoissonArrivals::new(&t, 11).count();
        assert!(
            (9_500..10_500).contains(&count),
            "count {count} far from expectation"
        );
    }

    #[test]
    fn rate_changes_respected() {
        // First half silent, second half busy.
        let t = trace(50.0, vec![0.0, 100.0]);
        let times: Vec<f64> = PoissonArrivals::new(&t, 5).collect();
        assert!(!times.is_empty());
        assert!(times.iter().all(|&x| x >= 50.0));
    }

    #[test]
    fn zero_trace_produces_nothing() {
        let t = trace(10.0, vec![0.0, 0.0, 0.0]);
        assert_eq!(PoissonArrivals::new(&t, 1).count(), 0);
    }

    #[test]
    fn starting_at_resumes_mid_trace() {
        let t = trace(50.0, vec![100.0, 100.0]);
        let times: Vec<f64> = PoissonArrivals::starting_at(&t, 7, 60.0).collect();
        assert!(!times.is_empty());
        assert!(times.iter().all(|&x| x >= 60.0 && x < t.duration()));
        // ~4000 arrivals over the remaining 40 s; Poisson sd ≈ 63.
        assert!((3_600..4_400).contains(&times.len()), "{}", times.len());
        // Degenerate starts are sanitized.
        assert_eq!(
            PoissonArrivals::starting_at(&t, 7, f64::INFINITY).count(),
            0
        );
        let from_nan: Vec<f64> = PoissonArrivals::starting_at(&t, 7, f64::NAN).collect();
        let from_zero: Vec<f64> = PoissonArrivals::new(&t, 7).collect();
        assert_eq!(from_nan, from_zero);
    }

    #[test]
    fn interarrival_mean_close_to_inverse_rate() {
        let t = trace(1_000.0, vec![50.0]);
        let times: Vec<f64> = PoissonArrivals::new(&t, 17).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean_gap - 0.02).abs() < 0.002, "mean gap {mean_gap}");
    }
}
