//! Seeded synthetic trace generators.
//!
//! The real BibSonomy and German-Wikipedia traces are not redistributable,
//! so these generators reproduce their *documented shape* (see DESIGN.md):
//!
//! * [`wikipedia_like`] — page requests to an encyclopedia: a smooth,
//!   strongly diurnal curve with a broad daytime plateau, an evening peak,
//!   a deep night valley and mild (≈2–3%) multiplicative noise;
//! * [`bibsonomy_like`] — a smaller social-bookmarking system: the same
//!   diurnal skeleton but much noisier (≈10%), with crawler/flash-crowd
//!   bursts that multiply the load for minutes at a time.
//!
//! Both are deterministic in their seed, normalized to a configurable shape
//! (use [`LoadTrace::scale_to_peak`] to set absolute load), and cover an
//! arbitrary duration at an arbitrary resolution.

use crate::trace::LoadTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Seconds in a (synthetic) day.
const DAY: f64 = 86_400.0;

/// Smooth diurnal skeleton in `[0, 1]`: night valley around 04:00, rising
/// morning, daytime plateau, evening peak around 20:00.
fn diurnal_shape(t: f64) -> f64 {
    let day_phase = (t / DAY).fract();
    // Two harmonics give the characteristic asymmetric double-hump web
    // traffic profile.
    let base =
        0.55 - 0.35 * (TAU * (day_phase + 0.13)).cos() - 0.10 * (2.0 * TAU * day_phase).cos();
    base.clamp(0.02, 1.0)
}

/// Generates a Wikipedia-like trace: `duration` seconds at `step`
/// resolution, normalized so the deterministic peak is ≈1.0.
///
/// The profile is smooth and strongly seasonal — the regime in which
/// proactive (forecast-based) scaling shines.
///
/// # Panics
///
/// Panics if `step` or `duration` is not positive.
#[allow(clippy::expect_used)] // rates are clamped finite and non-negative above
pub fn wikipedia_like(seed: u64, step: f64, duration: f64) -> LoadTrace {
    assert!(
        step > 0.0 && duration > 0.0,
        "step and duration must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let count = crate::convert::usize_from_f64((duration / step).ceil()).max(1);
    let rates: Vec<f64> = (0..count)
        .map(|i| {
            let t = i as f64 * step;
            let shape = diurnal_shape(t);
            // Slight day-over-day growth, as in a trending article cycle.
            let trend = 1.0 + 0.03 * (t / DAY);
            let noise = 1.0 + 0.025 * (rng.gen::<f64>() * 2.0 - 1.0);
            (shape * trend * noise).max(0.0)
        })
        .collect();
    LoadTrace::new(step, rates).expect("generated rates are valid")
}

/// Generates a BibSonomy-like trace: the diurnal skeleton with heavy
/// multiplicative noise and occasional flash-crowd bursts (crawlers, viral
/// bookmarks) lasting several samples.
///
/// # Panics
///
/// Panics if `step` or `duration` is not positive.
#[allow(clippy::expect_used)] // rates are clamped finite and non-negative above
pub fn bibsonomy_like(seed: u64, step: f64, duration: f64) -> LoadTrace {
    assert!(
        step > 0.0 && duration > 0.0,
        "step and duration must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let count = crate::convert::usize_from_f64((duration / step).ceil()).max(1);

    // Pre-draw burst episodes: expected one burst per ~3 hours of trace
    // time, each lasting 3–15 samples with 1.5–3× amplification.
    let mut burst_factor = vec![1.0; count];
    let expected_bursts = crate::convert::usize_from_f64((duration / (3.0 * 3600.0)).ceil());
    for _ in 0..expected_bursts {
        let start = rng.gen_range(0..count);
        let len = rng.gen_range(3..=15).min(count - start);
        let amp = 1.5 + 1.5 * rng.gen::<f64>();
        for item in burst_factor.iter_mut().skip(start).take(len) {
            *item = f64::max(*item, amp);
        }
    }

    let rates: Vec<f64> = (0..count)
        .map(|i| {
            let t = i as f64 * step;
            let shape = diurnal_shape(t);
            let noise = 1.0 + 0.10 * (rng.gen::<f64>() * 2.0 - 1.0);
            (shape * noise * burst_factor[i]).max(0.0)
        })
        .collect();
    LoadTrace::new(step, rates).expect("generated rates are valid")
}

/// Generates a step-load trace: `low` req/s until `step_at` seconds, then
/// `high` req/s for the remainder — the canonical workload for isolating
/// reaction latency and bottleneck shifting.
///
/// # Panics
///
/// Panics if `step` or `duration` is not positive, or rates are negative.
#[allow(clippy::expect_used)] // rates are clamped finite and non-negative above
pub fn step_load(step: f64, duration: f64, low: f64, high: f64, step_at: f64) -> LoadTrace {
    assert!(
        step > 0.0 && duration > 0.0,
        "step and duration must be positive"
    );
    assert!(low >= 0.0 && high >= 0.0, "rates must be non-negative");
    let count = crate::convert::usize_from_f64((duration / step).ceil()).max(1);
    let rates: Vec<f64> = (0..count)
        .map(|i| {
            if (i as f64) * step < step_at {
                low
            } else {
                high
            }
        })
        .collect();
    LoadTrace::new(step, rates).expect("generated rates are valid")
}

/// Generates a flash-crowd trace: a steady baseline with one sudden spike
/// of `amplification`× the baseline that decays exponentially — the
/// "unanticipated flash crowds" Hist's reactive correction exists for
/// (Urgaonkar et al. 2008).
///
/// # Panics
///
/// Panics if `step` or `duration` is not positive.
#[allow(clippy::expect_used)] // rates are clamped finite and non-negative above
pub fn flash_crowd(
    seed: u64,
    step: f64,
    duration: f64,
    baseline: f64,
    amplification: f64,
) -> LoadTrace {
    assert!(
        step > 0.0 && duration > 0.0,
        "step and duration must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let count = crate::convert::usize_from_f64((duration / step).ceil()).max(1);
    // Spike onset somewhere in the middle half of the trace.
    let onset = count / 4 + rng.gen_range(0..(count / 2).max(1));
    let decay_time = duration / 10.0; // spike decays over ~10% of the trace
    let rates: Vec<f64> = (0..count)
        .map(|i| {
            let t = i as f64 * step;
            let onset_t = onset as f64 * step;
            let noise = 1.0 + 0.05 * (rng.gen::<f64>() * 2.0 - 1.0);
            let spike = if t >= onset_t {
                amplification.max(1.0) * (-(t - onset_t) / decay_time).exp()
            } else {
                0.0
            };
            (baseline.max(0.0) * (1.0 + spike) * noise).max(0.0)
        })
        .collect();
    LoadTrace::new(step, rates).expect("generated rates are valid")
}

/// Helper for the paper's experiment sizing: the peak arrival rate (req/s)
/// at which the whole application needs `total_instances` instances summed
/// over all services, given the per-service demands and a target
/// utilization.
///
/// From `Σ_i ceil(λ·d_i/ρ) ≈ λ·Σd_i/ρ = N` follows `λ = N·ρ / Σd_i`.
pub fn peak_rate_for_total_instances(
    total_instances: u32,
    service_demands: &[f64],
    target_utilization: f64,
) -> f64 {
    let total_demand: f64 = service_demands.iter().filter(|d| **d > 0.0).sum();
    if total_demand <= 0.0 || !(target_utilization > 0.0) {
        return 0.0;
    }
    f64::from(total_instances) * target_utilization / total_demand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_is_deterministic_in_seed() {
        let a = wikipedia_like(1, 60.0, DAY);
        let b = wikipedia_like(1, 60.0, DAY);
        let c = wikipedia_like(2, 60.0, DAY);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn wikipedia_has_diurnal_swing() {
        let t = wikipedia_like(42, 60.0, DAY);
        // Peak-to-valley ratio of a diurnal web trace is large.
        let min = t.rates().iter().cloned().fold(f64::MAX, f64::min);
        assert!(t.peak_rate() / min.max(1e-9) > 3.0);
    }

    #[test]
    fn wikipedia_is_smooth() {
        // Adjacent samples differ by far less than the diurnal swing.
        let t = wikipedia_like(42, 60.0, DAY);
        let max_jump = t
            .rates()
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        assert!(max_jump < 0.15 * t.peak_rate(), "max jump {max_jump}");
    }

    #[test]
    fn bibsonomy_is_noisier_than_wikipedia() {
        let wiki = wikipedia_like(7, 60.0, DAY);
        let bib = bibsonomy_like(7, 60.0, DAY);
        let roughness = |t: &LoadTrace| {
            t.rates()
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .sum::<f64>()
                / t.mean_rate()
        };
        assert!(roughness(&bib) > roughness(&wiki) * 1.5);
    }

    #[test]
    fn bibsonomy_contains_bursts() {
        let t = bibsonomy_like(3, 60.0, DAY);
        // Some sample exceeds 1.3× the smooth ceiling of the noisy shape.
        assert!(t.peak_rate() > 1.3);
    }

    #[test]
    fn generated_rates_nonnegative_and_finite() {
        for seed in 0..5 {
            for t in [
                wikipedia_like(seed, 30.0, 6.0 * 3600.0),
                bibsonomy_like(seed, 30.0, 6.0 * 3600.0),
            ] {
                assert!(t.rates().iter().all(|r| r.is_finite() && *r >= 0.0));
            }
        }
    }

    #[test]
    fn requested_duration_covered() {
        let t = wikipedia_like(1, 100.0, 3_600.0);
        assert!(t.duration() >= 3_600.0);
        assert_eq!(t.len(), 36);
    }

    #[test]
    fn peak_rate_sizing_formula() {
        // Paper demands: 0.199 s summed; 120 instances at ρ = 0.8.
        let rate = peak_rate_for_total_instances(120, &[0.059, 0.1, 0.04], 0.8);
        assert!((rate - 120.0 * 0.8 / 0.199).abs() < 1e-9);
        // Degenerate inputs.
        assert_eq!(peak_rate_for_total_instances(120, &[], 0.8), 0.0);
        assert_eq!(peak_rate_for_total_instances(120, &[0.1], 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let _ = wikipedia_like(1, 0.0, 100.0);
    }

    #[test]
    fn step_load_shape() {
        let t = step_load(10.0, 100.0, 5.0, 50.0, 40.0);
        assert_eq!(t.rate_at(0.0), 5.0);
        assert_eq!(t.rate_at(39.0), 5.0);
        assert_eq!(t.rate_at(40.0), 50.0);
        assert_eq!(t.rate_at(99.0), 50.0);
    }

    #[test]
    fn flash_crowd_has_one_big_spike() {
        let t = flash_crowd(4, 60.0, 7200.0, 50.0, 5.0);
        let stats_peak = t.peak_rate();
        assert!(stats_peak > 200.0, "peak {stats_peak}");
        // Before and long after the spike the trace sits near baseline.
        assert!(t.rate_at(0.0) < 60.0);
        // Deterministic in the seed.
        assert_eq!(t, flash_crowd(4, 60.0, 7200.0, 50.0, 5.0));
        assert_ne!(t, flash_crowd(5, 60.0, 7200.0, 50.0, 5.0));
    }

    #[test]
    fn flash_crowd_decays_back_to_baseline() {
        let t = flash_crowd(4, 60.0, 7200.0, 50.0, 5.0);
        // Find the spike peak index, check the level 20+ samples later.
        let peak_idx = t
            .rates()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        if peak_idx + 30 < t.len() {
            assert!(t.rates()[peak_idx + 30] < t.peak_rate() / 3.0);
        }
    }
}
