//! Crate-private checked numeric conversions, so sample counts and bucket
//! indices derived from float time arithmetic narrow in exactly one place.

/// Converts a sample count or index computed in `f64` to `usize`,
/// saturating at the bounds (non-positive and NaN map to 0).
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
pub(crate) fn usize_from_f64(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        0
    } else if value >= usize::MAX as f64 {
        usize::MAX
    } else {
        value as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_and_truncates() {
        assert_eq!(usize_from_f64(-1.0), 0);
        assert_eq!(usize_from_f64(f64::NAN), 0);
        assert_eq!(usize_from_f64(0.0), 0);
        assert_eq!(usize_from_f64(2.9), 2);
        assert_eq!(usize_from_f64(f64::INFINITY), usize::MAX);
    }
}
