//! Workload traces and load-intensity generation for the Chamulteon
//! reproduction.
//!
//! The paper drives its experiments with two real traces — HTTP requests to
//! BibSonomy (April 2017) and page requests to the German Wikipedia
//! (December 2013) — picking one day and compressing it to a 1 h or 6 h
//! experiment (§IV-B). Those traces are not redistributable, so this crate
//! provides:
//!
//! * [`LoadTrace`] — a piecewise-constant load-intensity profile with the
//!   paper's transformations (time compression, peak rescaling) and CSV
//!   import/export so the real traces can be dropped in when available,
//! * [`generators`] — seeded synthetic generators reproducing the
//!   documented shape of each trace ([`wikipedia_like`] — smooth, strongly
//!   diurnal; [`bibsonomy_like`] — burstier with flash crowds),
//! * [`PoissonArrivals`] — realization of a trace as a non-homogeneous
//!   Poisson arrival process, the load-generator stand-in.
//!
//! # Example
//!
//! ```
//! use chamulteon_workload::{generators, PoissonArrivals};
//!
//! // One synthetic "day", 60 s resolution, compressed to one hour.
//! let day = generators::wikipedia_like(42, 60.0, 86_400.0);
//! let hour = day.compress_to(3_600.0);
//! let trace = hour.scale_to_peak(500.0);
//! let arrivals: Vec<f64> = PoissonArrivals::new(&trace, 7).collect();
//! assert!(!arrivals.is_empty());
//! ```
//!
//! [`wikipedia_like`]: generators::wikipedia_like
//! [`bibsonomy_like`]: generators::bibsonomy_like

#![forbid(unsafe_code)]
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately rejects NaN
#![warn(missing_docs)]

pub mod arrivals;
mod convert;
pub mod error;
pub mod generators;
pub mod stats;
pub mod trace;

pub use arrivals::PoissonArrivals;
pub use error::WorkloadError;
pub use stats::{trace_stats, TraceStats};
pub use trace::LoadTrace;
