//! Descriptive statistics of load traces.
//!
//! Used to calibrate the synthetic generators against the documented
//! properties of the real traces (DESIGN.md §2) and handy for anyone
//! importing their own CSV trace.

use crate::trace::LoadTrace;

/// Summary statistics of a load-intensity trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Largest sampled rate, req/s.
    pub peak_rate: f64,
    /// Mean sampled rate, req/s.
    pub mean_rate: f64,
    /// Smallest sampled rate, req/s.
    pub min_rate: f64,
    /// Peak-to-mean ratio — how spiky the trace is overall.
    pub peak_to_mean: f64,
    /// Coefficient of variation of the rates (std/mean).
    pub coefficient_of_variation: f64,
    /// Mean absolute relative step between adjacent samples — short-term
    /// burstiness (0 for a constant trace, grows with noise and bursts).
    pub burstiness: f64,
    /// Lag-1 autocorrelation of the rates — smoothness of the profile
    /// (≈1 for a smooth diurnal curve, lower for noisy traces).
    pub lag1_autocorrelation: f64,
}

/// Computes the summary statistics of a trace.
pub fn trace_stats(trace: &LoadTrace) -> TraceStats {
    let rates = trace.rates();
    let n = rates.len() as f64;
    let mean = trace.mean_rate();
    let peak = trace.peak_rate();
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let variance = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
    let std = variance.sqrt();

    let burstiness = if rates.len() >= 2 && mean > 0.0 {
        rates.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (rates.len() - 1) as f64 / mean
    } else {
        0.0
    };

    let lag1 = if rates.len() >= 3 && variance > 0.0 {
        let num: f64 = rates
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        num / (variance * n)
    } else {
        0.0
    };

    TraceStats {
        peak_rate: peak,
        mean_rate: mean,
        min_rate: min,
        peak_to_mean: if mean > 0.0 { peak / mean } else { 0.0 },
        coefficient_of_variation: if mean > 0.0 { std / mean } else { 0.0 },
        burstiness,
        lag1_autocorrelation: lag1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bibsonomy_like, wikipedia_like};

    fn trace(rates: Vec<f64>) -> LoadTrace {
        LoadTrace::new(60.0, rates).unwrap()
    }

    #[test]
    fn constant_trace_statistics() {
        let s = trace_stats(&trace(vec![10.0; 20]));
        assert_eq!(s.peak_rate, 10.0);
        assert_eq!(s.mean_rate, 10.0);
        assert_eq!(s.min_rate, 10.0);
        assert_eq!(s.peak_to_mean, 1.0);
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(s.burstiness, 0.0);
    }

    #[test]
    fn spiky_trace_has_high_peak_to_mean() {
        let mut rates = vec![1.0; 59];
        rates.push(100.0);
        let s = trace_stats(&trace(rates));
        assert!(s.peak_to_mean > 30.0);
    }

    #[test]
    fn zero_trace_degenerate_values() {
        let s = trace_stats(&trace(vec![0.0, 0.0]));
        assert_eq!(s.peak_to_mean, 0.0);
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(s.burstiness, 0.0);
    }

    #[test]
    fn smooth_trace_has_high_lag1_autocorrelation() {
        let rates: Vec<f64> = (0..200)
            .map(|t| 50.0 + 30.0 * (t as f64 * std::f64::consts::TAU / 100.0).sin())
            .collect();
        let s = trace_stats(&trace(rates));
        assert!(s.lag1_autocorrelation > 0.9);
    }

    #[test]
    fn generators_match_documented_shape() {
        // The calibration claims of DESIGN.md §2, checked quantitatively.
        let wiki = trace_stats(&wikipedia_like(5, 60.0, 86_400.0));
        let bib = trace_stats(&bibsonomy_like(5, 60.0, 86_400.0));
        // Both strongly diurnal => high lag-1 autocorrelation.
        assert!(wiki.lag1_autocorrelation > 0.9);
        assert!(bib.lag1_autocorrelation > 0.6);
        // BibSonomy burstier and spikier than Wikipedia.
        assert!(bib.burstiness > wiki.burstiness * 1.5);
        assert!(bib.peak_to_mean > wiki.peak_to_mean);
        // Diurnal swing: peak well above mean for both.
        assert!(wiki.peak_to_mean > 1.4);
    }
}
