//! Error type for workload handling.

use std::error::Error;
use std::fmt;

/// Error returned by trace construction and parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The trace has no observations.
    Empty,
    /// The sampling step is not positive and finite.
    InvalidStep {
        /// The value that was passed.
        step: f64,
    },
    /// A rate value is negative or non-finite.
    InvalidRate {
        /// Index of the offending observation.
        index: usize,
        /// The value that was passed.
        value: f64,
    },
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Empty => write!(f, "trace has no observations"),
            WorkloadError::InvalidStep { step } => {
                write!(f, "sampling step must be positive and finite, got {step}")
            }
            WorkloadError::InvalidRate { index, value } => {
                write!(f, "invalid rate {value} at index {index}")
            }
            WorkloadError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(!WorkloadError::Empty.to_string().is_empty());
        assert!(WorkloadError::InvalidStep { step: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(WorkloadError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
