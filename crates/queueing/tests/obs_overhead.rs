//! Overhead smoke test: the disabled observability path (a no-op
//! [`RecorderHandle`] plus a disabled metrics registry consulted on every
//! solve) must add less than 5 % to the capacity-solver sweep.
//!
//! Both sides are timed as the minimum over several trials — the minimum
//! is robust to scheduler noise, which is what makes a ratio assertion
//! safe in CI.

use chamulteon_obs::{Event, EventKind, Obs};
use chamulteon_queueing::capacity::min_instances_for_response_time_quantile;
use std::hint::black_box;
use std::time::Instant;

const RATES: usize = 60;
const DEMANDS: usize = 8;
const TRIALS: usize = 9;

fn solve(rate: f64, demand: f64) -> u32 {
    min_instances_for_response_time_quantile(rate, demand, 4.0 * demand, 0.95, 200).unwrap_or(0)
}

fn sweep_plain() -> u64 {
    let mut acc = 0u64;
    for r in 0..RATES {
        let rate = 1.0 + 5.0 * r as f64;
        for d in 0..DEMANDS {
            let demand = 0.02 + 0.02 * d as f64;
            acc = acc.wrapping_add(u64::from(black_box(solve(black_box(rate), demand))));
        }
    }
    acc
}

fn sweep_observed(obs: &Obs) -> u64 {
    let mut acc = 0u64;
    for r in 0..RATES {
        let rate = 1.0 + 5.0 * r as f64;
        for d in 0..DEMANDS {
            let demand = 0.02 + 0.02 * d as f64;
            let n = black_box(solve(black_box(rate), demand));
            // The instrumented decision path: one event closure and one
            // counter touch per solve, both short-circuited when disabled.
            obs.record_with(|| {
                Event::cycle(
                    rate,
                    EventKind::CapacitySolve {
                        hits: 0,
                        misses: u64::from(n),
                    },
                )
            });
            obs.metrics().increment("solves");
            acc = acc.wrapping_add(u64::from(n));
        }
    }
    acc
}

fn min_time(mut work: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        let acc = work();
        let elapsed = start.elapsed().as_secs_f64();
        black_box(acc);
        best = best.min(elapsed);
    }
    best
}

#[test]
fn disabled_observability_is_under_five_percent() {
    let obs = Obs::disabled();
    // Equal work on both sides, checked before timing anything.
    assert_eq!(sweep_plain(), sweep_observed(&obs));

    // Warm up once each, then take minima.
    let _ = (sweep_plain(), sweep_observed(&obs));
    let plain = min_time(sweep_plain);
    let observed = min_time(|| sweep_observed(&obs));

    let ratio = observed / plain.max(1e-12);
    eprintln!(
        "no-op observability overhead: {:+.2}% (plain {:.3} ms, observed {:.3} ms, {} solves/sweep)",
        (ratio - 1.0) * 100.0,
        plain * 1e3,
        observed * 1e3,
        RATES * DEMANDS,
    );
    assert!(
        ratio < 1.05,
        "no-op observability overhead {:.2}% (plain {:.3} ms, observed {:.3} ms)",
        (ratio - 1.0) * 100.0,
        plain * 1e3,
        observed * 1e3,
    );
}
