//! Property-based tests for the queueing primitives.

// Example/test/bench code: panics and lossy casts are acceptable here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss
)]
use chamulteon_queueing::capacity::{
    self, max_arrival_rate_for_utilization, min_instances_for_response_time,
    min_instances_for_response_time_quantile, min_instances_for_utilization,
};
use chamulteon_queueing::erlang::{erlang_b, erlang_c, ErlangSweep};
use chamulteon_queueing::{CapacityCache, MmnQueue, StationSpec, TandemNetwork};
use proptest::prelude::*;

proptest! {
    /// Erlang-B is always a probability.
    #[test]
    fn erlang_b_in_unit_interval(n in 1u32..500, a in 0.0f64..400.0) {
        let b = erlang_b(n, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&b));
    }

    /// Erlang-B decreases as servers are added (more trunks, less blocking).
    #[test]
    fn erlang_b_monotone_in_servers(n in 1u32..200, a in 0.01f64..150.0) {
        let b1 = erlang_b(n, a).unwrap();
        let b2 = erlang_b(n + 1, a).unwrap();
        prop_assert!(b2 <= b1 + 1e-12);
    }

    /// Erlang-B increases with offered load.
    #[test]
    fn erlang_b_monotone_in_load(n in 1u32..100, a in 0.01f64..100.0, da in 0.01f64..10.0) {
        let b1 = erlang_b(n, a).unwrap();
        let b2 = erlang_b(n, a + da).unwrap();
        prop_assert!(b2 >= b1 - 1e-12);
    }

    /// Erlang-C is a probability and at least Erlang-B for stable systems.
    #[test]
    fn erlang_c_bounds(n in 1u32..300, frac in 0.01f64..0.99) {
        let a = f64::from(n) * frac;
        let b = erlang_b(n, a).unwrap();
        let c = erlang_c(n, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(c >= b - 1e-12);
    }

    /// Stable stations always have a finite positive response time no less
    /// than the bare service demand.
    #[test]
    fn response_time_at_least_demand(
        n in 1u32..200,
        s in 0.001f64..2.0,
        frac in 0.01f64..0.99,
    ) {
        let lambda = f64::from(n) * frac / s;
        let q = MmnQueue::new(lambda, s, n).unwrap();
        let r = q.mean_response_time().unwrap();
        prop_assert!(r.is_finite());
        prop_assert!(r >= s - 1e-12);
    }

    /// The utilization solver output always meets the target and is minimal.
    #[test]
    fn utilization_solver_sound_and_minimal(
        lambda in 0.01f64..5000.0,
        s in 0.001f64..2.0,
        rho in 0.05f64..1.0,
    ) {
        let n = min_instances_for_utilization(lambda, s, rho);
        prop_assert!(n >= 1);
        prop_assert!(lambda * s / f64::from(n) <= rho + 1e-6);
        if n > 1 {
            prop_assert!(lambda * s / f64::from(n - 1) > rho - 1e-6);
        }
    }

    /// min/max capacity functions are mutually consistent.
    #[test]
    fn capacity_round_trip(n in 1u32..1000, s in 0.001f64..1.0, rho in 0.1f64..1.0) {
        let lambda = max_arrival_rate_for_utilization(n, s, rho);
        let back = min_instances_for_utilization(lambda, s, rho);
        prop_assert_eq!(back, n.max(1));
    }

    /// The SLO solver result is stable and meets the target.
    #[test]
    fn slo_solver_sound(
        lambda in 0.1f64..500.0,
        s in 0.01f64..0.5,
        slack in 1.05f64..10.0,
    ) {
        let target = s * slack;
        let n = min_instances_for_response_time(lambda, s, target, 1_000_000).unwrap();
        let q = MmnQueue::new(lambda, s, n).unwrap();
        prop_assert!(q.is_stable());
        prop_assert!(q.mean_response_time().unwrap() <= target + 1e-9);
    }

    /// Effective rates never increase along the chain and never exceed the
    /// external rate.
    #[test]
    fn tandem_rates_never_amplified(
        lambda in 0.0f64..1000.0,
        n1 in 1u32..50, n2 in 1u32..50, n3 in 1u32..50,
    ) {
        let net = TandemNetwork::new(vec![
            StationSpec::new(0.059, n1),
            StationSpec::new(0.1, n2),
            StationSpec::new(0.04, n3),
        ]).unwrap();
        let rates = net.effective_rates(lambda);
        prop_assert_eq!(rates.len(), 3);
        prop_assert!(rates[0] <= lambda + 1e-9);
        for w in rates.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
    }

    /// The incremental Erlang sweep is bit-identical to the from-scratch
    /// formulas at every server count it passes through.
    #[test]
    fn sweep_bit_equal_to_from_scratch(a in 0.0f64..400.0, upto in 1u32..300) {
        let mut sweep = ErlangSweep::new(a).unwrap();
        for n in 1..=upto {
            sweep.step();
            prop_assert_eq!(
                sweep.blocking().unwrap().to_bits(),
                erlang_b(n, a).unwrap().to_bits()
            );
            match (sweep.waiting(), erlang_c(n, a)) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                (Err(_), Err(_)) => {}
                (x, y) => prop_assert!(false, "divergent errors: {:?} vs {:?}", x, y),
            }
        }
    }

    /// The incremental mean-response-time solver is bit-equal to the naive
    /// O(n²) reference search across random inputs — results *and* errors.
    #[test]
    fn incremental_mean_solver_equals_naive(
        lambda in 0.0f64..2000.0,
        s in 0.0005f64..2.0,
        slack in 0.5f64..10.0,
        max in 1u32..400,
    ) {
        let target = s * slack;
        let fast = min_instances_for_response_time(lambda, s, target, max);
        let slow = capacity::naive::min_instances_for_response_time(lambda, s, target, max);
        prop_assert_eq!(fast, slow);
    }

    /// Same bit-equality for the quantile solver, across random quantiles.
    #[test]
    fn incremental_quantile_solver_equals_naive(
        lambda in 0.0f64..2000.0,
        s in 0.0005f64..2.0,
        slack in 0.5f64..10.0,
        p in 0.01f64..0.999,
        max in 1u32..400,
    ) {
        let target = s * slack;
        let fast = min_instances_for_response_time_quantile(lambda, s, target, p, max);
        let slow =
            capacity::naive::min_instances_for_response_time_quantile(lambda, s, target, p, max);
        prop_assert_eq!(fast, slow);
    }

    /// The memo cache never undersizes relative to the exact solver, and
    /// overshoots by at most one instance (quantization boundary cases).
    #[test]
    fn cache_is_conservative(
        lambda in 0.1f64..1000.0,
        s in 0.005f64..0.5,
        slack in 1.05f64..8.0,
        p in 0.5f64..0.99,
    ) {
        let target = s * slack;
        let cache = CapacityCache::new();
        let cached = cache
            .min_instances_for_response_time_quantile(lambda, s, target, p, 1_000_000)
            .unwrap();
        let exact =
            min_instances_for_response_time_quantile(lambda, s, target, p, 1_000_000).unwrap();
        prop_assert!(cached >= exact, "cached {} < exact {}", cached, exact);
        prop_assert!(cached <= exact + 1, "cached {} ≫ exact {}", cached, exact);
    }

    /// The demand vector from the SLO sizing keeps every tier stable.
    #[test]
    fn tandem_slo_vector_stable(lambda in 1.0f64..300.0) {
        let net = TandemNetwork::new(vec![
            StationSpec::new(0.059, 1),
            StationSpec::new(0.1, 1),
            StationSpec::new(0.04, 1),
        ]).unwrap();
        let ns = net.min_instances_for_slo(lambda, 0.5, 1_000_000).unwrap();
        let demands = [0.059, 0.1, 0.04];
        for (i, &n) in ns.iter().enumerate() {
            prop_assert!(lambda * demands[i] / f64::from(n) < 1.0);
        }
    }
}
