//! Open tandem networks of M/M/n stations.
//!
//! The benchmark application of the paper is a chain UI → validation → data;
//! every request visits every tier once. Under the product-form assumption
//! (§III-B) the chain decomposes into independent M/M/n stations fed by the
//! same Poisson rate, with the twist that an *overloaded* upstream tier
//! throttles the rate reaching downstream tiers to its saturation
//! throughput — exactly the effect that produces bottleneck shifting.

use crate::capacity::min_instances_for_response_time;
use crate::error::QueueingError;
use crate::mmn::MmnQueue;

/// Static description of one station in a tandem network: its service
/// demand and how many instances are currently running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationSpec {
    /// Mean service demand in seconds per request.
    pub service_demand: f64,
    /// Number of running instances.
    pub servers: u32,
    /// Mean number of visits a single application request makes to this
    /// station (1.0 for a plain chain).
    pub visit_ratio: f64,
}

impl StationSpec {
    /// Creates a station spec with a visit ratio of 1 (plain chain).
    pub fn new(service_demand: f64, servers: u32) -> Self {
        StationSpec {
            service_demand,
            servers,
            visit_ratio: 1.0,
        }
    }

    /// Creates a station spec with an explicit visit ratio.
    pub fn with_visit_ratio(service_demand: f64, servers: u32, visit_ratio: f64) -> Self {
        StationSpec {
            service_demand,
            servers,
            visit_ratio,
        }
    }
}

/// An open tandem network of M/M/n stations fed by a single external
/// arrival stream.
///
/// # Examples
///
/// The paper's three-tier application at 50 req/s:
///
/// ```
/// use chamulteon_queueing::{StationSpec, TandemNetwork};
///
/// let net = TandemNetwork::new(vec![
///     StationSpec::new(0.059, 5), // UI
///     StationSpec::new(0.1, 8),   // validation
///     StationSpec::new(0.04, 3),  // data
/// ])?;
/// let r = net.mean_response_time(50.0)?;
/// assert!(r > 0.199); // end to end at least the summed demands
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TandemNetwork {
    stations: Vec<StationSpec>,
}

impl TandemNetwork {
    /// Creates a network from station specs.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::NonPositive`] if any station has a
    /// non-positive service demand or visit ratio, and
    /// [`QueueingError::OutOfRange`] if any has zero servers or the network
    /// is empty.
    pub fn new(stations: Vec<StationSpec>) -> Result<Self, QueueingError> {
        if stations.is_empty() {
            return Err(QueueingError::OutOfRange {
                name: "stations",
                value: 0.0,
            });
        }
        for s in &stations {
            if !(s.service_demand > 0.0) {
                return Err(QueueingError::NonPositive {
                    name: "service_demand",
                    value: s.service_demand,
                });
            }
            if !(s.visit_ratio > 0.0) {
                return Err(QueueingError::NonPositive {
                    name: "visit_ratio",
                    value: s.visit_ratio,
                });
            }
            if s.servers == 0 {
                return Err(QueueingError::OutOfRange {
                    name: "servers",
                    value: 0.0,
                });
            }
        }
        Ok(TandemNetwork { stations })
    }

    /// The station specs in order.
    pub fn stations(&self) -> &[StationSpec] {
        &self.stations
    }

    /// Effective arrival rate at each station when the external rate is
    /// `arrival_rate`, accounting for upstream throttling: an overloaded
    /// station forwards at most its saturation throughput.
    ///
    /// This mirrors the paper's baseline chain-input formula
    /// `r(i) = min(r(i-1), n(i-1)·s(i-1))` generalized with visit ratios.
    pub fn effective_rates(&self, arrival_rate: f64) -> Vec<f64> {
        let mut rates = Vec::with_capacity(self.stations.len());
        let mut upstream = arrival_rate.max(0.0);
        for s in &self.stations {
            let local = upstream * s.visit_ratio;
            rates.push(local);
            let saturation = f64::from(s.servers) / s.service_demand;
            // What flows onward is bounded by what this tier can complete,
            // expressed back in external-request units.
            upstream = (local.min(saturation)) / s.visit_ratio;
        }
        rates
    }

    /// Per-station utilizations at the given external arrival rate, using
    /// the *unthrottled* rate (theoretical utilization may exceed 1).
    pub fn utilizations(&self, arrival_rate: f64) -> Vec<f64> {
        self.stations
            .iter()
            .map(|s| {
                arrival_rate.max(0.0) * s.visit_ratio * s.service_demand / f64::from(s.servers)
            })
            .collect()
    }

    /// Index of the station with the highest utilization — the bottleneck.
    pub fn bottleneck(&self, arrival_rate: f64) -> usize {
        let utils = self.utilizations(arrival_rate);
        utils
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The largest external arrival rate that keeps every station stable.
    pub fn saturation_throughput(&self) -> f64 {
        self.stations
            .iter()
            .map(|s| f64::from(s.servers) / (s.service_demand * s.visit_ratio))
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean end-to-end response time at the given external arrival rate,
    /// summing per-station sojourn times weighted by visit ratios.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if any station is at or over
    /// capacity.
    pub fn mean_response_time(&self, arrival_rate: f64) -> Result<f64, QueueingError> {
        let mut total = 0.0;
        for s in &self.stations {
            let local_rate = arrival_rate.max(0.0) * s.visit_ratio;
            let station = MmnQueue::new(local_rate, s.service_demand, s.servers)?;
            total += s.visit_ratio * station.mean_response_time()?;
        }
        Ok(total)
    }

    /// Minimal per-station instance vector meeting an *end-to-end* response
    /// time target, splitting the target budget across tiers proportionally
    /// to their service demands and solving each tier independently.
    ///
    /// This is the ground-truth demand vector used by the elasticity
    /// metrics: it answers "what would the theoretically optimal auto-scaler
    /// have provisioned at this load?".
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Infeasible`] if any tier cannot meet its
    /// share of the budget within `max_instances`, and
    /// [`QueueingError::NonPositive`] for a non-positive target.
    pub fn min_instances_for_slo(
        &self,
        arrival_rate: f64,
        response_time_target: f64,
        max_instances: u32,
    ) -> Result<Vec<u32>, QueueingError> {
        if !(response_time_target > 0.0) {
            return Err(QueueingError::NonPositive {
                name: "response_time_target",
                value: response_time_target,
            });
        }
        let total_demand: f64 = self
            .stations
            .iter()
            .map(|s| s.service_demand * s.visit_ratio)
            .sum();
        let mut out = Vec::with_capacity(self.stations.len());
        for s in &self.stations {
            let share = response_time_target * (s.service_demand * s.visit_ratio) / total_demand;
            // Per-visit budget for this station.
            let per_visit_target = share / s.visit_ratio;
            let n = min_instances_for_response_time(
                arrival_rate.max(0.0) * s.visit_ratio,
                s.service_demand,
                per_visit_target,
                max_instances,
            )?;
            out.push(n);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_net(n1: u32, n2: u32, n3: u32) -> TandemNetwork {
        TandemNetwork::new(vec![
            StationSpec::new(0.059, n1),
            StationSpec::new(0.1, n2),
            StationSpec::new(0.04, n3),
        ])
        .unwrap()
    }

    #[test]
    fn empty_network_rejected() {
        assert!(TandemNetwork::new(vec![]).is_err());
    }

    #[test]
    fn invalid_station_rejected() {
        assert!(TandemNetwork::new(vec![StationSpec::new(0.0, 1)]).is_err());
        assert!(TandemNetwork::new(vec![StationSpec::new(0.1, 0)]).is_err());
        assert!(TandemNetwork::new(vec![StationSpec::with_visit_ratio(0.1, 1, 0.0)]).is_err());
    }

    #[test]
    fn effective_rates_pass_through_when_no_overload() {
        let net = paper_net(10, 15, 6);
        let rates = net.effective_rates(100.0);
        assert_eq!(rates, vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn effective_rates_throttled_by_overloaded_tier() {
        // Validation tier has 5 instances => saturation 50 req/s.
        let net = paper_net(10, 5, 6);
        let rates = net.effective_rates(100.0);
        assert_eq!(rates[0], 100.0);
        assert_eq!(rates[1], 100.0);
        // Data tier only sees what validation can complete.
        assert!((rates[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn effective_rates_cascade_through_multiple_bottlenecks() {
        // UI saturates at 2/0.059 ≈ 33.9 first, then validation at 30.
        let net = paper_net(2, 3, 1);
        let rates = net.effective_rates(100.0);
        assert_eq!(rates[0], 100.0);
        let ui_sat = 2.0 / 0.059;
        assert!((rates[1] - ui_sat).abs() < 1e-9);
        let val_sat = 3.0 / 0.1;
        assert!((rates[2] - ui_sat.min(val_sat)).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_is_highest_utilization_tier() {
        // At equal instance counts the 0.1 s tier is always the bottleneck.
        let net = paper_net(5, 5, 5);
        assert_eq!(net.bottleneck(10.0), 1);
    }

    #[test]
    fn saturation_is_min_over_tiers() {
        let net = paper_net(10, 5, 6);
        // 10/0.059 = 169.5, 5/0.1 = 50, 6/0.04 = 150 => 50.
        assert!((net.saturation_throughput() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn response_time_sums_tiers() {
        let net = paper_net(50, 50, 50);
        // Nearly idle: response ≈ sum of demands.
        let r = net.mean_response_time(1.0).unwrap();
        assert!((r - 0.199).abs() < 1e-3);
    }

    #[test]
    fn response_time_unstable_when_any_tier_overloaded() {
        let net = paper_net(10, 1, 6);
        assert!(net.mean_response_time(50.0).is_err());
    }

    #[test]
    fn min_instances_for_slo_meets_target() {
        let net = paper_net(1, 1, 1);
        let ns = net.min_instances_for_slo(100.0, 0.5, 1000).unwrap();
        let sized = TandemNetwork::new(vec![
            StationSpec::new(0.059, ns[0]),
            StationSpec::new(0.1, ns[1]),
            StationSpec::new(0.04, ns[2]),
        ])
        .unwrap();
        assert!(sized.mean_response_time(100.0).unwrap() <= 0.5);
    }

    #[test]
    fn min_instances_scale_with_load() {
        let net = paper_net(1, 1, 1);
        let low = net.min_instances_for_slo(20.0, 0.5, 1000).unwrap();
        let high = net.min_instances_for_slo(200.0, 0.5, 1000).unwrap();
        for (l, h) in low.iter().zip(high.iter()) {
            assert!(h >= l);
        }
    }

    #[test]
    fn visit_ratios_increase_local_rates() {
        let net = TandemNetwork::new(vec![
            StationSpec::new(0.05, 10),
            StationSpec::with_visit_ratio(0.05, 10, 2.0),
        ])
        .unwrap();
        let rates = net.effective_rates(10.0);
        assert_eq!(rates[0], 10.0);
        assert_eq!(rates[1], 20.0);
    }
}
