//! Error types for queueing computations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible queueing computations.
///
/// All variants carry the offending value(s) so callers can report what was
/// actually passed in — useful when arrival rates or service demands come
/// from noisy monitoring data.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueingError {
    /// The station is unstable: offered load `λ·s` is at least the number of
    /// servers, so queue length grows without bound.
    Unstable {
        /// Offered load `λ·s` in Erlangs.
        offered_load: f64,
        /// Number of servers.
        servers: u32,
    },
    /// A parameter that must be strictly positive was zero or negative
    /// (or NaN).
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was passed.
        value: f64,
    },
    /// A probability or utilization target outside its valid open interval.
    OutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was passed.
        value: f64,
    },
    /// No feasible configuration exists within the allowed instance bounds.
    Infeasible {
        /// The smallest instance count that would have been required, if any
        /// finite count works at all.
        required: Option<u32>,
        /// The maximum instance count that was allowed.
        max_allowed: u32,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::Unstable {
                offered_load,
                servers,
            } => write!(
                f,
                "unstable station: offered load {offered_load} Erlangs with {servers} servers"
            ),
            QueueingError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            QueueingError::OutOfRange { name, value } => {
                write!(f, "parameter `{name}` out of range, got {value}")
            }
            QueueingError::Infeasible {
                required,
                max_allowed,
            } => match required {
                Some(required) => write!(
                    f,
                    "infeasible: {required} instances required but only {max_allowed} allowed"
                ),
                None => write!(
                    f,
                    "infeasible: no finite instance count works within limit {max_allowed}"
                ),
            },
        }
    }
}

impl Error for QueueingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            QueueingError::Unstable {
                offered_load: 2.0,
                servers: 1,
            },
            QueueingError::NonPositive {
                name: "lambda",
                value: -1.0,
            },
            QueueingError::OutOfRange {
                name: "rho",
                value: 1.5,
            },
            QueueingError::Infeasible {
                required: Some(10),
                max_allowed: 5,
            },
            QueueingError::Infeasible {
                required: None,
                max_allowed: 5,
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueueingError>();
    }
}
