//! The M/M/n/∞ station model used for every micro-service.
//!
//! The paper (§III-B) maps each service instance to exactly one resource
//! instance, so "number of servers" and "number of running service
//! instances" coincide. [`MmnQueue`] bundles the three quantities Chamulteon
//! works with — arrival rate, per-instance service demand, instance count —
//! and derives the standard steady-state measures from them.

use crate::erlang::erlang_c;
use crate::error::QueueingError;

/// An M/M/n/∞ station: Poisson arrivals at rate `λ`, `n` parallel servers,
/// exponential service times with mean `s` (the *service demand*).
///
/// Constructed via [`MmnQueue::new`], which validates the inputs once; the
/// accessors are then infallible except where stability is required.
///
/// # Examples
///
/// The paper's validation service (demand 0.1 s) with 12 instances under
/// 100 req/s:
///
/// ```
/// use chamulteon_queueing::MmnQueue;
///
/// let q = MmnQueue::new(100.0, 0.1, 12)?;
/// assert!((q.utilization() - 100.0 * 0.1 / 12.0).abs() < 1e-12);
/// assert!(q.is_stable());
/// let r = q.mean_response_time()?;
/// assert!(r > 0.1); // response time always exceeds the bare demand
/// # Ok::<(), chamulteon_queueing::QueueingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmnQueue {
    arrival_rate: f64,
    service_demand: f64,
    servers: u32,
}

impl MmnQueue {
    /// Creates a station from an arrival rate (req/s), a per-request service
    /// demand (seconds), and a number of servers/instances.
    ///
    /// The arrival rate may be zero (an idle station); the service demand
    /// and the server count must be strictly positive.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::NonPositive`] for a negative/NaN arrival
    /// rate or a non-positive/NaN service demand, and
    /// [`QueueingError::OutOfRange`] for zero servers.
    pub fn new(
        arrival_rate: f64,
        service_demand: f64,
        servers: u32,
    ) -> Result<Self, QueueingError> {
        if !(arrival_rate >= 0.0) {
            return Err(QueueingError::NonPositive {
                name: "arrival_rate",
                value: arrival_rate,
            });
        }
        if !(service_demand > 0.0) {
            return Err(QueueingError::NonPositive {
                name: "service_demand",
                value: service_demand,
            });
        }
        if servers == 0 {
            return Err(QueueingError::OutOfRange {
                name: "servers",
                value: 0.0,
            });
        }
        Ok(MmnQueue {
            arrival_rate,
            service_demand,
            servers,
        })
    }

    /// The arrival rate `λ` in requests per second.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// The mean service demand `s` in seconds per request.
    pub fn service_demand(&self) -> f64 {
        self.service_demand
    }

    /// The number of servers (= running service instances), `n`.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// The per-server service rate `μ = 1/s` in requests per second.
    pub fn service_rate(&self) -> f64 {
        1.0 / self.service_demand
    }

    /// The offered load `a = λ·s` in Erlangs.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate * self.service_demand
    }

    /// The average utilization `ρ = λ·s / n` — line 6 of the paper's
    /// Algorithm 1 (`ρ = λ / (μ·n)`).
    ///
    /// Note that this is the *theoretical* utilization and may exceed 1 for
    /// an overloaded station; Chamulteon uses exactly this property to
    /// detect how far over capacity a service is.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / f64::from(self.servers)
    }

    /// Whether the station has a steady state (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Erlang-C probability that an arriving request must wait.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn wait_probability(&self) -> Result<f64, QueueingError> {
        erlang_c(self.servers, self.offered_load())
    }

    /// Mean time spent waiting in the queue, `E[W_q] = C(n,a) / (n·μ − λ)`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_waiting_time(&self) -> Result<f64, QueueingError> {
        let c = self.wait_probability()?;
        let n_mu = f64::from(self.servers) * self.service_rate();
        Ok(c / (n_mu - self.arrival_rate))
    }

    /// Mean end-to-end sojourn (response) time at this station,
    /// `E[R] = E[W_q] + s`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_response_time(&self) -> Result<f64, QueueingError> {
        Ok(self.mean_waiting_time()? + self.service_demand)
    }

    /// Mean number of requests waiting in the queue,
    /// `L_q = λ·E[W_q]` (Little's law).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_queue_length(&self) -> Result<f64, QueueingError> {
        Ok(self.arrival_rate * self.mean_waiting_time()?)
    }

    /// Mean number of requests in the station (queued + in service),
    /// `L = λ·E[R]` (Little's law).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_number_in_system(&self) -> Result<f64, QueueingError> {
        Ok(self.arrival_rate * self.mean_response_time()?)
    }

    /// Approximate `p`-quantile of the waiting time: from
    /// `P(W > t) = C(n,a)·e^{−(nμ−λ)t}`, the quantile is
    /// `ln(C/(1−p)) / (nμ−λ)`, clamped at 0 when `C ≤ 1−p` (most requests
    /// do not wait at all).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1` and
    /// [`QueueingError::OutOfRange`] for `p` outside `(0, 1)`.
    pub fn waiting_time_quantile(&self, p: f64) -> Result<f64, QueueingError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(QueueingError::OutOfRange {
                name: "quantile",
                value: p,
            });
        }
        let c = self.wait_probability()?;
        if c <= 1.0 - p {
            return Ok(0.0);
        }
        let drain = f64::from(self.servers) * self.service_rate() - self.arrival_rate;
        Ok((c / (1.0 - p)).ln() / drain)
    }

    /// Approximate `p`-quantile of the response time: the waiting-time
    /// quantile plus the mean service demand. Slightly optimistic about
    /// the service-time tail, which is acceptable for capacity planning
    /// (the waiting tail dominates near saturation).
    ///
    /// # Errors
    ///
    /// Same as [`MmnQueue::waiting_time_quantile`].
    pub fn response_time_quantile(&self, p: f64) -> Result<f64, QueueingError> {
        Ok(self.waiting_time_quantile(p)? + self.service_demand)
    }

    /// The largest arrival rate this station can serve while staying stable,
    /// `n·μ` (exclusive bound).
    ///
    /// This is the `maxInstances`-style saturation throughput the paper uses
    /// when capping the rate forwarded to downstream services.
    pub fn saturation_throughput(&self) -> f64 {
        f64::from(self.servers) * self.service_rate()
    }

    /// Returns a copy of this station with a different number of servers.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::OutOfRange`] for zero servers.
    pub fn with_servers(&self, servers: u32) -> Result<Self, QueueingError> {
        MmnQueue::new(self.arrival_rate, self.service_demand, servers)
    }

    /// Returns a copy of this station with a different arrival rate.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::NonPositive`] for a negative/NaN rate.
    pub fn with_arrival_rate(&self, arrival_rate: f64) -> Result<Self, QueueingError> {
        MmnQueue::new(arrival_rate, self.service_demand, self.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn q(lambda: f64, s: f64, n: u32) -> MmnQueue {
        MmnQueue::new(lambda, s, n).unwrap()
    }

    #[test]
    fn mm1_response_time_matches_closed_form() {
        // M/M/1: E[R] = s / (1 - rho)
        let station = q(8.0, 0.1, 1);
        let rho = station.utilization();
        let expect = 0.1 / (1.0 - rho);
        assert!((station.mean_response_time().unwrap() - expect).abs() < EPS);
    }

    #[test]
    fn mm1_queue_length_matches_closed_form() {
        // M/M/1: L_q = rho^2 / (1 - rho)
        let station = q(5.0, 0.1, 1);
        let rho = station.utilization();
        let expect = rho * rho / (1.0 - rho);
        assert!((station.mean_queue_length().unwrap() - expect).abs() < EPS);
    }

    #[test]
    fn littles_law_consistency() {
        let station = q(42.0, 0.059, 4);
        let l = station.mean_number_in_system().unwrap();
        let lq = station.mean_queue_length().unwrap();
        // L = L_q + a (expected number in service equals the offered load).
        assert!((l - (lq + station.offered_load())).abs() < 1e-9);
    }

    #[test]
    fn utilization_can_exceed_one_for_overload() {
        let station = q(100.0, 0.1, 5);
        assert!(station.utilization() > 1.0);
        assert!(!station.is_stable());
        assert!(station.mean_response_time().is_err());
    }

    #[test]
    fn idle_station_has_zero_wait() {
        let station = q(0.0, 0.1, 3);
        assert_eq!(station.wait_probability().unwrap(), 0.0);
        assert_eq!(station.mean_waiting_time().unwrap(), 0.0);
        assert!((station.mean_response_time().unwrap() - 0.1).abs() < EPS);
    }

    #[test]
    fn response_time_decreases_with_more_servers() {
        let mut last = f64::INFINITY;
        for n in 2..10 {
            let r = q(15.0, 0.1, n).mean_response_time().unwrap();
            assert!(r < last, "n={n}");
            last = r;
        }
    }

    #[test]
    fn response_time_increases_with_load() {
        let mut last = 0.0;
        for k in 1..10 {
            let lambda = f64::from(k) * 5.0;
            let r = q(lambda, 0.1, 6).mean_response_time().unwrap();
            assert!(r > last, "lambda={lambda}");
            last = r;
        }
    }

    #[test]
    fn saturation_throughput_is_n_mu() {
        let station = q(10.0, 0.04, 3);
        assert!((station.saturation_throughput() - 75.0).abs() < EPS);
    }

    #[test]
    fn paper_service_capacities() {
        // §IV-B: UI handles ~17 req/s/instance, validation 10, data 25.
        assert!((q(1.0, 0.059, 1).saturation_throughput() - 16.949).abs() < 1e-2);
        assert!((q(1.0, 0.1, 1).saturation_throughput() - 10.0).abs() < EPS);
        assert!((q(1.0, 0.04, 1).saturation_throughput() - 25.0).abs() < EPS);
    }

    #[test]
    fn waiting_quantile_zero_when_most_do_not_wait() {
        // Very low load: P(wait) tiny, 90th percentile of waiting is 0.
        let station = q(1.0, 0.1, 10);
        assert_eq!(station.waiting_time_quantile(0.9).unwrap(), 0.0);
    }

    #[test]
    fn waiting_quantile_mm1_matches_closed_form() {
        // M/M/1: P(W > t) = rho·e^{−(μ−λ)t}; quantile = ln(rho/(1−p))/(μ−λ).
        let station = q(8.0, 0.1, 1);
        let rho = station.utilization();
        let expect = (rho / 0.1_f64).ln() / (10.0 - 8.0);
        assert!((station.waiting_time_quantile(0.9).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn response_quantile_exceeds_mean_near_saturation() {
        let station = q(9.0, 0.1, 1);
        let mean = station.mean_response_time().unwrap();
        let p90 = station.response_time_quantile(0.9).unwrap();
        assert!(p90 > mean);
    }

    #[test]
    fn quantile_increases_with_p() {
        let station = q(50.0, 0.1, 6);
        let p50 = station.response_time_quantile(0.5).unwrap();
        let p90 = station.response_time_quantile(0.9).unwrap();
        let p99 = station.response_time_quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn quantile_rejects_bad_p() {
        let station = q(5.0, 0.1, 2);
        assert!(station.waiting_time_quantile(0.0).is_err());
        assert!(station.waiting_time_quantile(1.0).is_err());
        assert!(station.waiting_time_quantile(f64::NAN).is_err());
    }

    #[test]
    fn constructor_rejects_bad_inputs() {
        assert!(MmnQueue::new(-1.0, 0.1, 1).is_err());
        assert!(MmnQueue::new(1.0, 0.0, 1).is_err());
        assert!(MmnQueue::new(1.0, -0.1, 1).is_err());
        assert!(MmnQueue::new(1.0, 0.1, 0).is_err());
        assert!(MmnQueue::new(f64::NAN, 0.1, 1).is_err());
        assert!(MmnQueue::new(1.0, f64::NAN, 1).is_err());
    }

    #[test]
    fn with_servers_and_rate_update_fields() {
        let station = q(10.0, 0.1, 2);
        let more = station.with_servers(4).unwrap();
        assert_eq!(more.servers(), 4);
        assert_eq!(more.arrival_rate(), 10.0);
        let hotter = station.with_arrival_rate(20.0).unwrap();
        assert_eq!(hotter.arrival_rate(), 20.0);
        assert_eq!(hotter.servers(), 2);
    }
}
